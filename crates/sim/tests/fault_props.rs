//! Property tests for crash-plan resolution and network accounting.
//!
//! Satellite coverage for the fault-injection engine: resolved crash sets
//! respect the fault bound `t` and are deterministic per seed, and the
//! network's conservation law `sent + duplicated == delivered + dropped +
//! in_flight` survives arbitrary interleavings of (faulty) sends,
//! deliveries, and crash-triggered `drop_all_to` sweeps.

use ktudc_model::ProcessId;
use ktudc_sim::network::Network;
use ktudc_sim::{ChannelKind, CrashPlan, FaultPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn resolved_crashes_respect_the_bound(
        n in 1usize..10,
        max_failures in 0usize..8,
        latest in 1u64..60,
        seed in 0u64..u64::MAX,
    ) {
        let plan = CrashPlan::Random { max_failures, latest };
        let times = plan.resolve(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(times.len(), n);
        let crashed = times.iter().filter(|t| t.is_some()).count();
        prop_assert!(crashed <= max_failures.min(n),
            "{} crashes exceed bound {}", crashed, max_failures.min(n));
        for t in times.into_iter().flatten() {
            prop_assert!((1..=latest).contains(&t), "crash tick {} outside 1..={}", t, latest);
        }
    }

    #[test]
    fn resolution_is_deterministic_per_seed(
        n in 1usize..10,
        max_failures in 0usize..8,
        latest in 1u64..60,
        seed in 0u64..u64::MAX,
    ) {
        let plan = CrashPlan::Random { max_failures, latest };
        let a = plan.resolve(n, &mut StdRng::seed_from_u64(seed));
        let b = plan.resolve(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Ops: (kind, from, to, tick-ish). Encodes an arbitrary interleaving of
    /// faulty sends, deliveries, and drop-all sweeps on a 3-process network.
    #[test]
    fn conservation_law_is_invariant(
        ops in proptest::collection::vec((0u8..3, 0usize..3, 0usize..3, 1u64..40), 0..120),
        seed in 0u64..u64::MAX,
        dup_milli in 0u64..900,
    ) {
        let mut net: Network<u64> = Network::new(3);
        let mut rng = StdRng::seed_from_u64(seed);
        #[allow(clippy::cast_precision_loss)]
        let plan = FaultPlan::none()
            .duplicate(dup_milli as f64 / 1000.0)
            .burst_loss(7, 2)
            .partition_link(0, 1, 5, 20);
        let mut faults = plan.activate(seed);
        let kind = ChannelKind::fair_lossy(0.25);
        let mut now = 1u64;
        for (op, from, to, dt) in ops {
            now += dt;
            match op {
                0 => net.send_faulty(
                    ProcessId::new(from), ProcessId::new(to), now, now, kind, &mut rng, &mut faults,
                ),
                1 => { net.deliver_one(ProcessId::new(to), now); }
                _ => net.drop_all_to(ProcessId::new(to)),
            }
            prop_assert_eq!(
                net.sent_count() + net.duplicated_count(),
                net.delivered_count() + net.dropped_count() + net.in_flight_count(),
                "conservation broken after op {} at tick {}", op, now
            );
        }
        // Draining the network moves everything to delivered.
        for p in 0..3 {
            while net.deliver_one(ProcessId::new(p), u64::MAX).is_some() {}
        }
        prop_assert_eq!(net.in_flight_count(), 0);
        prop_assert_eq!(
            net.sent_count() + net.duplicated_count(),
            net.delivered_count() + net.dropped_count()
        );
    }
}
