//! Integration tests of the simulator's scheduling discipline, fairness
//! realization, and explorer coverage guarantees.

use ktudc_model::{ActionId, Event, ModelError, ProcSet, ProcessId, Run, Time};
use ktudc_sim::{
    explore, run_protocol, ChannelKind, CrashPlan, ExploreConfig, NullOracle, Outbox, ProtoAction,
    Protocol, SimConfig, Workload,
};
use std::collections::BTreeSet;

/// A chatty protocol: retransmits a ping to every peer forever, acks
/// everything it receives — maximal channel pressure for fairness tests.
#[derive(Clone, Debug)]
struct Chatty {
    me: ProcessId,
    n: usize,
    next: Time,
    out: Outbox<&'static str>,
}

impl Chatty {
    fn new() -> Self {
        Chatty {
            me: ProcessId::new(0),
            n: 0,
            next: 0,
            out: Outbox::new(),
        }
    }
}

impl Protocol<&'static str> for Chatty {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }
    fn observe(&mut self, _t: Time, _e: &Event<&'static str>) {}
    fn next_action(&mut self, t: Time) -> Option<ProtoAction<&'static str>> {
        if let Some(a) = self.out.pop() {
            return Some(a);
        }
        if t >= self.next {
            self.next = t + 3;
            self.out.broadcast(self.me, self.n, "ping");
            return self.out.pop();
        }
        None
    }
    fn quiescent(&self) -> bool {
        false
    }
}

/// R2 at the scheduler level: no process ever has two events on one tick.
#[test]
fn at_most_one_event_per_process_per_tick() {
    let config = SimConfig::new(4)
        .channel(ChannelKind::fair_lossy(0.3))
        .crashes(CrashPlan::at(&[(2, 20)]))
        .horizon(300)
        .seed(5);
    let out = run_protocol(
        &config,
        |_| Chatty::new(),
        &mut NullOracle::new(),
        &Workload::none(),
    );
    for p in ProcessId::all(4) {
        let ticks: Vec<Time> = out.run.timed_history(p).map(|(t, _)| t).collect();
        let set: BTreeSet<Time> = ticks.iter().copied().collect();
        assert_eq!(set.len(), ticks.len(), "duplicate tick at {p}");
    }
}

/// Fairness realized: under heavy sustained traffic at 50% loss, every
/// live pair communicates — the R5 checker passes at a strict threshold.
#[test]
fn fair_lossy_channels_satisfy_r5_under_pressure() {
    let config = SimConfig::new(3)
        .channel(ChannelKind::fair_lossy(0.5))
        .horizon(800)
        .seed(9);
    let out = run_protocol(
        &config,
        |_| Chatty::new(),
        &mut NullOracle::new(),
        &Workload::none(),
    );
    out.run.check_conditions(40).unwrap();
    // Every ordered live pair exchanged at least one ping.
    for from in ProcessId::all(3) {
        for to in ProcessId::all(3) {
            if from != to {
                assert!(
                    out.run.view_at(to, 800).received(from, &"ping"),
                    "{to} never heard from {from}"
                );
            }
        }
    }
}

/// No delivery after a crash, ever; in-flight messages to the dead are
/// counted as dropped.
#[test]
fn crashed_processes_receive_nothing() {
    let config = SimConfig::new(3)
        .channel(ChannelKind::reliable())
        .crashes(CrashPlan::at(&[(1, 15)]))
        .horizon(200)
        .seed(1);
    let out = run_protocol(
        &config,
        |_| Chatty::new(),
        &mut NullOracle::new(),
        &Workload::none(),
    );
    let p1 = ProcessId::new(1);
    assert!(out.run.timed_history(p1).all(|(t, _)| t <= 15));
    assert!(
        out.messages_dropped > 0,
        "in-flight to the dead must be dropped"
    );
    out.run.check_conditions(0).unwrap();
}

/// Workload initiations survive busy slots: they are queued, not lost, and
/// each appears exactly once.
#[test]
fn initiations_are_queued_not_lost() {
    let config = SimConfig::new(2).horizon(120).seed(3);
    let mut w = Workload::none();
    for i in 0..5u32 {
        // All five initiations at tick 1: only one can land per tick.
        w.push(1, ActionId::new(ProcessId::new(0), i));
    }
    let out = run_protocol(&config, |_| Chatty::new(), &mut NullOracle::new(), &w);
    let inits: Vec<ActionId> = out.run.initiations().map(|(_, a)| a).collect();
    assert_eq!(
        inits.len(),
        5,
        "all queued initiations must eventually land"
    );
    let ticks: Vec<Time> = out.run.initiations().map(|(t, _)| t).collect();
    let distinct: BTreeSet<Time> = ticks.iter().copied().collect();
    assert_eq!(distinct.len(), 5, "one initiation per tick (R2)");
}

/// Explorer coverage: every run the Monte-Carlo runner can produce for a
/// tiny context is present in the exhaustive enumeration (projected to
/// event content), for the one-shot protocol.
#[test]
fn explorer_covers_sampled_behaviours() {
    #[derive(Clone, Debug)]
    struct OneShot {
        me: ProcessId,
        sent: bool,
    }
    impl Protocol<u8> for OneShot {
        fn start(&mut self, me: ProcessId, _n: usize) {
            self.me = me;
        }
        fn observe(&mut self, _t: Time, e: &Event<u8>) {
            if matches!(e, Event::Send { .. }) {
                self.sent = true;
            }
        }
        fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
            (self.me == ProcessId::new(0) && !self.sent).then_some(ProtoAction::Send {
                to: ProcessId::new(1),
                msg: 1,
            })
        }
        fn quiescent(&self) -> bool {
            self.sent
        }
    }
    let make = |_: ProcessId| OneShot {
        me: ProcessId::new(0),
        sent: false,
    };
    let explored = explore(&ExploreConfig::new(2, 4).max_failures(1), make);
    assert!(explored.complete);
    // Project runs to per-process event sequences (ignore ticks).
    let signature = |run: &Run<u8>| -> Vec<Vec<Event<u8>>> {
        ProcessId::all(2).map(|p| run.history(p).to_vec()).collect()
    };
    let explored_sigs: BTreeSet<String> = explored
        .system
        .runs()
        .iter()
        .map(|r| format!("{:?}", signature(r)))
        .collect();
    for seed in 0..60 {
        let config = SimConfig::new(2)
            .channel(ChannelKind::fair_lossy(0.5))
            .crashes(CrashPlan::Random {
                max_failures: 1,
                latest: 4,
            })
            .horizon(4)
            .seed(seed);
        let sampled = run_protocol(&config, make, &mut NullOracle::new(), &Workload::none());
        let sig = format!("{:?}", signature(&sampled.run));
        assert!(
            explored_sigs.contains(&sig),
            "sampled behaviour missing from exhaustive enumeration: {sig}"
        );
    }
}

/// Config validation catches misuse early.
#[test]
fn config_panics_are_informative() {
    assert!(std::panic::catch_unwind(|| SimConfig::new(0)).is_err());
    assert!(std::panic::catch_unwind(|| {
        SimConfig::new(2).channel(ChannelKind::FairLossy {
            drop_prob: 1.5,
            max_delay: 2,
        })
    })
    .is_err());
    assert!(std::panic::catch_unwind(|| SimConfig::new(2).fd_period(0)).is_err());
    // Crash plan validation happens at resolve time inside run_protocol.
    let bad = SimConfig::new(2).crashes(CrashPlan::at(&[(7, 3)]));
    let result = std::panic::catch_unwind(|| {
        run_protocol(
            &bad,
            |_| Chatty::new(),
            &mut NullOracle::new(),
            &Workload::none(),
        )
    });
    assert!(result.is_err());
}

/// The fault truth handed to oracles always matches the produced run.
#[test]
fn truth_and_run_agree_for_random_plans() {
    for seed in 0..30 {
        let config = SimConfig::new(5)
            .crashes(CrashPlan::Random {
                max_failures: 4,
                latest: 50,
            })
            .horizon(120)
            .seed(seed);
        let out = run_protocol(
            &config,
            |_| Chatty::new(),
            &mut NullOracle::new(),
            &Workload::none(),
        );
        assert_eq!(out.truth.faulty(), out.run.faulty(), "seed {seed}");
        assert_eq!(
            out.truth.crashed_by(120),
            out.run.crashed_by(120),
            "seed {seed}"
        );
    }
}

/// ProcSet/display plumbing used by error paths stays stable.
#[test]
fn run_condition_errors_render() {
    let e = ModelError::UnfairChannel {
        sender: ProcessId::new(0),
        receiver: ProcessId::new(1),
        sent: 50,
        threshold: 10,
    };
    assert!(e.to_string().contains("p0→p1"));
    let s: ProcSet = [ProcessId::new(1)].into_iter().collect();
    assert_eq!(format!("{s}"), "{p1}");
}
