//! Replays every numbered constructive claim of the paper and prints a
//! PASS/FAIL line per claim.
//!
//! ```text
//! cargo run -p ktudc-bench --bin claims --release
//! ```

use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc_core::protocols::nudc::NUdcFlood;
use ktudc_core::protocols::strong_fd::StrongFdUdc;
use ktudc_core::simulate::{simulate_perfect_fd, simulate_t_useful_fd};
use ktudc_core::spec::{check_nudc, check_udc};
use ktudc_fd::convert::{accumulate_reports, weak_to_strong};
use ktudc_fd::{check_fd_property, FdProperty, ImpermanentWeakOracle, PerfectOracle};
use ktudc_model::System;
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

fn report(claim: &str, ok: bool, detail: &str) {
    println!("[{}] {claim}: {detail}", if ok { "PASS" } else { "FAIL" });
}

fn main() {
    // Proposition 2.3: nUDC, fair channels, no FD, unbounded failures.
    {
        let mut ok = true;
        for seed in 0..10 {
            let config = SimConfig::new(5)
                .channel(ChannelKind::fair_lossy(0.4))
                .crashes(CrashPlan::Random {
                    max_failures: 5,
                    latest: 100,
                })
                .horizon(600)
                .seed(seed);
            let w = Workload::single(0, 2);
            let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
            ok &= check_nudc(&out.run, &w.actions()).is_satisfied();
        }
        report("Prop 2.3 (nUDC, lossy, no FD, t = n)", ok, "10/10 seeds");
    }

    // Proposition 2.4: UDC, reliable channels, no FD, unbounded failures.
    {
        let out = run_cell(
            &CellSpec::new(5, 5, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(10)
                .horizon(900),
        );
        report(
            "Prop 2.4 (UDC, reliable, no FD, t = n)",
            out.achieved(),
            &out.to_string(),
        );
    }

    // Proposition 3.1 / Corollary 3.2: UDC, lossy, strong (and, via the
    // conversions, impermanent-weak) FD, unbounded failures.
    {
        let out = run_cell(
            &CellSpec::new(5, 4, Some(0.3), FdChoice::Strong, ProtocolChoice::StrongFd)
                .trials(10)
                .horizon(1500),
        );
        report(
            "Prop 3.1 (UDC, lossy, strong FD, t = n-1)",
            out.achieved(),
            &out.to_string(),
        );
        let out = run_cell(
            &CellSpec::new(
                5,
                3,
                Some(0.3),
                FdChoice::ImpermanentStrong,
                ProtocolChoice::StrongFd,
            )
            .trials(10)
            .horizon(1500),
        );
        report(
            "Cor 3.2 (UDC, lossy, impermanent-strong FD)",
            out.achieved(),
            &out.to_string(),
        );
    }

    // Proposition 4.1 and Corollary 4.2.
    {
        let out = run_cell(
            &CellSpec::new(
                5,
                3,
                Some(0.3),
                FdChoice::TUseful,
                ProtocolChoice::Generalized,
            )
            .trials(10)
            .horizon(1500),
        );
        report(
            "Prop 4.1 (UDC, lossy, t-useful FD, t = 3)",
            out.achieved(),
            &out.to_string(),
        );
        let out = run_cell(
            &CellSpec::new(
                5,
                2,
                Some(0.3),
                FdChoice::Cycling,
                ProtocolChoice::Generalized,
            )
            .trials(10)
            .horizon(1500),
        );
        report(
            "Cor 4.2 (UDC, lossy, no FD, t < n/2)",
            out.achieved(),
            &out.to_string(),
        );
    }

    // Propositions 2.1 and 2.2: the conversions, on a run with a weak,
    // impermanent detector.
    {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.2))
            .crashes(CrashPlan::at(&[(2, 6)]))
            .horizon(60)
            .seed(1);
        let w = Workload::single(0, 2);
        let out = run_protocol(
            &config,
            |_| NUdcFlood::new(),
            &mut ImpermanentWeakOracle::new(),
            &w,
        );
        let accumulated = accumulate_reports(&out.run);
        let p22 = check_fd_property(&accumulated, FdProperty::WeakCompleteness).is_ok();
        report(
            "Prop 2.2 (accumulation: impermanent → permanent)",
            p22,
            "weak completeness after",
        );
        let gossiped = weak_to_strong(&accumulated, 4);
        let p21 = check_fd_property(&gossiped, FdProperty::StrongCompleteness).is_ok()
            && check_fd_property(&gossiped, FdProperty::WeakAccuracy).is_ok();
        report(
            "Prop 2.1 (gossip: weak → strong completeness)",
            p21,
            "strong completeness + weak accuracy after",
        );
    }

    // Theorems 3.6 and 4.3: the f / f′ simulation constructions.
    {
        let w = Workload::periodic(3, 15, 60);
        let mut runs = Vec::new();
        for plan in [
            CrashPlan::None,
            CrashPlan::at(&[(1, 8)]),
            CrashPlan::at(&[(1, 8), (2, 30)]),
        ] {
            for seed in 0..3 {
                let config = SimConfig::new(3)
                    .channel(ChannelKind::fair_lossy(0.25))
                    .crashes(plan.clone())
                    .horizon(240)
                    .seed(seed);
                let out = run_protocol(
                    &config,
                    |_| StrongFdUdc::new(),
                    &mut PerfectOracle::new(),
                    &w,
                );
                assert!(check_udc(&out.run, &w.actions()).is_satisfied());
                runs.push(out.run);
            }
        }
        let system = System::new(runs);
        let rf = simulate_perfect_fd(&system);
        let t36 = rf.runs().iter().all(|r| {
            check_fd_property(r, FdProperty::StrongAccuracy).is_ok()
                && check_fd_property(r, FdProperty::StrongCompleteness).is_ok()
        });
        report(
            "Thm 3.6 (UDC system ⇒ f(r) has perfect FD)",
            t36,
            &format!("{} runs, {} points", rf.len(), system.point_count()),
        );
        let t = 2;
        let rf2 = simulate_t_useful_fd(&system, t);
        let t43 = rf2.runs().iter().all(|r| {
            check_fd_property(r, FdProperty::GeneralizedStrongAccuracy).is_ok()
                && check_fd_property(r, FdProperty::GeneralizedImpermanentStrongCompleteness(t))
                    .is_ok()
        });
        report(
            "Thm 4.3 (UDC system ⇒ f′(r) has t-useful FD)",
            t43,
            &format!("t = {t}, {} runs", rf2.len()),
        );
    }

    // Negative results that complete the picture.
    {
        let out = run_cell(
            &CellSpec::new(4, 3, Some(0.6), FdChoice::None, ProtocolChoice::Reliable)
                .trials(25)
                .horizon(700),
        );
        report(
            "Necessity (UDC, lossy, no FD, t ≥ n/2 FAILS)",
            !out.achieved() && out.violated_permanent > 0,
            &out.to_string(),
        );
        let out = run_cell(
            &CellSpec::new(4, 3, Some(0.3), FdChoice::Weak, ProtocolChoice::StrongFd)
                .trials(20)
                .horizon(900),
        );
        report(
            "Necessity (unconverted weak FD stalls)",
            !out.achieved(),
            &out.to_string(),
        );
    }
}
