//! Fixed performance workloads for the bitset/parallel machinery, emitting
//! `BENCH_ktudc.json` in the working directory.
//!
//! Five workloads run, each pinned so results are comparable across
//! commits:
//!
//! 1. **checker** — an exhaustively explored n = 3 system (horizon 24,
//!    capped at 4000 runs) checked against a knowledge-heavy formula set
//!    of ~150 distinct knowledge/temporal shapes, once with the scalar
//!    [`ReferenceChecker`] and once with the bitset-backed
//!    [`ModelChecker`]. Verdicts are asserted identical point-for-point;
//!    the JSON records both wall times, the speedup, throughput in
//!    points/sec, and the fast checker's peak table footprint.
//! 2. **explorer** — exhaustive run enumeration with the copy-light
//!    parallel [`explore`] vs. the clone-per-branch
//!    [`explore_reference`], asserted to produce the same run set.
//! 3. **cell** — one positive Table 1 cell through the (parallel) harness,
//!    timed end to end.
//! 4. **chaos** — the standard fault-injection campaign
//!    ([`ktudc_core::chaos`]) at fixed seeds, asserted clean (zero false
//!    alarms) and lethal (every out-of-model mutant detected), with
//!    campaign throughput in plans/sec and the R3 structural-detection
//!    latency in ticks recorded under the `chaos` key.
//! 5. **recovery** — the durability tax and recovery speed: a pinned
//!    exploration run plain vs. checkpoint-journaled (fsync per entry),
//!    resumed from a torn journal (all three digest-identical), plus a
//!    durable `ktudc-serve` reboot over a populated cache snapshot,
//!    timed bind-to-ready. Recorded under the `recovery` key.
//!
//! `--smoke` shrinks every workload to a few seconds total for CI; the
//! schema of the emitted JSON is unchanged (`"mode"` records which ran).
//!
//! `--via-serve` additionally routes a batch of cell requests through an
//! in-process `ktudc-serve` daemon (ephemeral port, pipelined client) and
//! records the service-path throughput — cold (computed) and warm
//! (scenario-cache) — under the `via_serve` key. The key is `null` when
//! the flag is absent, keeping the `ktudc-bench-perf/1` schema additive.
//!
//! `--overload` runs the degradation soak: a one-worker daemon with
//! adaptive admission is saturated from several connections with a mix
//! of plain, deadline-carrying, and partial-accepting requests. Recorded
//! under the `overload` key (additively, like `via_serve`): shed counts
//! by type, the admitted-vs-uncontended p99 ratio, whether every shed
//! was typed, whether the watchdog saw a stuck worker, and whether a
//! budget-aborted checkpointed exploration resumed to the digest of the
//! uninterrupted run.
//!
//! `--cluster` runs the sharding workload: the same cold batch through
//! one single-worker daemon and through a 3-shard cluster of them
//! (consistent-hashed by the cluster client), recording the throughput
//! ratio, then downs a shard and prices failover on warm requests.
//! Every cluster answer is asserted byte-identical to the single
//! daemon's, so `zero_wrong_answers` is an invariant, not a metric.
//! Recorded under the `cluster` key (additively, like `via_serve`).
//!
//! `--fd-zoo` sweeps every empirical failure detector (heartbeat,
//! φ-accrual, gossip) across every fault regime through
//! [`ktudc_fd::classify_detector`] and records the full classification
//! matrix under the `fd_zoo` key (additively, like `via_serve`): one row
//! per (detector, regime) with the earned class, false-suspicion count,
//! and crash-detection latency, plus two grep-stable invariants asserted
//! inline — `clean_zero_false_suspicions` (no detector falsely suspects
//! anyone on clean reliable channels) and
//! `detection_latency_within_bound` (every in-model regime detects the
//! crash within the bound).
//!
//! `--fd-live` classifies the **live** detector plane (`serve::detector`)
//! per wire regime: a 3-shard cluster with one shard black-holed from
//! frame zero (the "crash") and the live links carrying the regime's
//! toxic, the φ-accrual plane's suspicion states sampled into the same
//! completeness/accuracy booleans the simulated zoo uses and condensed
//! through `ktudc_fd::condense_class`. Recorded under the `fd_live` key
//! (additively, like `via_serve`) with per-regime achieved class,
//! suspects raised/cleared, hedge win rate, and the proactive-failover
//! count, plus the grep-stable audited invariants `zero_wrong_answers`,
//! `exactly_once`, and `hedges_never_double_compute`.
//!
//! `--chaos-net` runs the wire-plane chaos soak: a fresh daemon behind a
//! seeded `chaos_proxy` per toxic regime (latency spikes, throttled
//! writes, torn frames, corrupted bytes, resets, half-open stalls, a
//! bounded one-way partition), a fixed scenario batch stormed through a
//! `HardenedClient`, and an `Auditor` asserting the uniform invariants.
//! Recorded under the `chaos_net` key (additively, like `via_serve`)
//! with the grep-stable booleans `zero_wrong_answers`,
//! `no_unTyped_failures`, and `exactly_once`.

use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc_epistemic::{Formula, ModelChecker, ReferenceChecker};
use ktudc_model::{ActionId, Event, ProcessId, System, Time};
use ktudc_sim::{
    canonical_run_digests, explore, explore_reference, explore_with_stats, ExploreConfig,
    ProtoAction, Protocol,
};
use serde::Serialize;
use std::collections::BTreeSet;
use std::time::Instant;

#[derive(Serialize)]
struct CheckerReport {
    n: usize,
    horizon: Time,
    runs: usize,
    points: usize,
    formulas: usize,
    reference_secs: f64,
    fast_secs: f64,
    speedup: f64,
    points_per_sec_reference: f64,
    points_per_sec_fast: f64,
    peak_table_bytes: usize,
    verdicts_equal: bool,
}

#[derive(Serialize)]
struct ExplorerReport {
    n: usize,
    horizon: Time,
    runs_explored: usize,
    complete: bool,
    reference_secs: f64,
    fast_secs: f64,
    speedup: f64,
    runs_equal: bool,
    /// Drift watch, not a gate: what to keep an eye on in the plain
    /// (unreduced) explorer numbers across commits. The enforced floor
    /// (`reduced.speedup_ok`) sits on the reduced path only — the one
    /// n = 4–5 cells actually use.
    watch: String,
    reduced: ReducedExplorerReport,
}

/// The same workload with state-space reduction on: clients declared
/// symmetric, sleep sets pruning commuting deliveries. The headline
/// explorer speedup — this is the path n = 4–5 cells actually use.
#[derive(Serialize)]
struct ReducedExplorerReport {
    runs: usize,
    complete: bool,
    secs: f64,
    /// Reduced wall time vs the clone-per-branch reference.
    speedup_vs_reference: f64,
    states_canonicalized: u64,
    sleep_set_pruned: u64,
    steals: u64,
    workers: usize,
    /// The reference's canonical (untimed, relabeling-minimized) run
    /// digest set equals the reduced one's: every reference behavior is
    /// covered by a kept representative, and nothing new appeared.
    cover_ok: bool,
    /// A symmetric formula battery gets identical verdicts from the
    /// model checker on the reduced and the reference system.
    reduced_verdicts_equal: bool,
    /// Full mode: `speedup_vs_reference >= 4`. Smoke mode: trivially
    /// true (sub-10ms timings are noise; the bound is asserted on the
    /// full run that produces the committed BENCH_ktudc.json).
    speedup_ok: bool,
}

#[derive(Serialize)]
struct CellReport {
    spec: String,
    trials: u64,
    achieved: bool,
    secs: f64,
    trials_per_sec: f64,
}

#[derive(Serialize)]
struct ViaServeReport {
    requests: usize,
    workers: usize,
    cold_secs: f64,
    warm_secs: f64,
    cold_requests_per_sec: f64,
    warm_requests_per_sec: f64,
    cache_hits: u64,
    results_identical: bool,
}

#[derive(Serialize)]
struct ClusterReport {
    shards: usize,
    requests: usize,
    /// Cold throughput of one single-worker daemon over the workload.
    requests_per_sec_single: f64,
    /// Cold throughput of the same workload consistent-hashed across
    /// the shards (each a single-worker daemon) by the cluster client.
    requests_per_sec_cluster: f64,
    /// Cluster over single — sharding's parallelism win on cold compute.
    speedup_vs_single: f64,
    /// Mean per-request latency added by failover: warm requests owned
    /// by a downed shard (answered by a replica's cache) vs the same
    /// requests warm with every shard up. The price of losing a shard,
    /// separated from compute.
    failover_added_latency_ms: f64,
    /// Requests the cluster client rerouted to a replica.
    failovers: u64,
    /// Every cluster answer — including every failover answer — was
    /// byte-identical to the single-daemon answer for the same request.
    zero_wrong_answers: bool,
}

#[derive(Serialize)]
struct ChaosReportSummary {
    cells: usize,
    plans: usize,
    seeds: Vec<u64>,
    rows: usize,
    clean: usize,
    false_alarms: usize,
    detected: usize,
    survived: usize,
    all_mutants_killed: bool,
    secs: f64,
    plans_per_sec: f64,
    /// Mean tick of the first structural (R3) detection, over the rows
    /// that produced one — how long a corrupt receive goes unnoticed.
    detection_latency_ticks_mean: f64,
    detection_latency_ticks_max: u64,
    digest: String,
}

#[derive(Serialize)]
struct RecoveryBench {
    n: usize,
    horizon: Time,
    runs: usize,
    /// Wall time of the plain (journal-free) exploration.
    plain_secs: f64,
    /// Wall time of the same exploration with a fresh checkpoint
    /// journal (fsync on every entry).
    checkpointed_secs: f64,
    /// What journaling costs, as a percentage of the plain time.
    checkpoint_overhead_percent: f64,
    /// Group-commit keeps the journaling tax within bounds: overhead is
    /// at most 200% of plain, or (on workloads too small to measure a
    /// ratio against) the absolute tax is under a quarter second.
    overhead_within_bound: bool,
    /// Journal entries replayed when resuming the torn journal.
    replayed_entries: u64,
    replay_secs: f64,
    replay_entries_per_sec: f64,
    /// Whether plain, checkpointed, and torn-then-resumed explorations
    /// all produced the same run-set digest.
    digest_identical: bool,
    /// A durable `ktudc-serve` reboot: bind → cache recovered → boot
    /// snapshot persisted → accepting.
    restart_to_ready_ms: f64,
    recovered_cache_entries: usize,
}

#[derive(Serialize)]
struct OverloadReport {
    /// Total requests submitted during the storm.
    requests: usize,
    workers: usize,
    queue_capacity: usize,
    /// Requests that produced a successful (or typed-partial) payload.
    admitted: usize,
    /// Admitted requests that resolved as a typed `Aborted` partial.
    aborted_partial: usize,
    shed_overloaded: u64,
    shed_deadline: u64,
    shed_rate: f64,
    uncontended_p99_ms: f64,
    admitted_p99_ms: f64,
    /// Admitted p99 over uncontended p99 — the overload tax on the work
    /// the server chose to accept.
    admitted_over_uncontended: f64,
    /// Every non-success resolution was a typed shed or typed abort.
    all_sheds_typed: bool,
    /// The watchdog never latched a stuck worker during the storm.
    zero_stuck_workers: bool,
    /// A step-budget-aborted checkpointed exploration, resumed with a
    /// fresh budget, reproduced the uninterrupted run's digest.
    digest_identical_after_resume: bool,
}

#[derive(Serialize)]
struct FdZooRow {
    detector: String,
    regime: String,
    /// Whether the regime stays inside the paper's model (R1–R5).
    in_model: bool,
    /// The empirical class this detector earned in this regime.
    class: String,
    false_suspicions: u64,
    /// `None` when some crash arm never detected the crash.
    detection_latency_mean: Option<f64>,
    detection_latency_max: Option<u64>,
    latency_samples: u64,
}

#[derive(Serialize)]
struct FdZooReport {
    detectors: usize,
    regimes: usize,
    n: usize,
    trials: u64,
    horizon: Time,
    rows: Vec<FdZooRow>,
    secs: f64,
    cells_per_sec: f64,
    /// On clean reliable channels, every detector reported zero false
    /// suspicions across every trial.
    clean_zero_false_suspicions: bool,
    /// The latency bound the in-model invariant is checked against.
    detection_latency_bound_ticks: u64,
    /// In every in-model regime, every detector detected the crash in
    /// every crash arm, with worst-case latency within the bound.
    detection_latency_within_bound: bool,
}

#[derive(Serialize)]
struct ChaosNetRegimeRow {
    regime: String,
    requests: u64,
    /// Requests that resolved to a payload (however many resends it took).
    payloads: u64,
    /// Typed wire + typed client errors — the only failures allowed.
    typed_errors: u64,
    /// Faults the proxy actually injected in this regime.
    injections: u64,
    /// p99 storm latency through the proxy, retries included.
    p99_ms: f64,
}

/// The wire-plane chaos soak: every toxic regime through a seeded
/// [`chaos_proxy`](ktudc_serve::chaos_proxy), audited end to end by
/// [`ktudc_serve::Auditor`]. The booleans are the uniform invariants —
/// grep-stable, asserted inline, a violation is a bench failure.
#[derive(Serialize)]
#[allow(non_snake_case)]
struct ChaosNetReport {
    seed: u64,
    regimes: Vec<ChaosNetRegimeRow>,
    scenarios_per_regime: usize,
    requests: u64,
    wrong_answers: u64,
    untyped_failures: u64,
    generation_regressions: u64,
    stuck_connections: u64,
    /// After every storm, the scenario cache held exactly one outcome per
    /// distinct scenario and a clean second pass was all cache hits.
    exactly_once: bool,
    /// Every payload, in every regime, was byte-identical to the direct
    /// library computation.
    zero_wrong_answers: bool,
    /// Every failure in every regime was a typed wire or client error.
    no_unTyped_failures: bool,
    secs: f64,
}

#[derive(Serialize)]
struct FdLiveRegimeRow {
    regime: String,
    /// The empirical class the live plane earned in this wire regime,
    /// condensed through the same hierarchy the simulated zoo uses.
    class: String,
    /// The black-holed shard was suspected by the end of the watch.
    strong_completeness: bool,
    /// Live shards that were (transiently) suspected during the watch.
    false_suspicions: u64,
    suspects_raised: u64,
    suspects_cleared: u64,
    /// Requests routed away from the suspected primary at routing time —
    /// failovers that engaged before any request had to burn a timeout.
    proactive_failovers: u64,
    hedges_fired: u64,
    hedges_won: u64,
    hedge_win_rate: f64,
    requests: u64,
    payloads: u64,
    probes_sent: u64,
}

/// The live failure-detector plane (`serve::detector`) classified per
/// wire regime against the paper's hierarchy, plus the audited payoff
/// of acting on suspicion. The booleans are grep-stable invariants —
/// asserted inline, a violation is a bench failure.
#[derive(Serialize)]
struct FdLiveReport {
    seed: u64,
    shards: usize,
    scenarios_per_regime: usize,
    probe_period_ms: u64,
    suspect_threshold: f64,
    hedge_threshold: f64,
    regimes: Vec<FdLiveRegimeRow>,
    /// Every regime detected the black-holed shard (strong completeness
    /// held live, so no regime fell to `unclassified`).
    all_regimes_classified: bool,
    /// Every payload in every regime was byte-identical to the direct
    /// library computation.
    zero_wrong_answers: bool,
    /// After every campaign the fleet's caches held exactly one outcome
    /// per distinct scenario — failover and hedging added zero
    /// duplicate computations.
    exactly_once: bool,
    /// With hedges fired, compute still matched distinct scenarios
    /// one-for-one (the hedge bought a race, never a second compute).
    hedges_never_double_compute: bool,
    secs: f64,
}

#[derive(Serialize)]
struct Report {
    schema: String,
    mode: String,
    threads: usize,
    checker: CheckerReport,
    explorer: ExplorerReport,
    cell: CellReport,
    chaos: ChaosReportSummary,
    recovery: RecoveryBench,
    via_serve: Option<ViaServeReport>,
    overload: Option<OverloadReport>,
    fd_zoo: Option<FdZooReport>,
    fd_live: Option<FdLiveReport>,
    cluster: Option<ClusterReport>,
    chaos_net: Option<ChaosNetReport>,
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// The checker workload's system: an exhaustively explored n = 3 system.
/// Explored runs share long prefixes, so the per-process
/// indistinguishability classes are *large* — exactly the regime the
/// epistemic checker is built for (and where the scalar reference's
/// per-point `K_p` evaluation pays quadratically per class).
fn checker_system(horizon: Time, cap: usize) -> System<u8> {
    let alpha = ActionId::new(p(0), 0);
    let cfg = ExploreConfig::new(3, horizon)
        .max_failures(1)
        .initiate(1, alpha)
        .optional_initiations()
        .max_runs(cap);
    explore(&cfg, |_| OneShot {
        me: p(0),
        sent: false,
    })
    .system
}

/// Knowledge-heavy formula set over the explored system's vocabulary.
/// Every shape the checker optimizes is represented: plain prims, boolean
/// connectives, both temporal operators, and (nested) knowledge.
fn checker_formulas() -> Vec<Formula<u8>> {
    let alpha = ActionId::new(p(0), 0);
    let crashed2 = Formula::crashed(p(2));
    let sent = Formula::sent(p(0), p(1), 7);
    let received = Formula::received(p(1), p(0), 7);
    let mut out = vec![
        crashed2.clone(),
        Formula::not(crashed2.clone()),
        sent.clone(),
        Formula::initiated(alpha),
        Formula::eventually(crashed2.clone()),
        Formula::always(Formula::not(crashed2.clone())),
        Formula::knows(p(0), crashed2.clone()),
        Formula::knows(p(1), sent.clone()),
        Formula::knows(p(0), Formula::knows(p(1), crashed2.clone())),
        Formula::knows(p(0), Formula::eventually(crashed2.clone())),
        Formula::always(Formula::implies(
            received.clone(),
            Formula::eventually(Formula::knows(p(0), received.clone())),
        )),
        Formula::or(vec![
            Formula::knows(p(0), crashed2.clone()),
            Formula::knows(p(1), crashed2.clone()),
        ]),
        Formula::eventually(Formula::and(vec![
            Formula::knows(p(0), Formula::initiated(alpha)),
            Formula::not(Formula::knows(p(1), crashed2.clone())),
        ])),
    ];
    // Many small, pairwise-distinct knowledge formulas over the prim
    // vocabulary. Prim and temporal subtables are shared through the cache;
    // each formula's marginal cost is one or two fresh `K_p` passes over
    // every indistinguishability class — the checker's dominant operation
    // in real condition-checking (locality, stability, Theorem 3.4).
    let base = [crashed2, sent, received, Formula::initiated(alpha)];
    for proc in 0..3 {
        for (i, x) in base.iter().enumerate() {
            out.push(Formula::knows(p(proc), x.clone()));
            out.push(Formula::knows(p(proc), Formula::eventually(x.clone())));
            out.push(Formula::knows(
                p(proc),
                Formula::always(Formula::not(x.clone())),
            ));
            for (j, y) in base.iter().enumerate() {
                if i == j {
                    continue;
                }
                out.push(Formula::knows(
                    p(proc),
                    Formula::or(vec![x.clone(), y.clone()]),
                ));
                out.push(Formula::eventually(Formula::knows(
                    p(proc),
                    Formula::and(vec![x.clone(), Formula::not(y.clone())]),
                )));
            }
            for q in 0..3 {
                if q != proc {
                    out.push(Formula::knows(p(proc), Formula::knows(p(q), x.clone())));
                }
            }
        }
    }
    out
}

fn checker_workload(smoke: bool) -> CheckerReport {
    let (horizon, cap) = if smoke { (8, 300) } else { (24, 4_000) };
    let system = checker_system(horizon, cap);
    let formulas = checker_formulas();

    let t0 = Instant::now();
    let mut reference = ReferenceChecker::new(&system);
    let slow: Vec<bool> = formulas
        .iter()
        .map(|f| reference.valid(f).is_ok())
        .collect();
    let reference_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut fast = ModelChecker::new(&system);
    let quick: Vec<bool> = formulas.iter().map(|f| fast.valid(f).is_ok()).collect();
    let fast_secs = t0.elapsed().as_secs_f64();

    // Verdict equality down to individual points, checked outside the timed
    // region (the Vec<Point> materialization costs the same on both sides
    // and would only dilute the comparison).
    let verdicts_equal = slow == quick
        && formulas
            .iter()
            .all(|f| reference.satisfying_points(f) == fast.satisfying_points(f));
    assert!(verdicts_equal, "checker verdict mismatch vs reference");

    let work = (system.point_count() * formulas.len()) as f64;
    CheckerReport {
        n: 3,
        horizon,
        runs: system.len(),
        points: system.point_count(),
        formulas: formulas.len(),
        reference_secs,
        fast_secs,
        speedup: reference_secs / fast_secs,
        points_per_sec_reference: work / reference_secs,
        points_per_sec_fast: work / fast_secs,
        peak_table_bytes: fast.table_bytes(),
        verdicts_equal,
    }
}

/// The explorer workload's protocol: p0 sends one message to p1; the
/// explorer branches over crash timing, delivery timing, and initiations.
#[derive(Clone, Debug)]
struct OneShot {
    me: ProcessId,
    sent: bool,
}

impl Protocol<u8> for OneShot {
    fn start(&mut self, me: ProcessId, _n: usize) {
        self.me = me;
    }
    fn observe(&mut self, _t: Time, e: &Event<u8>) {
        if matches!(e, Event::Send { .. }) {
            self.sent = true;
        }
    }
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
        (self.me == ProcessId::new(0) && !self.sent).then_some(ProtoAction::Send {
            to: ProcessId::new(1),
            msg: 7,
        })
    }
    fn quiescent(&self) -> bool {
        self.sent
    }
}

/// The explorer workload's protocol: an echo server. Every client
/// (process 1..n) sends one message to process 0; process 0 acks each
/// message back to its source, in order of receipt. The clients are
/// interchangeable *and* nobody — the server included — ever names a
/// client by index (ack targets come from the `from` of the observed
/// `Recv`), so behavior is equivariant under relabeling the client
/// class: exactly the hypothesis the symmetry reduction needs. (A
/// fan-out that sends "to p1 first, then p2" would violate it.)
#[derive(Clone, Debug)]
struct Echo {
    me: ProcessId,
    inbox: Vec<ProcessId>,
    acked: usize,
    sent: bool,
}

impl Protocol<u8> for Echo {
    fn start(&mut self, me: ProcessId, _n: usize) {
        self.me = me;
    }
    fn observe(&mut self, _t: Time, e: &Event<u8>) {
        match e {
            Event::Recv { from, .. } if self.me.index() == 0 => self.inbox.push(*from),
            Event::Send { .. } => {
                if self.me.index() == 0 {
                    self.acked += 1;
                } else {
                    self.sent = true;
                }
            }
            _ => {}
        }
    }
    fn next_action(&mut self, _t: Time) -> Option<ProtoAction<u8>> {
        if self.me.index() == 0 {
            (self.acked < self.inbox.len()).then(|| ProtoAction::Send {
                to: self.inbox[self.acked],
                msg: 1,
            })
        } else {
            (!self.sent).then_some(ProtoAction::Send {
                to: ProcessId::new(0),
                msg: 9,
            })
        }
    }
    fn quiescent(&self) -> bool {
        if self.me.index() == 0 {
            self.acked == self.inbox.len()
        } else {
            self.sent
        }
    }
}

/// Formulas symmetric under relabeling of the client class `1..n` —
/// the shape for which the reduced explorer preserves verdicts. Mixed
/// expected verdicts on the echo workload (delivery is optional, so the
/// `eventually` shapes are invalid; the knowledge/safety shapes hold).
fn symmetric_battery(n: usize) -> Vec<Formula<u8>> {
    let everyone = |f: &dyn Fn(usize) -> Formula<u8>| Formula::and((1..n).map(f).collect());
    let someone = |f: &dyn Fn(usize) -> Formula<u8>| Formula::or((1..n).map(f).collect());
    vec![
        Formula::eventually(someone(&|i| Formula::received(p(0), p(i), 9))),
        everyone(&|i| {
            Formula::always(Formula::implies(
                Formula::received(p(0), p(i), 9),
                Formula::knows(p(0), Formula::sent(p(i), p(0), 9)),
            ))
        }),
        Formula::eventually(someone(&|i| Formula::knows(p(0), Formula::crashed(p(i))))),
        Formula::always(Formula::not(everyone(&|i| Formula::crashed(p(i))))),
    ]
}

fn explorer_workload(smoke: bool) -> ExplorerReport {
    // Full mode is the n = 4 exhaustive cell: ~511k runs, multi-second
    // for the reference, complete (the cap is raised above the space so
    // nothing truncates).
    let (n, horizon) = if smoke { (3, 5) } else { (4, 6) };
    let cfg = ExploreConfig::new(n, horizon)
        .max_failures(1)
        .max_runs(600_000);
    let make = move |_| Echo {
        me: p(0),
        inbox: Vec::new(),
        acked: 0,
        sent: false,
    };

    // Measure the copy-light explorer first: at ~511k retained runs the
    // resident system from whichever pass goes first inflates the other
    // pass's allocator work, and the reference is the one expected to
    // pay for cloning.
    let t0 = Instant::now();
    let fast = explore(&cfg, make);
    let fast_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let slow = explore_reference(&cfg, make);
    let reference_secs = t0.elapsed().as_secs_f64();

    let runs_equal = fast.system.runs() == slow.system.runs() && fast.complete == slow.complete;
    assert!(runs_equal, "explorer run-set mismatch vs reference");

    // The reduced pass: clients symmetric, sleep sets on.
    let reduced_cfg = cfg.symmetric((1..n).collect()).with_sleep_sets();
    let t0 = Instant::now();
    let (red, stats) = explore_with_stats(&reduced_cfg, make);
    let reduced_secs = t0.elapsed().as_secs_f64();
    assert!(
        red.complete == slow.complete,
        "reduced completeness diverged"
    );

    // Cover: the canonical untimed digest sets must be equal (sleep sets
    // shift delivery times, so the timed comparison does not apply).
    let orbit = |system: &System<u8>| -> BTreeSet<u64> {
        canonical_run_digests(&reduced_cfg, system, false)
            .into_iter()
            .collect()
    };
    let cover_ok = orbit(&slow.system) == orbit(&red.system);
    assert!(cover_ok, "reduced explorer lost or invented behaviors");

    let battery = symmetric_battery(n);
    let verdicts = |system: &System<u8>| -> Vec<bool> {
        let mut checker = ModelChecker::new(system);
        battery.iter().map(|f| checker.valid(f).is_ok()).collect()
    };
    let reduced_verdicts_equal = verdicts(&red.system) == verdicts(&slow.system);
    assert!(reduced_verdicts_equal, "reduced verdicts diverged");

    let speedup_vs_reference = reference_secs / reduced_secs;
    let speedup_ok = smoke || speedup_vs_reference >= 4.0;
    assert!(
        speedup_ok,
        "reduced speedup below 4x: {speedup_vs_reference:.2}"
    );

    ExplorerReport {
        n,
        horizon,
        runs_explored: fast.system.len(),
        complete: fast.complete,
        reference_secs,
        fast_secs,
        speedup: reference_secs / fast_secs,
        runs_equal,
        watch: "plain copy-light speedup vs reference has drifted 1.66x -> ~1.23x as the \
                reference allocator path got cheaper; unasserted by design — the >= 4x floor \
                is enforced on reduced.speedup_vs_reference only"
            .to_string(),
        reduced: ReducedExplorerReport {
            runs: red.system.len(),
            complete: red.complete,
            secs: reduced_secs,
            speedup_vs_reference,
            states_canonicalized: stats.states_canonicalized,
            sleep_set_pruned: stats.sleep_set_pruned,
            steals: stats.steals,
            workers: stats.workers,
            cover_ok,
            reduced_verdicts_equal,
            speedup_ok,
        },
    }
}

fn cell_workload(smoke: bool) -> CellReport {
    let spec = if smoke {
        CellSpec::new(4, 3, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(4)
            .horizon(400)
    } else {
        CellSpec::new(
            5,
            3,
            Some(0.3),
            FdChoice::TUseful,
            ProtocolChoice::Generalized,
        )
        .trials(16)
        .horizon(900)
    };
    let t0 = Instant::now();
    let out = run_cell(&spec);
    let secs = t0.elapsed().as_secs_f64();
    CellReport {
        spec: format!(
            "n={} t={} drop={:?} fd={} protocol={}",
            spec.n, spec.t, spec.drop_prob, spec.fd, spec.protocol
        ),
        trials: spec.trials,
        achieved: out.achieved(),
        secs,
        trials_per_sec: spec.trials as f64 / secs,
    }
}

/// The standard fault-injection campaign at fixed seeds: every standard
/// plan against the chaos grid, asserting the detection matrix (zero
/// false alarms from in-model plans, every out-of-model mutant killed)
/// and recording campaign throughput and structural-detection latency.
fn chaos_workload(smoke: bool) -> ChaosReportSummary {
    use ktudc_core::chaos::{chaos_cells, run_chaos_campaign, standard_plans};

    let cells = chaos_cells(smoke);
    let n = cells.first().expect("nonempty grid").1.n;
    let plans = standard_plans(n);
    let seeds = vec![1u64, 2, 5];
    let t0 = Instant::now();
    let report = run_chaos_campaign(&cells, &plans, &seeds);
    let secs = t0.elapsed().as_secs_f64();

    assert!(
        report.zero_false_alarms(),
        "in-model fault plans raised alarms: {:?}",
        report.offending_rows()
    );
    assert!(
        report.all_mutants_killed(),
        "an out-of-model mutant was never detected"
    );

    let latencies: Vec<u64> = report
        .rows
        .iter()
        .filter_map(|r| r.detection_tick)
        .collect();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    ChaosReportSummary {
        cells: cells.len(),
        plans: plans.len(),
        seeds,
        rows: report.rows.len(),
        clean: report.clean,
        false_alarms: report.false_alarms,
        detected: report.detected,
        survived: report.survived,
        all_mutants_killed: report.all_mutants_killed(),
        secs,
        plans_per_sec: report.rows.len() as f64 / secs,
        detection_latency_ticks_mean: mean,
        detection_latency_ticks_max: latencies.iter().copied().max().unwrap_or(0),
        digest: report.digest.clone(),
    }
}

/// The durability tax and the recovery speed, both sides of the
/// checkpoint/restart subsystem:
///
/// * an exploration run plain, then with a checkpoint journal (fsync
///   per entry — the worst case), then resumed from a deliberately torn
///   journal, all three asserted digest-identical;
/// * a durable `ktudc-serve` reboot over a populated cache snapshot,
///   timed bind-to-ready.
fn recovery_workload(smoke: bool) -> RecoveryBench {
    use ktudc_serve::{serve, Client, RequestKind, ServeConfig};
    use ktudc_sim::{
        explore_spec_checkpointed, resume_checkpoint, run_explore_spec, system_digest, ExploreSpec,
    };
    use ktudc_store::SyncPolicy;

    let mut tmp = std::env::temp_dir();
    tmp.push(format!("ktudc-perf-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create scratch dir");

    // Full mode uses a spec big enough (≈18k runs, ≈50 ms plain) that
    // the overhead ratio measures the group-commit journal path rather
    // than constant setup cost on a sub-millisecond baseline.
    let mut spec = if smoke {
        ExploreSpec::new(3, 6)
    } else {
        ExploreSpec::new(4, 16)
    };
    spec.max_failures = if smoke { 2 } else { 3 };

    let t0 = Instant::now();
    let plain = run_explore_spec(&spec).expect("valid spec");
    let plain_secs = t0.elapsed().as_secs_f64();

    let journal = tmp.join("explore.ckpt");
    let t0 = Instant::now();
    let (checkpointed, _) = explore_spec_checkpointed(&spec, &journal, SyncPolicy::Always)
        .expect("checkpointed exploration");
    let checkpointed_secs = t0.elapsed().as_secs_f64();
    let checkpointed_digest = system_digest(&checkpointed.system);

    // Tear the journal's tail, then resume: the lost subtrees are
    // recomputed, the surviving ones replayed.
    let len = std::fs::metadata(&journal).expect("stat journal").len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&journal)
        .expect("open journal")
        .set_len(len.saturating_sub(37))
        .expect("tear journal tail");
    let t0 = Instant::now();
    let (_, resumed, stats) =
        resume_checkpoint(&journal, SyncPolicy::Always).expect("resume torn journal");
    let replay_secs = t0.elapsed().as_secs_f64();
    let resumed_digest = system_digest(&resumed.system);
    let digest_identical = plain.digest == checkpointed_digest && plain.digest == resumed_digest;
    assert!(digest_identical, "resume diverged from uninterrupted run");

    // Durable serve reboot: populate, drain (snapshots), boot again.
    let data_dir = tmp.join("serve");
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        data_dir: Some(data_dir),
        snapshot_every: 1,
        ..ServeConfig::default()
    };
    let handle = serve(&config).expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let kinds: Vec<RequestKind> = (0..4)
        .map(|i| {
            RequestKind::Cell(
                CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                    .trials(2)
                    .horizon(80 + i),
            )
        })
        .collect();
    client.batch(kinds).expect("populate cache");
    handle.shutdown();
    handle.join();

    let handle = serve(&config).expect("rebind");
    let recovery = handle.recovery();
    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&tmp);

    let checkpoint_overhead_percent = (checkpointed_secs / plain_secs - 1.0) * 100.0;
    let overhead_within_bound =
        checkpoint_overhead_percent <= 200.0 || (checkpointed_secs - plain_secs) < 0.25;
    assert!(
        overhead_within_bound,
        "checkpoint overhead out of bounds: {checkpoint_overhead_percent:.0}% \
         ({checkpointed_secs:.3}s vs {plain_secs:.3}s plain)"
    );

    RecoveryBench {
        n: spec.n,
        horizon: spec.horizon,
        runs: resumed.system.len(),
        plain_secs,
        checkpointed_secs,
        checkpoint_overhead_percent,
        overhead_within_bound,
        replayed_entries: stats.replayed_entries,
        replay_secs,
        replay_entries_per_sec: stats.replayed_entries as f64 / replay_secs,
        digest_identical,
        restart_to_ready_ms: recovery.restart_to_ready_micros as f64 / 1_000.0,
        recovered_cache_entries: recovery.recovered_cache_entries,
    }
}

/// The same cell workload, emitted through an in-process `ktudc-serve`
/// daemon as one pipelined batch — cold (every request computed), then
/// warm (every request answered from the scenario cache).
fn via_serve_workload(smoke: bool) -> ViaServeReport {
    use ktudc_serve::{serve, Client, RequestKind, ServeConfig};

    let count = if smoke { 4 } else { 8 };
    let kinds: Vec<RequestKind> = (0..count)
        .map(|i| {
            let spec = if smoke {
                CellSpec::new(4, 3, None, FdChoice::None, ProtocolChoice::Reliable)
                    .trials(4)
                    .horizon(400 + i as u64)
            } else {
                CellSpec::new(
                    5,
                    3,
                    Some(0.3),
                    FdChoice::TUseful,
                    ProtocolChoice::Generalized,
                )
                .trials(8)
                .horizon(900 + i as u64)
            };
            RequestKind::Cell(spec)
        })
        .collect();

    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        queue_capacity: count.max(16),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let t0 = Instant::now();
    let cold = client.batch(kinds.clone()).expect("cold batch");
    let cold_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let warm = client.batch(kinds).expect("warm batch");
    let warm_secs = t0.elapsed().as_secs_f64();

    let results_identical = cold
        .iter()
        .zip(&warm)
        .all(|(a, b)| a.result == b.result && b.cached);
    assert!(results_identical, "warm sweep diverged from cold sweep");
    let stats = client.stats().expect("stats");
    let cache_hits: u64 = stats.endpoints.iter().map(|e| e.cache_hits).sum();
    client.shutdown_server().expect("shutdown");
    handle.join();

    ViaServeReport {
        requests: count,
        workers: stats.workers,
        cold_secs,
        warm_secs,
        cold_requests_per_sec: count as f64 / cold_secs,
        warm_requests_per_sec: count as f64 / warm_secs,
        cache_hits,
        results_identical,
    }
}

/// The sharded-cluster workload: the same cold batch through one
/// single-worker daemon and through a 3-shard cluster of single-worker
/// daemons, then a shard outage to price failover on warm requests.
/// Correctness is asserted inline: every cluster answer must be
/// byte-identical to the single daemon's.
fn cluster_workload(smoke: bool) -> ClusterReport {
    use ktudc_serve::{
        serve, Client, ClusterClient, Membership, RequestKind, RetryPolicy, ServeConfig,
    };
    use std::sync::Arc;
    use std::time::Duration;

    const SHARDS: usize = 3;
    let count = if smoke { 9 } else { 18 };
    let kinds: Vec<RequestKind> = (0..count)
        .map(|i| {
            // Compute-bound on purpose, in both modes: sharding's win is
            // parallel *compute*; with trivial cells the wire overhead
            // dominates and the ratio measures nothing.
            let spec = if smoke {
                CellSpec::new(
                    5,
                    2,
                    Some(0.25),
                    FdChoice::Cycling,
                    ProtocolChoice::Generalized,
                )
                .trials(4)
                .horizon(500 + i as u64)
            } else {
                CellSpec::new(
                    5,
                    3,
                    Some(0.3),
                    FdChoice::TUseful,
                    ProtocolChoice::Generalized,
                )
                .trials(8)
                .horizon(900 + i as u64)
            };
            RequestKind::Cell(spec)
        })
        .collect();
    let single_config = ServeConfig {
        workers: 1,
        queue_capacity: count.max(16),
        ..ServeConfig::default()
    };

    // Baseline: one single-worker daemon computes the whole batch cold.
    // Its payloads are the ground truth every cluster answer is held to.
    let single = serve(&single_config).expect("bind single daemon");
    let mut client = Client::connect(single.addr()).expect("connect single");
    let t0 = Instant::now();
    let truth = client.batch(kinds.clone()).expect("single cold batch");
    let single_secs = t0.elapsed().as_secs_f64();
    client.shutdown_server().expect("shutdown single");
    single.join();

    // The same batch, consistent-hashed across a cold 3-shard cluster of
    // identical single-worker daemons.
    let shards: Vec<_> = (0..SHARDS)
        .map(|_| serve(&single_config).expect("bind shard"))
        .collect();
    let membership = Arc::new(Membership::new(
        shards.iter().map(|s| s.addr().to_string()).collect(),
    ));
    let policy = RetryPolicy {
        max_retries: 1,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        ..RetryPolicy::default()
    };
    let cluster = ClusterClient::new(Arc::clone(&membership), policy);
    let t0 = Instant::now();
    let cold = cluster.batch(kinds.clone()).expect("cluster cold batch");
    let cluster_secs = t0.elapsed().as_secs_f64();
    let mut zero_wrong_answers = cold.iter().zip(&truth).all(|(c, t)| c.result == t.result);
    assert!(
        zero_wrong_answers,
        "cluster cold batch diverged from single daemon"
    );

    // Failover pricing on warm requests: time the shard-0-owned subset
    // warm with every shard up, then take shard 0 down, re-warm the
    // replicas once, and time the same subset again. The difference is
    // what rerouting costs once compute is out of the picture.
    let owned: Vec<(usize, RequestKind)> = kinds
        .iter()
        .cloned()
        .enumerate()
        .filter(|(_, kind)| cluster.route(kind) == 0)
        .collect();
    // Times one warm pass over the shard-0-owned subset; also re-checks
    // every answer against the ground truth.
    let time_each = |cluster: &ClusterClient| -> (f64, bool) {
        let t0 = Instant::now();
        let mut ok = true;
        for (i, kind) in &owned {
            let response = cluster.request(kind.clone()).expect("warm request");
            ok &= response.result == truth[*i].result;
        }
        let per_request_ms = t0.elapsed().as_secs_f64() * 1000.0 / owned.len().max(1) as f64;
        (per_request_ms, ok)
    };
    let (warm_direct_ms, direct_ok) = time_each(&cluster);
    membership.set_addr(0, "127.0.0.1:1");
    // First failover pass warms the replicas' caches.
    let mut failover_ok = true;
    for (i, kind) in &owned {
        let response = cluster.request(kind.clone()).expect("failover request");
        failover_ok &= response.result == truth[*i].result;
    }
    let (warm_failover_ms, refailover_ok) = time_each(&cluster);
    zero_wrong_answers &= direct_ok && failover_ok && refailover_ok;
    assert!(
        zero_wrong_answers,
        "a failover answer diverged from the single daemon"
    );
    let failovers = cluster.metrics().failovers;
    assert!(failovers > 0, "shard 0 owned keys must have failed over");

    for handle in shards {
        handle.shutdown();
    }
    ClusterReport {
        shards: SHARDS,
        requests: count,
        requests_per_sec_single: count as f64 / single_secs,
        requests_per_sec_cluster: count as f64 / cluster_secs,
        speedup_vs_single: single_secs / cluster_secs,
        failover_added_latency_ms: (warm_failover_ms - warm_direct_ms).max(0.0),
        failovers,
        zero_wrong_answers,
    }
}

/// The degradation soak: saturate a deliberately tiny daemon and record
/// how it sheds. Every assertion here is part of the overload contract —
/// a violation is a bench *failure*, not a slow result.
fn overload_workload(smoke: bool) -> OverloadReport {
    use ktudc_model::Budget;
    use ktudc_serve::{
        serve, Client, ErrorCode, RequestKind, RequestOptions, ResponseKind, ServeConfig,
    };
    use ktudc_sim::{
        explore_spec_checkpointed, explore_spec_checkpointed_budgeted, run_explore_spec,
        system_digest, CheckpointOutcome, ExploreSpec, WireProtocol,
    };
    use ktudc_store::SyncPolicy;

    let workers = 1;
    let queue_capacity = 4;
    let handle = serve(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        cache_capacity: 512,
        target_p99_ms: 50,
        watchdog_tick_ms: 5,
        stuck_after_ticks: 400,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();

    let cell = |i: usize| {
        RequestKind::Cell(
            CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(2)
                .horizon(100 + i as u64),
        )
    };
    // An exploration demonstrably too large for a millisecond deadline
    // on *this* machine: grow the horizon until the uninterrupted walk
    // takes ≥ 50 ms, so the deadline budget is guaranteed to trip.
    let oneshot = |horizon| {
        let mut spec = ExploreSpec::new(3, horizon);
        spec.protocol = WireProtocol::OneShot {
            from: 0,
            to: 1,
            msg: 7,
        };
        spec
    };
    let big_spec = (6..=30)
        .map(oneshot)
        .find(|spec| {
            let t0 = Instant::now();
            run_explore_spec(spec).expect("valid spec");
            t0.elapsed().as_millis() >= 50
        })
        .expect("no horizon produced a 50ms exploration");

    // Uncontended baseline: distinct cells, one at a time.
    let mut probe = Client::connect(addr).expect("connect");
    let mut uncontended: Vec<u64> = (0..8)
        .map(|i| {
            probe
                .request(cell(10_000 + i))
                .expect("uncontended request")
                .micros
        })
        .collect();
    uncontended.sort_unstable();
    let uncontended_p99 = uncontended[(uncontended.len() - 1) * 99 / 100];

    // The storm: parallel connections pipelining mixed batches.
    let threads = if smoke { 3 } else { 6 };
    let per_thread = if smoke { 12 } else { 32 };
    let stormers: Vec<_> = (0..threads)
        .map(|thread| {
            let big_spec = big_spec.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let kinds: Vec<(RequestKind, RequestOptions)> = (0..per_thread)
                    .map(|i| match i % 3 {
                        0 => (cell(thread * per_thread + i), RequestOptions::default()),
                        1 => (
                            cell(thread * per_thread + i),
                            RequestOptions {
                                deadline_ms: Some(100),
                                ..RequestOptions::default()
                            },
                        ),
                        _ => (
                            RequestKind::Explore(big_spec.clone()),
                            RequestOptions {
                                deadline_ms: Some(2),
                                accept_partial: true,
                                ..RequestOptions::default()
                            },
                        ),
                    })
                    .collect();
                client.batch_with_options(kinds).expect("storm batch")
            })
        })
        .collect();

    let mut admitted_micros = Vec::new();
    let mut aborted_partial = 0usize;
    let mut shed_overloaded = 0u64;
    let mut shed_deadline = 0u64;
    let mut all_sheds_typed = true;
    let mut requests = 0usize;
    for stormer in stormers {
        for response in stormer.join().expect("storm thread") {
            requests += 1;
            match &response.result {
                ResponseKind::Cell(_) | ResponseKind::Explore(_) | ResponseKind::Check(_) => {
                    admitted_micros.push(response.micros);
                }
                ResponseKind::Aborted(_) => {
                    aborted_partial += 1;
                    admitted_micros.push(response.micros);
                }
                ResponseKind::Error(e) => match e.code {
                    ErrorCode::Overloaded => shed_overloaded += 1,
                    ErrorCode::DeadlineExceeded => shed_deadline += 1,
                    _ => all_sheds_typed = false,
                },
                _ => all_sheds_typed = false,
            }
        }
    }
    assert!(all_sheds_typed, "an overload resolution was not typed");
    assert!(!admitted_micros.is_empty(), "the storm admitted nothing");
    admitted_micros.sort_unstable();
    let admitted_p99 = admitted_micros[(admitted_micros.len() - 1) * 99 / 100];

    let health = probe.health().expect("health");
    let zero_stuck_workers = health.stuck_workers == 0;
    assert!(zero_stuck_workers, "watchdog latched a stuck worker");
    handle.shutdown();
    handle.join();

    // Budget-abort + resume digest identity, through the checkpoint
    // journal: probe the walk's step count, cap at half, resume clean.
    let baseline = run_explore_spec(&big_spec).expect("valid spec");
    let mut journal = std::env::temp_dir();
    journal.push(format!("ktudc-perf-overload-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&journal);
    let steps_probe = Budget::unlimited();
    {
        let mut scratch = std::env::temp_dir();
        scratch.push(format!(
            "ktudc-perf-overload-probe-{}.ckpt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&scratch);
        explore_spec_checkpointed_budgeted(
            &big_spec,
            &scratch,
            SyncPolicy::Never,
            Some(&steps_probe),
        )
        .expect("probe walk");
        let _ = std::fs::remove_file(&scratch);
    }
    let budget = Budget::unlimited().with_max_steps(steps_probe.steps() / 2);
    let (outcome, _) =
        explore_spec_checkpointed_budgeted(&big_spec, &journal, SyncPolicy::Never, Some(&budget))
            .expect("budgeted walk");
    assert!(
        matches!(outcome, CheckpointOutcome::Aborted { .. }),
        "a half-walk step cap must abort"
    );
    let (resumed, _) =
        explore_spec_checkpointed(&big_spec, &journal, SyncPolicy::Never).expect("resume");
    let digest_identical_after_resume = system_digest(&resumed.system) == baseline.digest;
    assert!(digest_identical_after_resume, "resume diverged");
    let _ = std::fs::remove_file(&journal);

    let sheds = shed_overloaded + shed_deadline;
    OverloadReport {
        requests,
        workers,
        queue_capacity,
        admitted: admitted_micros.len(),
        aborted_partial,
        shed_overloaded,
        shed_deadline,
        shed_rate: sheds as f64 / requests as f64,
        uncontended_p99_ms: uncontended_p99 as f64 / 1_000.0,
        admitted_p99_ms: admitted_p99 as f64 / 1_000.0,
        admitted_over_uncontended: admitted_p99 as f64 / uncontended_p99.max(1) as f64,
        all_sheds_typed,
        zero_stuck_workers,
        digest_identical_after_resume,
    }
}

/// The empirical failure-detector zoo: every detector × every fault
/// regime, through the same classification harness `ctl classify` and the
/// fd test suite use. Two invariants are asserted inline (and recorded as
/// grep-stable JSON booleans for CI):
///
/// * clean reliable channels produce **zero** false suspicions from every
///   detector — a detector that suspects a live process on a quiet
///   network is mistuned, full stop;
/// * every **in-model** regime detects the injected crash in every arm,
///   with worst-case detection latency within a fixed tick bound. The
///   out-of-model severed link is exempt (the paper's R5 no longer
///   holds), though its rows are still recorded.
fn fd_zoo_workload(smoke: bool) -> FdZooReport {
    use ktudc_fd::{classify_detector, ClassifySpec, DetectorKind, FaultRegime};

    // Worst-case in-model path: gossip's 60-tick fail timeout plus an
    // 18–25-tick loss/delay window before the suspicion propagates, with
    // slack for the staggered report cadence.
    const LATENCY_BOUND_TICKS: u64 = 120;

    let (trials, horizon): (u64, Time) = if smoke { (2, 200) } else { (6, 240) };
    let cells: Vec<ClassifySpec> = DetectorKind::ALL
        .iter()
        .flat_map(|&detector| {
            FaultRegime::ALL.iter().map(move |&regime| {
                ClassifySpec::new(detector, regime)
                    .trials(trials)
                    .horizon(horizon)
            })
        })
        .collect();

    let t0 = Instant::now();
    let verdicts = ktudc_par::par_map(cells.clone(), |spec| classify_detector(&spec));
    let secs = t0.elapsed().as_secs_f64();

    let mut clean_zero_false_suspicions = true;
    let mut detection_latency_within_bound = true;
    let rows: Vec<FdZooRow> = cells
        .iter()
        .zip(&verdicts)
        .map(|(spec, v)| {
            if spec.regime == FaultRegime::Clean && v.false_suspicion_events > 0 {
                clean_zero_false_suspicions = false;
            }
            if spec.regime.in_model() {
                match &v.detection_latency {
                    Some(lat) if lat.max <= LATENCY_BOUND_TICKS => {}
                    _ => detection_latency_within_bound = false,
                }
            }
            FdZooRow {
                detector: spec.detector.to_string(),
                regime: spec.regime.to_string(),
                in_model: spec.regime.in_model(),
                class: v.class.to_string(),
                false_suspicions: v.false_suspicion_events,
                detection_latency_mean: v.detection_latency.as_ref().map(|l| l.mean),
                detection_latency_max: v.detection_latency.as_ref().map(|l| l.max),
                latency_samples: v.detection_latency.as_ref().map_or(0, |l| l.samples),
            }
        })
        .collect();

    assert!(
        clean_zero_false_suspicions,
        "a detector falsely suspected a live process on clean channels"
    );
    assert!(
        detection_latency_within_bound,
        "an in-model regime missed the crash or exceeded {LATENCY_BOUND_TICKS} ticks"
    );

    FdZooReport {
        detectors: DetectorKind::ALL.len(),
        regimes: FaultRegime::ALL.len(),
        n: cells[0].n,
        trials,
        horizon,
        secs,
        cells_per_sec: rows.len() as f64 / secs,
        rows,
        clean_zero_false_suspicions,
        detection_latency_bound_ticks: LATENCY_BOUND_TICKS,
        detection_latency_within_bound,
    }
}

/// The live failure-detector classification: the `serve::detector`
/// φ-accrual plane measured against the paper's detector hierarchy on a
/// real cluster, one wire regime at a time.
///
/// In every regime one shard (the owner of scenario 0) is black-holed
/// from frame zero — the "crash" — while the live shards' links carry
/// the regime's toxic. The plane's per-shard suspicion states are
/// sampled into the same completeness/accuracy booleans the simulated
/// zoo derives from run transcripts and condensed through
/// [`ktudc_fd::condense_class`]: the live plane *earns* a class per
/// wire regime exactly like a simulated detector earns one per fault
/// regime. Alongside classification, an audited request campaign prices
/// the payoff of acting on suspicion — proactive failovers (engaged at
/// routing time, before any request burns a timeout), hedge win rate,
/// and the uniform invariants (zero wrong answers, exactly-once
/// compute, hedges never double-compute), all asserted inline.
fn fd_live_workload(smoke: bool) -> FdLiveReport {
    use ktudc_fd::{condense_class, EmpiricalClass};
    use ktudc_serve::{
        chaos_proxy, serve, Auditor, ChaosProxy, Client, ClusterClient, DetectorConfig, HashRing,
        Membership, RequestKind, RetryPolicy, ServeConfig, Toxic, ToxicPlan,
    };
    use std::sync::Arc;
    use std::time::Duration;

    const SEED: u64 = 0x0fd1_1fe5;
    const SHARDS: usize = 3;
    let scenarios = if smoke { 6 } else { 10 };
    let scenario = |i: usize| {
        RequestKind::Cell(
            CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(2)
                .horizon(150 + i as u64 * 10),
        )
    };
    // Fast test cadence with the hedge band raised to φ ≥ 2 (~115ms
    // silence on a learned 25ms cadence): a scheduler hiccup on a
    // healthy shard must not fire a hedge into a cold replica — that
    // would compute the scenario a second time and fail the
    // exactly-once audit — while the victim's φ still crosses the band
    // on its way to suspicion, where the hedge is provably
    // duplicate-free (a partitioned primary never computes).
    let config = DetectorConfig {
        hedge_threshold: 2.0,
        ..DetectorConfig::fast()
    };
    // One short exchange deadline per leg, no retry ladder: failover
    // latency is the detector's to win, not the retry budget's.
    let policy = RetryPolicy {
        request_timeout: Duration::from_millis(150),
        max_retries: 0,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(2),
        ..RetryPolicy::default()
    };

    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut all_regimes_classified = true;
    let mut zero_wrong_answers = true;
    let mut exactly_once = true;
    let mut hedges_never_double_compute = true;
    for regime in ["clean", "delay_spikes", "flaky_partition"] {
        let workers: Vec<_> = (0..SHARDS)
            .map(|_| {
                serve(&ServeConfig {
                    addr: "127.0.0.1:0".to_string(),
                    workers: 2,
                    queue_capacity: 32,
                    cache_capacity: 256,
                    watchdog_tick_ms: 5,
                    ..ServeConfig::default()
                })
                .expect("bind ephemeral port")
            })
            .collect();
        let ring = HashRing::new(SHARDS);
        let victim = ring.shard_for(ClusterClient::shard_key(&scenario(0)));
        let flaky = (0..SHARDS).find(|&s| s != victim).expect("three shards");
        let mut proxies: Vec<ChaosProxy> = Vec::new();
        let addrs: Vec<String> = (0..SHARDS)
            .map(|s| {
                let plan = if s == victim {
                    // The crash: requests and heartbeats vanish from
                    // frame zero; the worker never even hears them.
                    Some(ToxicPlan::none().upstream(Toxic::Partition {
                        start: 0,
                        until: None,
                    }))
                } else if regime == "delay_spikes" {
                    // Heartbeat pongs stalled 30ms every 4th frame —
                    // well under the ~230ms suspicion silence, so a
                    // well-tuned φ should ride it out.
                    Some(ToxicPlan::none().downstream(Toxic::DelaySpike {
                        period: 4,
                        width: 1,
                        extra: Duration::from_millis(30),
                    }))
                } else if regime == "flaky_partition" && s == flaky {
                    // A bounded black hole on a *live* shard's probe
                    // path (~20 beats): long enough to force a false
                    // suspicion, which must then clear through
                    // probation once frames flow again.
                    Some(ToxicPlan::none().upstream(Toxic::Partition {
                        start: 10,
                        until: Some(30),
                    }))
                } else {
                    None
                };
                match plan {
                    Some(plan) => {
                        let proxy = chaos_proxy(workers[s].addr().to_string(), plan, SEED)
                            .expect("proxy binds");
                        let addr = proxy.addr().to_string();
                        proxies.push(proxy);
                        addr
                    }
                    None => workers[s].addr().to_string(),
                }
            })
            .collect();
        let cluster =
            ClusterClient::new(Arc::new(Membership::new(addrs)), policy).with_detector(config);
        let plane = Arc::clone(cluster.detector().expect("plane attached"));

        let audit = Auditor::new().with_latency_bound_ms(20_000);
        let kinds: Vec<RequestKind> = (0..scenarios).map(scenario).collect();
        for kind in &kinds {
            let RequestKind::Cell(spec) = kind else {
                unreachable!()
            };
            audit.expect(kind, &ktudc_serve::ResponseKind::Cell(run_cell(spec)));
        }

        // Soft-band sweep, clean wire only: requests issued while the
        // victim's φ climbs through the hedge band exercise live
        // hedging. On regimes that drop frames on *live* links a sweep
        // here could land a computation on a replica mid-window and
        // muddy the exactly-once ledger, so those regimes campaign only
        // after the plane settles.
        if regime == "clean" {
            for kind in &kinds {
                let t = Instant::now();
                match cluster.request_with_options(kind.clone(), Default::default()) {
                    Ok(r) => audit.record_response(kind, &r, t.elapsed()),
                    Err(e) => audit.record_client_error(kind, &e, t.elapsed()),
                }
            }
        }

        // The classification watch: sample every shard's suspicion
        // until the crash is detected — and, on the flaky regime, the
        // false suspicion has come *and* gone.
        let mut ever = [false; SHARDS];
        let hard_deadline = Instant::now() + Duration::from_secs(20);
        let settle_deadline = Instant::now() + Duration::from_secs(8);
        loop {
            for (s, seen) in ever.iter_mut().enumerate() {
                *seen |= plane.suspicion(s).suspected;
            }
            let crash_detected = plane.suspicion(victim).suspected;
            let flaky_settled = regime != "flaky_partition" || {
                let s = plane.suspicion(flaky);
                (ever[flaky] && !s.suspected && !s.probation) || Instant::now() > settle_deadline
            };
            if (crash_detected && flaky_settled) || Instant::now() > hard_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let live = |s: usize| s != victim;
        let strong_completeness = plane.suspicion(victim).suspected;
        assert!(
            strong_completeness,
            "fd-live regime `{regime}`: the black-holed shard was never suspected: {:?}",
            plane.stats()
        );
        let false_suspicions = (0..SHARDS).filter(|&s| live(s) && ever[s]).count() as u64;
        let class = condense_class(
            strong_completeness,
            false_suspicions == 0,
            (0..SHARDS).any(|s| live(s) && !ever[s]),
            (0..SHARDS).all(|s| !live(s) || !plane.suspicion(s).suspected),
            (0..SHARDS).any(|s| live(s) && !plane.suspicion(s).suspected),
        );
        all_regimes_classified &= class != EmpiricalClass::Unclassified;

        // The audited campaign under active suspicion: the victim's
        // keys fail over proactively, everything is answered.
        for kind in &kinds {
            let t = Instant::now();
            let resp = cluster
                .request_with_options(kind.clone(), Default::default())
                .expect("campaign request under suspicion");
            assert_ne!(resp.shard, Some(victim), "a suspected shard answered");
            audit.record_response(kind, &resp, t.elapsed());
        }

        // Exactly-once, summed across the fleet by direct probes: the
        // victim computed nothing, each scenario landed exactly once.
        let mut computed = 0u64;
        let mut stuck = 0u64;
        for handle in &workers {
            let mut probe = Client::connect(handle.addr()).expect("direct probe");
            let health = probe.health().expect("health");
            computed += health.cache_entries as u64;
            stuck += health.stuck_workers;
        }
        let stats = plane.stats();
        audit.note_computed(computed);
        audit.note_stuck_connections(stuck);
        audit.note_hedges(stats.hedges_fired);
        let report = audit.report();
        assert!(
            report.passed,
            "fd-live regime `{regime}` failed its audit: {report:?}"
        );
        zero_wrong_answers &= report.wrong_answers == 0;
        exactly_once &= report.exactly_once == Some(true);
        hedges_never_double_compute &= report.hedges_never_double_compute == Some(true);
        rows.push(FdLiveRegimeRow {
            regime: regime.to_string(),
            class: class.to_string(),
            strong_completeness,
            false_suspicions,
            suspects_raised: stats.suspects_raised,
            suspects_cleared: stats.suspects_cleared,
            proactive_failovers: stats.proactive_failovers,
            hedges_fired: stats.hedges_fired,
            hedges_won: stats.hedges_won,
            hedge_win_rate: if stats.hedges_fired == 0 {
                0.0
            } else {
                stats.hedges_won as f64 / stats.hedges_fired as f64
            },
            requests: report.requests,
            payloads: report.payloads,
            probes_sent: stats.probes_sent,
        });

        drop(cluster);
        for mut proxy in proxies {
            proxy.shutdown();
        }
        for handle in workers {
            handle.shutdown();
            handle.join();
        }
    }
    assert!(
        all_regimes_classified,
        "a wire regime left the live detector unclassified"
    );

    FdLiveReport {
        seed: SEED,
        shards: SHARDS,
        scenarios_per_regime: scenarios,
        probe_period_ms: config.probe_period.as_millis() as u64,
        suspect_threshold: config.suspect_threshold,
        hedge_threshold: config.hedge_threshold,
        regimes: rows,
        all_regimes_classified,
        zero_wrong_answers,
        exactly_once,
        hedges_never_double_compute,
        secs: t0.elapsed().as_secs_f64(),
    }
}

/// The wire-plane chaos soak: a fresh daemon behind a seeded
/// [`ktudc_serve::chaos_proxy`] per toxic regime, a fixed scenario batch
/// stormed through a `HardenedClient`, and an [`ktudc_serve::Auditor`]
/// holding the whole campaign to the uniform invariants — byte-identical
/// answers vs direct computation, typed-error-only degradation,
/// exactly-once compute (clean second pass all cache hits), zero stuck
/// workers. Any regime failing its audit is a bench failure.
fn chaos_net_workload(smoke: bool) -> ChaosNetReport {
    use ktudc_serve::{
        chaos_proxy, serve, Auditor, Client, HardenedClient, RequestKind, RetryPolicy, ServeConfig,
        Toxic, ToxicPlan,
    };
    use std::time::Duration;

    const SEED: u64 = 0x5eed_cab1;
    // Even smoke mode needs enough frames per direction for every
    // every-k-th toxic (k up to 6) to actually fire at least once.
    let scenarios = if smoke { 8 } else { 12 };
    let regimes: Vec<(&str, ToxicPlan)> = vec![
        ("baseline", ToxicPlan::none()),
        (
            "delay_spikes",
            ToxicPlan::none().downstream(Toxic::DelaySpike {
                period: 4,
                width: 1,
                extra: Duration::from_millis(30),
            }),
        ),
        (
            "throttle",
            ToxicPlan::none().downstream(Toxic::Throttle {
                chunk: 7,
                pause: Duration::from_millis(1),
            }),
        ),
        (
            "truncate",
            ToxicPlan::none().downstream(Toxic::TruncateEvery(5)),
        ),
        (
            "corrupt",
            ToxicPlan::none().downstream(Toxic::CorruptEvery(5)),
        ),
        ("reset", ToxicPlan::none().downstream(Toxic::ResetEvery(6))),
        (
            "stall_half_open",
            ToxicPlan::none().downstream(Toxic::StallEvery(6)),
        ),
        (
            "partition_one_way",
            ToxicPlan::none().upstream(Toxic::Partition {
                start: 3,
                until: Some(6),
            }),
        ),
    ];
    let scenario = |i: usize| {
        RequestKind::Cell(
            CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(2)
                .horizon(200 + i as u64 * 10),
        )
    };

    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut requests = 0u64;
    let mut wrong_answers = 0u64;
    let mut untyped_failures = 0u64;
    let mut generation_regressions = 0u64;
    let mut stuck_connections = 0u64;
    let mut exactly_once = true;
    for (name, plan) in regimes {
        let handle = serve(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 32,
            cache_capacity: 256,
            watchdog_tick_ms: 5,
            stuck_after_ticks: 400,
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port");
        let mut proxy = chaos_proxy(handle.addr().to_string(), plan, SEED).expect("proxy");
        let auditor = Auditor::new().with_latency_bound_ms(30_000);
        let kinds: Vec<RequestKind> = (0..scenarios).map(scenario).collect();
        for kind in &kinds {
            let RequestKind::Cell(spec) = kind else {
                unreachable!()
            };
            auditor.expect(kind, &ktudc_serve::ResponseKind::Cell(run_cell(spec)));
        }
        // Storm pass: through the proxy, salvaged by the hardened client.
        let mut client = HardenedClient::new(
            proxy.addr().to_string(),
            RetryPolicy {
                request_timeout: Duration::from_millis(800),
                max_retries: 5,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
                ..RetryPolicy::default()
            },
        );
        let mut latencies: Vec<u64> = Vec::new();
        for kind in &kinds {
            let t = Instant::now();
            let result = client.request(kind.clone());
            let latency = t.elapsed();
            latencies.push(latency.as_micros() as u64);
            match &result {
                Ok(response) => auditor.record_response(kind, response, latency),
                Err(err) => auditor.record_client_error(kind, err, latency),
            }
        }
        // Clean second pass, direct: every scenario must be a cache hit.
        let mut direct = Client::connect(handle.addr()).expect("direct connect");
        for kind in &kinds {
            let t = Instant::now();
            let response = direct.request(kind.clone()).expect("direct request");
            assert!(response.cached, "post-storm scenario was recomputed");
            auditor.record_response(kind, &response, t.elapsed());
        }
        let health = direct.health().expect("health");
        auditor.note_stuck_connections(health.stuck_workers);
        auditor.note_computed(health.cache_entries as u64);
        let report = auditor.report();
        assert!(
            report.passed,
            "chaos-net regime `{name}` failed its audit: {report:?}"
        );
        let stats = proxy.stats();
        if name != "baseline" {
            assert!(stats.injections() > 0, "regime `{name}` injected nothing");
        }
        requests += report.requests;
        wrong_answers += report.wrong_answers;
        untyped_failures += report.untyped_failures;
        generation_regressions += report.generation_regressions;
        stuck_connections += report.stuck_connections;
        exactly_once &= report.exactly_once == Some(true);
        latencies.sort_unstable();
        rows.push(ChaosNetRegimeRow {
            regime: name.to_string(),
            requests: report.requests,
            payloads: report.payloads,
            typed_errors: report.typed_wire_errors + report.typed_client_errors,
            injections: stats.injections(),
            p99_ms: latencies[(latencies.len() - 1) * 99 / 100] as f64 / 1_000.0,
        });
        proxy.shutdown();
        handle.shutdown();
        handle.join();
    }
    assert!(
        exactly_once,
        "a chaos-net regime recomputed or lost a scenario"
    );
    ChaosNetReport {
        seed: SEED,
        regimes: rows,
        scenarios_per_regime: scenarios,
        requests,
        wrong_answers,
        untyped_failures,
        generation_regressions,
        stuck_connections,
        exactly_once,
        zero_wrong_answers: wrong_answers == 0,
        no_unTyped_failures: untyped_failures == 0,
        secs: t0.elapsed().as_secs_f64(),
    }
}

fn main() {
    let mut smoke = false;
    let mut via_serve = false;
    let mut overload = false;
    let mut fd_zoo = false;
    let mut fd_live = false;
    let mut cluster = false;
    let mut chaos_net = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--via-serve" => via_serve = true,
            "--overload" => overload = true,
            "--fd-zoo" => fd_zoo = true,
            "--fd-live" => fd_live = true,
            "--cluster" => cluster = true,
            "--chaos-net" => chaos_net = true,
            other => {
                eprintln!(
                    "perf: unknown argument `{other}` (accepted: --smoke, --via-serve, --overload, --fd-zoo, --fd-live, --cluster, --chaos-net)"
                );
                std::process::exit(2);
            }
        }
    }
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("perf: mode={mode} threads={}", ktudc_par::thread_count());

    let checker = checker_workload(smoke);
    eprintln!(
        "perf: checker {} points x {} formulas: reference {:.3}s, fast {:.3}s ({:.1}x), {} table bytes",
        checker.points,
        checker.formulas,
        checker.reference_secs,
        checker.fast_secs,
        checker.speedup,
        checker.peak_table_bytes,
    );

    let explorer = explorer_workload(smoke);
    eprintln!(
        "perf: explorer n={} {} runs (complete={}): reference {:.3}s, fast {:.3}s ({:.1}x)",
        explorer.n,
        explorer.runs_explored,
        explorer.complete,
        explorer.reference_secs,
        explorer.fast_secs,
        explorer.speedup,
    );
    eprintln!(
        "perf: explorer reduced {} runs in {:.3}s ({:.1}x vs reference): {} canonicalized, {} sleep-pruned, {} steals on {} workers, cover={} verdicts={}",
        explorer.reduced.runs,
        explorer.reduced.secs,
        explorer.reduced.speedup_vs_reference,
        explorer.reduced.states_canonicalized,
        explorer.reduced.sleep_set_pruned,
        explorer.reduced.steals,
        explorer.reduced.workers,
        explorer.reduced.cover_ok,
        explorer.reduced.reduced_verdicts_equal,
    );

    let cell = cell_workload(smoke);
    eprintln!(
        "perf: cell [{}] {} trials in {:.3}s (achieved={})",
        cell.spec, cell.trials, cell.secs, cell.achieved,
    );

    let chaos = chaos_workload(smoke);
    eprintln!(
        "perf: chaos {} rows in {:.3}s ({:.1} plans/s): {} clean, {} false alarms, {} detected, {} survived, mean R3 latency {:.1} ticks",
        chaos.rows,
        chaos.secs,
        chaos.plans_per_sec,
        chaos.clean,
        chaos.false_alarms,
        chaos.detected,
        chaos.survived,
        chaos.detection_latency_ticks_mean,
    );

    let recovery = recovery_workload(smoke);
    eprintln!(
        "perf: recovery {} runs: checkpoint overhead {:.1}% ({:.3}s vs {:.3}s), replay {} entries in {:.3}s ({:.0}/s), restart-to-ready {:.2} ms ({} entries recovered)",
        recovery.runs,
        recovery.checkpoint_overhead_percent,
        recovery.checkpointed_secs,
        recovery.plain_secs,
        recovery.replayed_entries,
        recovery.replay_secs,
        recovery.replay_entries_per_sec,
        recovery.restart_to_ready_ms,
        recovery.recovered_cache_entries,
    );

    let via_serve = via_serve.then(|| {
        let r = via_serve_workload(smoke);
        eprintln!(
            "perf: via-serve {} requests: cold {:.3}s ({:.1} req/s), warm {:.3}s ({:.1} req/s), {} cache hits",
            r.requests,
            r.cold_secs,
            r.cold_requests_per_sec,
            r.warm_secs,
            r.warm_requests_per_sec,
            r.cache_hits,
        );
        r
    });

    let overload = overload.then(|| {
        let r = overload_workload(smoke);
        eprintln!(
            "perf: overload {} requests ({} admitted, {} aborted-partial, {} overloaded, {} deadline sheds, shed rate {:.2}): admitted p99 {:.2}ms vs uncontended {:.2}ms ({:.1}x), typed={} stuck-free={} resume-digest-ok={}",
            r.requests,
            r.admitted,
            r.aborted_partial,
            r.shed_overloaded,
            r.shed_deadline,
            r.shed_rate,
            r.admitted_p99_ms,
            r.uncontended_p99_ms,
            r.admitted_over_uncontended,
            r.all_sheds_typed,
            r.zero_stuck_workers,
            r.digest_identical_after_resume,
        );
        r
    });

    let fd_zoo = fd_zoo.then(|| {
        let r = fd_zoo_workload(smoke);
        let perfect = r.rows.iter().filter(|row| row.class == "perfect").count();
        eprintln!(
            "perf: fd-zoo {} detectors x {} regimes ({} cells, {:.1}/s) in {:.3}s: {} perfect, clean-zero-false={} latency<=({} ticks)={}",
            r.detectors,
            r.regimes,
            r.rows.len(),
            r.cells_per_sec,
            r.secs,
            perfect,
            r.clean_zero_false_suspicions,
            r.detection_latency_bound_ticks,
            r.detection_latency_within_bound,
        );
        r
    });

    let fd_live = fd_live.then(|| {
        let r = fd_live_workload(smoke);
        for row in &r.regimes {
            eprintln!(
                "perf: fd-live [{}] class={} false-suspicions={} proactive-failovers={} hedges {}/{} won (win rate {:.2})",
                row.regime,
                row.class,
                row.false_suspicions,
                row.proactive_failovers,
                row.hedges_won,
                row.hedges_fired,
                row.hedge_win_rate,
            );
        }
        eprintln!(
            "perf: fd-live {} regimes x {} scenarios in {:.3}s: classified={} zero-wrong={} exactly-once={} hedges-clean={}",
            r.regimes.len(),
            r.scenarios_per_regime,
            r.secs,
            r.all_regimes_classified,
            r.zero_wrong_answers,
            r.exactly_once,
            r.hedges_never_double_compute,
        );
        r
    });

    let chaos_net = chaos_net.then(|| {
        let r = chaos_net_workload(smoke);
        eprintln!(
            "perf: chaos-net {} regimes x {} scenarios ({} requests) in {:.3}s: wrong-answers={} untyped={} stuck={} exactly-once={}",
            r.regimes.len(),
            r.scenarios_per_regime,
            r.requests,
            r.secs,
            r.wrong_answers,
            r.untyped_failures,
            r.stuck_connections,
            r.exactly_once,
        );
        r
    });

    let cluster = cluster.then(|| {
        let r = cluster_workload(smoke);
        eprintln!(
            "perf: cluster {} requests over {} shards: single {:.1} req/s, cluster {:.1} req/s ({:.2}x), failover adds {:.2} ms/request warm ({} failovers), zero-wrong-answers={}",
            r.requests,
            r.shards,
            r.requests_per_sec_single,
            r.requests_per_sec_cluster,
            r.speedup_vs_single,
            r.failover_added_latency_ms,
            r.failovers,
            r.zero_wrong_answers,
        );
        r
    });

    let report = Report {
        schema: "ktudc-bench-perf/1".to_string(),
        mode: mode.to_string(),
        threads: ktudc_par::thread_count(),
        checker,
        explorer,
        cell,
        chaos,
        recovery,
        via_serve,
        overload,
        fd_zoo,
        fd_live,
        cluster,
        chaos_net,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_ktudc.json", &json).expect("write BENCH_ktudc.json");
    println!("{json}");
}
