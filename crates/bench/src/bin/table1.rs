//! Regenerates **Table 1** of Halpern & Ricciardi (1999): the type of
//! failure detector needed for UDC vs. consensus, by channel-reliability
//! regime and failure-bound regime.
//!
//! Every cell is *exercised*, not asserted: positive cells run the
//! designated protocol/detector pairing over seeded trials and must
//! succeed on all of them; negative side-notes run the next-weaker class
//! and report the observed violations/stalls. Run with `--release`; the
//! full grid takes a couple of minutes in debug builds.
//!
//! ```text
//! cargo run -p ktudc-bench --bin table1 --release
//! ```

use ktudc_bench::{run_consensus_cell, ConsensusChoice};
use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};

const N: usize = 5;
const TRIALS: u64 = 10;
const LOSS: f64 = 0.3;

fn udc(t: usize, drop: Option<f64>, fd: FdChoice, proto: ProtocolChoice) -> String {
    let out = run_cell(
        &CellSpec::new(N, t, drop, fd, proto)
            .trials(TRIALS)
            .horizon(1200),
    );
    format!(
        "{fd} [{}/{}{}]",
        out.satisfied,
        out.trials(),
        if out.violated_permanent > 0 {
            format!(", {} certified violations", out.violated_permanent)
        } else if out.unsatisfied_pending > 0 {
            format!(", {} stalls", out.unsatisfied_pending)
        } else {
            String::new()
        }
    )
}

fn consensus(t: usize, choice: ConsensusChoice) -> String {
    let out = run_consensus_cell(N, t, choice, TRIALS, 3000);
    let name = match choice {
        ConsensusChoice::RotatingEventuallyStrong => "◇S",
        ConsensusChoice::StrongDetector => "Strong",
    };
    format!("{name} [{}/{}]", out.satisfied, out.satisfied + out.failed)
}

fn main() {
    // Regime representatives for n = 5: t = 2 (< n/2), t = 3
    // (n/2 ≤ t < n−1), t = 4 (= n−1).
    let (t_low, t_mid, t_high) = (2usize, 3usize, 4usize);
    println!("Reproduction of Table 1 (n = {N}, {TRIALS} seeded trials/cell, loss = {LOSS})");
    println!("rows: what the designated FD class achieves; notes: what the weaker class does\n");

    println!("{:=<152}", "");
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "", "0 < t < n/2", "n/2 <= t < n-1", "n-1 <= t <= n"
    );
    println!("{:-<152}", "");

    // --- Reliable channels, UDC: no FD anywhere (Prop 2.4). ---
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "Reliable / UDC",
        udc(t_low, None, FdChoice::None, ProtocolChoice::Reliable),
        udc(t_mid, None, FdChoice::None, ProtocolChoice::Reliable),
        udc(t_high, None, FdChoice::None, ProtocolChoice::Reliable),
    );

    // --- Reliable channels, consensus. ---
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "Reliable / consensus",
        consensus(t_low, ConsensusChoice::RotatingEventuallyStrong),
        consensus(t_mid, ConsensusChoice::StrongDetector),
        consensus(t_high, ConsensusChoice::StrongDetector),
    );
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "  (negative note)",
        "-",
        consensus(t_mid, ConsensusChoice::RotatingEventuallyStrong),
        consensus(t_high, ConsensusChoice::RotatingEventuallyStrong),
    );

    // --- Unreliable (fair-lossy) channels, UDC: the paper's headline. ---
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "Unreliable / UDC",
        udc(
            t_low,
            Some(LOSS),
            FdChoice::Cycling,
            ProtocolChoice::Generalized
        ),
        udc(
            t_mid,
            Some(LOSS),
            FdChoice::TUseful,
            ProtocolChoice::Generalized
        ),
        udc(
            t_high,
            Some(LOSS),
            FdChoice::Strong,
            ProtocolChoice::StrongFd
        ),
    );
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "  (negative note)",
        "-",
        udc(t_mid, Some(0.6), FdChoice::None, ProtocolChoice::Reliable),
        udc(t_high, Some(LOSS), FdChoice::Weak, ProtocolChoice::StrongFd),
    );
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "  (strong ≈ perfect, Prop 3.4)",
        "-",
        "-",
        udc(
            t_high,
            Some(LOSS),
            FdChoice::Perfect,
            ProtocolChoice::StrongFd
        ),
    );

    // --- Unreliable channels, consensus: per CT, same classes as the
    //     reliable row (their algorithms adapt with retransmission); we do
    //     not separately simulate it — see EXPERIMENTS.md. ---
    println!(
        "{:<32}{:<40}{:<40}{:<40}",
        "Unreliable / consensus",
        "◇S (as reliable)",
        "Strong (as reliable)",
        "Perfect (as reliable)"
    );
    println!("{:=<152}", "");
    println!(
        "\nPaper's Table 1 for comparison:\n\
         reliable/UDC:   no FD | no FD | no FD\n\
         consensus:      ◇W†   | Strong | Perfect†\n\
         unreliable/UDC: no FD | t-useful† | Perfect†\n\
         (◇S shown where we run ◇W's algorithmic stand-in; strong ≈ perfect at t ≥ n−1 by Prop 3.4)"
    );
}
