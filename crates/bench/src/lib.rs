//! Shared experiment plumbing for the Table 1 reproduction and the
//! ablation figures.
//!
//! The runnable entry points are:
//!
//! * `cargo run -p ktudc-bench --bin table1 --release` — regenerates
//!   **Table 1** of the paper (the failure-detector class needed for UDC
//!   vs. consensus across fault-bound and channel regimes), with every
//!   positive cell exercised by seeded trials and every negative cell
//!   evidenced by certified violations or stalls;
//! * `cargo run -p ktudc-bench --bin claims --release` — replays every
//!   numbered constructive claim (Propositions 2.3, 2.4, 3.1, 4.1,
//!   Corollary 4.2, the Proposition 2.1/2.2 conversions, Theorems 3.6 and
//!   4.3) and prints PASS/FAIL;
//! * `cargo bench -p ktudc-bench` — Criterion timings for the ablation
//!   figures (scaling, loss sweep, conversion overhead, epistemic-checker
//!   cost).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ktudc_consensus::spec::check_consensus;
use ktudc_consensus::{proposal_for, rotating::RotatingConsensus, strong::StrongConsensus};
use ktudc_fd::{EventuallyStrongOracle, StrongOracle};
use ktudc_model::Time;
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

/// Which consensus protocol/detector pairing a consensus cell uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsensusChoice {
    /// Rotating coordinator + ◇S (needs `t < n/2`).
    RotatingEventuallyStrong,
    /// Chandra–Toueg strong-detector algorithm (up to `n − 1` failures).
    StrongDetector,
}

/// Outcome tally for a consensus cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConsensusOutcome {
    /// Trials satisfying all four consensus properties by the horizon.
    pub satisfied: u64,
    /// Trials failing (for negative cells, typically termination stalls).
    pub failed: u64,
}

impl ConsensusOutcome {
    /// Whether every trial succeeded.
    #[must_use]
    pub fn achieved(&self) -> bool {
        self.failed == 0 && self.satisfied > 0
    }
}

/// Runs a consensus cell: seeded trials over **reliable** channels (the
/// Chandra–Toueg setting; see EXPERIMENTS.md for the substitution note)
/// with random crash schedules bounded by `t`. Trials are independent and
/// seed-determined, so they run in parallel (feature `parallel`); the tally
/// is identical either way.
#[must_use]
pub fn run_consensus_cell(
    n: usize,
    t: usize,
    choice: ConsensusChoice,
    trials: u64,
    horizon: Time,
) -> ConsensusOutcome {
    let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
    let seeds: Vec<u64> = (0..trials).collect();
    let verdicts = ktudc_par::par_map(seeds, |seed| {
        let config = SimConfig::new(n)
            .channel(ChannelKind::reliable())
            .crashes(CrashPlan::Random {
                max_failures: t,
                // Crash early: a negative cell must actually face a dead
                // majority *before* a decision can slip through.
                latest: 40,
            })
            .horizon(horizon)
            .seed(seed);
        match choice {
            ConsensusChoice::RotatingEventuallyStrong => {
                let out = run_protocol(
                    &config,
                    |p| RotatingConsensus::new(proposal_for(&proposals, p)),
                    &mut EventuallyStrongOracle::new(horizon / 8),
                    &Workload::none(),
                );
                check_consensus(&out.run, &proposals).is_ok()
            }
            ConsensusChoice::StrongDetector => {
                let out = run_protocol(
                    &config,
                    |p| StrongConsensus::new(proposal_for(&proposals, p)),
                    &mut StrongOracle::new(),
                    &Workload::none(),
                );
                check_consensus(&out.run, &proposals).is_ok()
            }
        }
    });
    let mut outcome = ConsensusOutcome::default();
    for ok in verdicts {
        if ok {
            outcome.satisfied += 1;
        } else {
            outcome.failed += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_cell_succeeds_below_half() {
        let out = run_consensus_cell(5, 2, ConsensusChoice::RotatingEventuallyStrong, 4, 2500);
        assert!(out.achieved(), "{out:?}");
    }

    #[test]
    fn strong_cell_succeeds_at_n_minus_1() {
        let out = run_consensus_cell(4, 3, ConsensusChoice::StrongDetector, 4, 2500);
        assert!(out.achieved(), "{out:?}");
    }

    #[test]
    fn rotating_cell_fails_beyond_half() {
        // With up to n−1 crashes a majority can die; some seed must stall.
        let out = run_consensus_cell(4, 3, ConsensusChoice::RotatingEventuallyStrong, 12, 1500);
        assert!(!out.achieved(), "{out:?}");
    }
}
