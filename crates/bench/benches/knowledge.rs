//! Figure D (extension): cost of the epistemic machinery — evaluating
//! `K_p crash(q)` over systems of growing size, and the full `f(r)`
//! construction of Theorem 3.6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktudc_core::protocols::strong_fd::StrongFdUdc;
use ktudc_core::simulate::simulate_perfect_fd;
use ktudc_epistemic::{Formula, ModelChecker};
use ktudc_fd::PerfectOracle;
use ktudc_model::{Point, ProcessId, System};
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn sampled_system(runs: u64) -> System<ktudc_core::CoordMsg> {
    let w = Workload::periodic(3, 15, 40);
    let mut out = Vec::new();
    for seed in 0..runs {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.25))
            .crashes(CrashPlan::at(&[(2, 8)]))
            .horizon(160)
            .seed(seed);
        out.push(
            run_protocol(
                &config,
                |_| StrongFdUdc::new(),
                &mut PerfectOracle::new(),
                &w,
            )
            .run,
        );
    }
    System::new(out)
}

fn bench_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("epistemic_cost");
    group.sample_size(10);
    for runs in [2u64, 4, 8, 16] {
        let system = sampled_system(runs);
        println!("figD runs={runs}: points={}", system.point_count());
        group.bench_with_input(
            BenchmarkId::new("knows_crash_validity", runs),
            &system,
            |b, system| {
                b.iter(|| {
                    let mut mc = ModelChecker::new(system);
                    let f = Formula::knows(ProcessId::new(0), Formula::crashed(ProcessId::new(2)));
                    mc.satisfying_points(&f).len()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("knowledge_of_crashes_point", runs),
            &system,
            |b, system| {
                let mut mc = ModelChecker::new(system);
                b.iter(|| mc.knowledge_of_crashes(ProcessId::new(0), Point::new(0, 100)));
            },
        );
        if runs <= 8 {
            group.bench_with_input(
                BenchmarkId::new("simulate_perfect_fd", runs),
                &system,
                |b, system| {
                    b.iter(|| simulate_perfect_fd(system).len());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_knowledge);
criterion_main!(benches);
