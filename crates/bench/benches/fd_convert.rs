//! Figure C (extension): cost of the Proposition 2.1 / 2.2 failure-
//! detector conversions as a function of system size — both the event
//! blow-up of the gossip construction (printed series) and its wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktudc_core::protocols::nudc::NUdcFlood;
use ktudc_fd::convert::{accumulate_reports, weak_to_strong};
use ktudc_fd::ImpermanentWeakOracle;
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn source_run(n: usize) -> ktudc_model::Run<ktudc_core::CoordMsg> {
    let config = SimConfig::new(n)
        .channel(ChannelKind::fair_lossy(0.2))
        .crashes(CrashPlan::at(&[(1, 5)]))
        .horizon(80)
        .seed(7);
    let w = Workload::single(0, 2);
    run_protocol(
        &config,
        |_| NUdcFlood::new(),
        &mut ImpermanentWeakOracle::new(),
        &w,
    )
    .run
}

fn bench_convert(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_conversions");
    group.sample_size(10);
    for n in [3usize, 5, 7, 10] {
        let run = source_run(n);
        let gossiped = weak_to_strong(&run, 4);
        println!(
            "figC n={n}: original_events={} gossiped_events={} blowup={:.1}x",
            run.event_count(),
            gossiped.event_count(),
            gossiped.event_count() as f64 / run.event_count().max(1) as f64
        );
        group.bench_with_input(BenchmarkId::new("accumulate", n), &run, |b, run| {
            b.iter(|| accumulate_reports(run));
        });
        group.bench_with_input(BenchmarkId::new("weak_to_strong", n), &run, |b, run| {
            b.iter(|| weak_to_strong(run, 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
