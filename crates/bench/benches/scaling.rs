//! Figure A (extension): message complexity and wall time of one UDC
//! coordination vs. system size `n`, per protocol. Prints the message
//! counts (the series the figure plots) alongside Criterion's timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktudc_core::protocols::{generalized::GeneralizedUdc, nudc::NUdcFlood, strong_fd::StrongFdUdc};
use ktudc_core::spec::{check_nudc, check_udc};
use ktudc_fd::{StrongOracle, TUsefulOracle};
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

fn config(n: usize) -> SimConfig {
    SimConfig::new(n)
        .channel(ChannelKind::fair_lossy(0.3))
        .crashes(CrashPlan::at(&[(1, 10)]))
        .horizon(700)
        .seed(42)
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_messages_vs_n");
    group.sample_size(10);
    for n in [3usize, 5, 7, 9, 12] {
        let w = Workload::single(0, 2);
        // Print the series once per n (the "figure" data).
        let nudc = run_protocol(&config(n), |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
        assert!(check_nudc(&nudc.run, &w.actions()).is_satisfied());
        let strong = run_protocol(
            &config(n),
            |_| StrongFdUdc::new(),
            &mut StrongOracle::new(),
            &w,
        );
        assert!(check_udc(&strong.run, &w.actions()).is_satisfied());
        let t = n / 2;
        let gen = run_protocol(
            &config(n),
            |_| GeneralizedUdc::new(t),
            &mut TUsefulOracle::new(t),
            &w,
        );
        assert!(check_udc(&gen.run, &w.actions()).is_satisfied());
        println!(
            "figA n={n}: nudc_msgs={} strongfd_msgs={} generalized_msgs={}",
            nudc.messages_sent, strong.messages_sent, gen.messages_sent
        );

        group.bench_with_input(BenchmarkId::new("strong_fd_udc", n), &n, |b, &n| {
            b.iter(|| {
                run_protocol(
                    &config(n),
                    |_| StrongFdUdc::new(),
                    &mut StrongOracle::new(),
                    &w,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
