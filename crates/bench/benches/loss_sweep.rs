//! Figure B (extension): time-to-UDC (coordination latency in ticks) and
//! message cost as a function of the channel drop probability. Prints the
//! latency series alongside Criterion's wall-time measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ktudc_core::protocols::strong_fd::StrongFdUdc;
use ktudc_core::spec::check_udc;
use ktudc_fd::StrongOracle;
use ktudc_model::{Event, ProcessId};
use ktudc_sim::{run_protocol, ChannelKind, SimConfig, Workload};

/// Tick at which the last process performed the action (the coordination
/// latency), or the horizon if someone never did.
fn completion_tick(run: &ktudc_model::Run<ktudc_core::CoordMsg>) -> u64 {
    ProcessId::all(run.n())
        .filter_map(|p| {
            run.timed_history(p)
                .find(|(_, e)| matches!(e, Event::Do { .. }))
                .map(|(t, _)| t)
        })
        .max()
        .unwrap_or(run.horizon())
}

fn bench_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_sweep_latency");
    group.sample_size(10);
    for loss_pct in [0u32, 15, 30, 50, 70, 85] {
        let loss = f64::from(loss_pct) / 100.0;
        let w = Workload::single(0, 2);
        let mk = move |seed: u64| {
            SimConfig::new(5)
                .channel(if loss_pct == 0 {
                    ChannelKind::reliable()
                } else {
                    ChannelKind::fair_lossy(loss)
                })
                .horizon(3000)
                .seed(seed)
        };
        // Figure series: mean completion tick over a few seeds.
        let mut total = 0u64;
        let seeds = 5;
        for seed in 0..seeds {
            let out = run_protocol(
                &mk(seed),
                |_| StrongFdUdc::new(),
                &mut StrongOracle::new(),
                &w,
            );
            assert!(
                check_udc(&out.run, &w.actions()).is_satisfied(),
                "loss {loss_pct}% seed {seed}"
            );
            total += completion_tick(&out.run);
        }
        println!(
            "figB loss={loss_pct}%: mean_completion_tick={}",
            total / seeds
        );

        group.bench_with_input(
            BenchmarkId::from_parameter(format!("loss_{loss_pct}pct")),
            &loss_pct,
            |b, _| {
                b.iter(|| {
                    run_protocol(&mk(0), |_| StrongFdUdc::new(), &mut StrongOracle::new(), &w)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loss);
criterion_main!(benches);
