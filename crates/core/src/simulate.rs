//! The failure-detector **simulation constructions** of Theorems 3.6 and
//! 4.3: systems that attain UDC can manufacture failure detectors out of
//! the processes' *knowledge*.
//!
//! Given a system `R`, the map `f` builds `R^f = {f(r) : r ∈ R}` by
//! stretching time by two and interleaving knowledge-derived reports
//! (conditions P1–P3 of §3):
//!
//! * **P1** — `f(r)` starts with empty histories;
//! * **P2** — the original (non-failure-detector) event of tick `m + 1`
//!   lands at tick `2m + 2`; original failure-detector events are deleted;
//! * **P3** — at tick `2m + 1` every live process `p` gets the report
//!   `suspect′_p(S)` with `S = {q : (R, r, m) ⊨ K_p crash(q)}`.
//!
//! Theorem 3.6: if `R` attains UDC, satisfies A1–A4 and A5_{n−1}, and
//! initiates infinitely many actions, then `R^f` has **perfect** failure
//! detectors. The map `f′` ([`simulate_t_useful_fd`]) differs only in P3′:
//! the report is the generalized `(S_l, k)` where `l` is the length of
//! `p`'s history at `m + 1` modulo `2^n` (so the subset index cycles as the
//! history grows) and `k` is the largest number of members of `S_l` that
//! `p` *knows* have crashed; Theorem 4.3 then yields **t-useful**
//! detectors.
//!
//! Both maps are computable exactly as the paper suggests: the input is a
//! finite run prefix and `{q : K_p crash(q)}` is computed by the epistemic
//! model checker over the given system. Strong accuracy of the simulated
//! detector is *unconditional* — knowledge is veridical, so `K_p crash(q)`
//! can only report processes that really crashed. Completeness is where
//! the theorems earn their keep, and holds at finite horizons whenever the
//! underlying system gives processes distinguishing evidence of crashes
//! (as the Proposition 3.1 protocol does through its latched suspicions
//! and acknowledgment discipline).

use ktudc_epistemic::ModelChecker;
use ktudc_model::{Event, Point, ProcSet, ProcessId, Run, RunBuilder, SuspectReport, System, Time};
use std::hash::Hash;

/// Applies the Theorem 3.6 construction `f` to every run of `system`,
/// returning `R^f` with the knowledge-derived **standard** reports of P3.
///
/// # Panics
///
/// Panics if the rebuilt runs violate R1–R4, which cannot happen for
/// systems produced by `ktudc-sim`.
#[must_use]
pub fn simulate_perfect_fd<M: Clone + Eq + Hash>(system: &System<M>) -> System<M> {
    let mut mc = ModelChecker::new(system);
    let new_runs: Vec<Run<M>> = (0..system.len())
        .map(|ri| {
            transform_run(system, ri, |p, m| {
                Some(SuspectReport::Standard(
                    mc.knowledge_of_crashes(p, Point::new(ri, m)),
                ))
            })
        })
        .collect();
    System::new(new_runs)
}

/// Applies the Theorem 4.3 construction `f′` (P3′) for failure bound `t`,
/// returning `R^{f′}` with knowledge-derived **generalized** reports.
///
/// The subset order `S_0, …, S_{2^n − 1}` is the binary encoding: process
/// `i` is in `S_l` iff bit `i` of `l` is set.
///
/// # Panics
///
/// Panics if `system.n() > 16` (the construction enumerates `2^n` subset
/// indices; the paper's cycling trick is pointless beyond tiny systems).
#[must_use]
pub fn simulate_t_useful_fd<M: Clone + Eq + Hash>(system: &System<M>, _t: usize) -> System<M> {
    let n = system.n();
    assert!(
        n <= 16,
        "f′ cycles through 2^n subsets; n = {n} is too large"
    );
    let subsets = 1usize << n;
    let mut mc = ModelChecker::new(system);
    let new_runs: Vec<Run<M>> = (0..system.len())
        .map(|ri| {
            transform_run(system, ri, |p, m| {
                // l = |r_p(m + 1)| mod 2^n.
                let run = mc.system().run(ri);
                let l = run.history_at(p, m + 1).len() % subsets;
                let set = subset_by_index(n, l);
                let k = mc.max_known_crashed_in(p, set, Point::new(ri, m));
                Some(SuspectReport::Generalized { set, min_faulty: k })
            })
        })
        .collect();
    System::new(new_runs)
}

/// The `l`-th subset of `Proc` in the binary order used by P3′.
#[must_use]
pub fn subset_by_index(n: usize, l: usize) -> ProcSet {
    ProcessId::all(n)
        .filter(|p| l & (1usize << p.index()) != 0)
        .collect()
}

/// Shared P1/P2 skeleton: stretches run `ri` of `system` onto the doubled
/// timeline, deleting original failure-detector events and inserting the
/// report produced by `report(p, m)` at tick `2m + 1` for every `p` still
/// live at `m`.
fn transform_run<M: Clone + Eq + Hash>(
    system: &System<M>,
    ri: usize,
    mut report: impl FnMut(ProcessId, Time) -> Option<SuspectReport>,
) -> Run<M> {
    let run = system.run(ri);
    let n = run.n();
    let h = run.horizon();
    let mut b: RunBuilder<M> = RunBuilder::new(n);
    for m in 0..=h {
        // P3 / P3′: reports at tick 2m + 1, from knowledge at (r, m).
        for p in ProcessId::all(n) {
            if matches!(run.crash_time(p), Some(c) if c <= m) {
                continue;
            }
            if let Some(rep) = report(p, m) {
                b.append_suspect(p, 2 * m + 1, rep)
                    .expect("suspect on doubled timeline");
            }
        }
        // P2: original events of tick m + 1 land at tick 2m + 2, sends
        // before receives so R3 re-validates.
        if m == h {
            break;
        }
        let mut tick_events: Vec<(u8, ProcessId, &Event<M>)> = Vec::new();
        for p in ProcessId::all(n) {
            for (t, e) in run.timed_history(p) {
                if t == m + 1 && !e.is_suspect() {
                    tick_events.push((u8::from(matches!(e, Event::Recv { .. })), p, e));
                }
            }
        }
        tick_events.sort_by_key(|&(phase, p, _)| (phase, p));
        for (_, p, e) in tick_events {
            b.append(p, 2 * m + 2, e.clone())
                .expect("original event on doubled timeline");
        }
    }
    b.finish(2 * h + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::strong_fd::StrongFdUdc;
    use crate::spec::{check_udc, Verdict};
    use ktudc_fd::{check_fd_property, FdProperty, PerfectOracle};
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Samples a UDC-attaining system: the Proposition 3.1 protocol with a
    /// perfect oracle, over several seeds and the given crash plans.
    fn udc_system(
        n: usize,
        horizon: Time,
        plans: &[CrashPlan],
        seeds: u64,
    ) -> System<crate::CoordMsg> {
        let w = Workload::periodic(n, 15, horizon / 4);
        let mut runs = Vec::new();
        for plan in plans {
            for seed in 0..seeds {
                let config = SimConfig::new(n)
                    .channel(ChannelKind::fair_lossy(0.25))
                    .crashes(plan.clone())
                    .horizon(horizon)
                    .seed(seed);
                let out = run_protocol(
                    &config,
                    |_| StrongFdUdc::new(),
                    &mut PerfectOracle::new(),
                    &w,
                );
                assert_eq!(
                    check_udc(&out.run, &w.actions()),
                    Verdict::Satisfied,
                    "substrate must attain UDC"
                );
                runs.push(out.run);
            }
        }
        System::new(runs)
    }

    #[test]
    fn subset_index_roundtrip() {
        assert_eq!(subset_by_index(3, 0), ProcSet::new());
        assert_eq!(
            subset_by_index(3, 0b101),
            [p(0), p(2)].into_iter().collect()
        );
        assert_eq!(subset_by_index(3, 0b111), ProcSet::full(3));
    }

    #[test]
    fn f_preserves_original_events_and_structure() {
        let sys = udc_system(3, 150, &[CrashPlan::at(&[(2, 10)])], 2);
        let simulated = simulate_perfect_fd(&sys);
        assert_eq!(simulated.len(), sys.len());
        for (orig, new) in sys.runs().iter().zip(simulated.runs()) {
            new.check_conditions(0).unwrap();
            assert_eq!(new.horizon(), 2 * orig.horizon() + 1);
            // Every non-FD event survives, in order, per process.
            for q in ProcessId::all(3) {
                let orig_events: Vec<_> =
                    orig.history(q).iter().filter(|e| !e.is_suspect()).collect();
                let new_events: Vec<_> =
                    new.history(q).iter().filter(|e| !e.is_suspect()).collect();
                assert_eq!(orig_events, new_events, "run content changed for {q}");
            }
            // Crash ticks are doubled: c ↦ 2c.
            assert_eq!(new.crash_time(p(2)), orig.crash_time(p(2)).map(|c| 2 * c));
        }
    }

    #[test]
    fn theorem_3_6_simulated_fd_is_perfect() {
        // A UDC-attaining sampled system: f(r) must carry a perfect FD.
        let plans = [
            CrashPlan::None,
            CrashPlan::at(&[(1, 8)]),
            CrashPlan::at(&[(1, 8), (2, 30)]),
        ];
        let sys = udc_system(3, 150, &plans, 3);
        let simulated = simulate_perfect_fd(&sys);
        for (i, run) in simulated.runs().iter().enumerate() {
            check_fd_property(run, FdProperty::StrongAccuracy)
                .unwrap_or_else(|e| panic!("run {i}: {e}"));
            check_fd_property(run, FdProperty::StrongCompleteness)
                .unwrap_or_else(|e| panic!("run {i}: {e}"));
        }
    }

    #[test]
    fn simulated_accuracy_is_unconditional() {
        // Even over a *one-run* system (maximal spurious knowledge),
        // veridicality keeps the simulated detector strongly accurate.
        let sys = udc_system(3, 100, &[CrashPlan::at(&[(0, 15)])], 1);
        let one_run = System::new(vec![sys.run(0).clone()]);
        let simulated = simulate_perfect_fd(&one_run);
        check_fd_property(simulated.run(0), FdProperty::StrongAccuracy).unwrap();
    }

    #[test]
    fn theorem_4_3_simulated_fd_is_t_useful() {
        let t = 2;
        let plans = [
            CrashPlan::None,
            CrashPlan::at(&[(2, 8)]),
            CrashPlan::at(&[(1, 12), (2, 8)]),
        ];
        let sys = udc_system(3, 240, &plans, 3);
        let simulated = simulate_t_useful_fd(&sys, t);
        for (i, run) in simulated.runs().iter().enumerate() {
            check_fd_property(run, FdProperty::GeneralizedStrongAccuracy)
                .unwrap_or_else(|e| panic!("run {i}: {e}"));
            check_fd_property(run, FdProperty::GeneralizedImpermanentStrongCompleteness(t))
                .unwrap_or_else(|e| panic!("run {i}: {e}"));
        }
    }

    #[test]
    fn f_reports_track_knowledge_growth() {
        // Before anyone learns of the crash, reports are empty; after the
        // (perfect) oracle told a process in the *original* run, the
        // simulated detector suspects too — knowledge extraction works.
        let sys = udc_system(3, 120, &[CrashPlan::at(&[(2, 10)])], 2);
        let simulated = simulate_perfect_fd(&sys);
        let run = simulated.run(0);
        // At the first report tick (1), nobody can know anything.
        for q in ProcessId::all(3) {
            assert!(run.suspects_at(q, 1).is_empty());
        }
        // By the horizon, the correct processes suspect p2.
        for q in [p(0), p(1)] {
            assert!(
                run.suspects_at(q, run.horizon()).contains(p(2)),
                "{q} should have extracted knowledge of p2's crash"
            );
        }
    }
}
