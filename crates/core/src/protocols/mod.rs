//! The four coordination protocols of the paper's constructive proofs.
//!
//! All four speak the same tiny wire language, [`CoordMsg`]: an `α`-message
//! ("perform α") and an acknowledgment. Each protocol is a deterministic
//! state machine over its own history (see
//! [`Protocol`](ktudc_sim::Protocol)); the state-updating logic lives
//! entirely in `observe`, so each protocol is literally a function of its
//! local history, as the paper's model requires.
//!
//! | Protocol | Proposition | Context | Guarantee |
//! |---|---|---|---|
//! | [`nudc::NUdcFlood`] | 2.3 | fair-lossy channels, any #failures, no FD | nUDC |
//! | [`reliable::ReliableUdc`] | 2.4 | reliable channels, any #failures, no FD | UDC |
//! | [`strong_fd::StrongFdUdc`] | 3.1 | fair-lossy channels, any #failures, strong (or impermanent-weak, via Prop 2.1/2.2) FD | UDC |
//! | [`generalized::GeneralizedUdc`] | 4.1 | fair-lossy channels, ≤t failures, t-useful generalized FD | UDC |
//!
//! Corollary 4.2 (Gopal–Toueg: no detector needed for `t < n/2`) is
//! [`generalized::GeneralizedUdc`] paired with the oracle-free
//! [`CyclingSubsetOracle`](ktudc_fd::CyclingSubsetOracle).

pub mod generalized;
pub mod nudc;
pub mod reliable;
pub mod strong_fd;

use ktudc_model::ActionId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shared message vocabulary of all coordination protocols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoordMsg {
    /// "Perform `α`" — carries the action to coordinate on.
    Alpha(ActionId),
    /// Acknowledgment of an `α`-message.
    Ack(ActionId),
}

impl fmt::Debug for CoordMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordMsg::Alpha(a) => write!(f, "α({a})"),
            CoordMsg::Ack(a) => write!(f, "ack({a})"),
        }
    }
}

impl CoordMsg {
    /// The action this message concerns.
    #[must_use]
    pub fn action(self) -> ActionId {
        match self {
            CoordMsg::Alpha(a) | CoordMsg::Ack(a) => a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_model::ProcessId;

    #[test]
    fn message_accessors_and_format() {
        let a = ActionId::new(ProcessId::new(1), 3);
        assert_eq!(CoordMsg::Alpha(a).action(), a);
        assert_eq!(CoordMsg::Ack(a).action(), a);
        assert_eq!(format!("{:?}", CoordMsg::Alpha(a)), "α(a1.3)");
        assert_eq!(format!("{:?}", CoordMsg::Ack(a)), "ack(a1.3)");
    }
}
