//! Proposition 4.1: UDC in a context with at most `t` failures and a
//! t-useful **generalized** failure detector.
//!
//! > Process `p` performs `α` at time `m` if, by time `m`, there is a set
//! > `S ⊆ Proc` and `k ≤ |S|` such that (a) it is in a `UDC(α)` state,
//! > (b) its failure detector has reported `suspect_p(S, k)`, (c) it has
//! > received messages from all the processes in `Proc − S` acknowledging
//! > `α`, and (d) `n − |S| > min(t, n−1) − k`.
//!
//! The insight: condition (d) plus generalized strong accuracy imply that
//! if any process is correct at all, `Proc − S` contains a correct process
//! — so a performer has an acked correct witness that will carry `α` to
//! everyone, even though the report never says *which* members of `S` are
//! faulty.
//!
//! Pairing this protocol with the oracle-free
//! [`CyclingSubsetOracle`](ktudc_fd::CyclingSubsetOracle) (which just
//! enumerates `(S, 0)` reports) yields Corollary 4.2 — the Gopal–Toueg
//! result that **no failure detector at all** is needed when `t < n/2`.

use crate::protocols::CoordMsg;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::{Outbox, ProtoAction, Protocol};
use std::collections::BTreeMap;

#[derive(Clone, Debug, Default)]
struct ActionState {
    live: bool,
    done: bool,
    acked: ProcSet,
}

/// The Proposition 4.1 protocol, parameterized by the context's failure
/// bound `t`.
#[derive(Clone, Debug)]
pub struct GeneralizedUdc {
    me: ProcessId,
    n: usize,
    t: usize,
    retransmit_every: Time,
    next_retransmit: Time,
    /// Every generalized report `(S, k)` seen so far.
    reports: Vec<(ProcSet, usize)>,
    actions: BTreeMap<ActionId, ActionState>,
    out: Outbox<CoordMsg>,
}

impl GeneralizedUdc {
    /// Creates the protocol for a context with at most `t` failures, with
    /// the default retransmission period of 5 ticks.
    #[must_use]
    pub fn new(t: usize) -> Self {
        Self::with_period(t, 5)
    }

    /// Creates the protocol with a custom retransmission period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(t: usize, period: Time) -> Self {
        assert!(period >= 1);
        GeneralizedUdc {
            me: ProcessId::new(0),
            n: 0,
            t,
            retransmit_every: period,
            next_retransmit: 0,
            reports: Vec::new(),
            actions: BTreeMap::new(),
            out: Outbox::new(),
        }
    }

    fn enter(&mut self, action: ActionId) {
        self.actions.entry(action).or_default().live = true;
    }

    /// Condition (b)–(d) of the performance guard: some received report
    /// `(S, k)` is useful (`n − |S| > min(t, n−1) − k`) and everyone in
    /// `Proc − S` has acked.
    fn can_perform(&self, state: &ActionState) -> bool {
        let n = self.n;
        self.reports.iter().any(|&(set, k)| {
            k <= set.len()
                && (n - set.len()) as isize > self.t.min(n - 1) as isize - k as isize
                && set
                    .complement(n)
                    .iter()
                    .all(|q| q == self.me || state.acked.contains(q))
        })
    }
}

impl Protocol<CoordMsg> for GeneralizedUdc {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }

    fn observe(&mut self, _time: Time, event: &Event<CoordMsg>) {
        match event {
            Event::Init { action } => self.enter(*action),
            Event::Recv {
                from,
                msg: CoordMsg::Alpha(action),
            } => {
                self.enter(*action);
                self.out.send(*from, CoordMsg::Ack(*action));
            }
            Event::Recv {
                from,
                msg: CoordMsg::Ack(action),
            } => {
                self.actions.entry(*action).or_default().acked.insert(*from);
            }
            Event::Suspect(SuspectReport::Generalized { set, min_faulty }) => {
                self.reports.push((*set, *min_faulty));
            }
            Event::Do { action } => {
                self.actions.entry(*action).or_default().done = true;
            }
            _ => {}
        }
    }

    fn next_action(&mut self, time: Time) -> Option<ProtoAction<CoordMsg>> {
        let ready = self
            .actions
            .iter()
            .find(|(_, s)| s.live && !s.done && self.can_perform(s))
            .map(|(&a, _)| a);
        if let Some(action) = ready {
            return Some(ProtoAction::Do(action));
        }
        if let Some(send) = self.out.pop() {
            return Some(send);
        }
        if time >= self.next_retransmit {
            self.next_retransmit = time + self.retransmit_every;
            let me = self.me;
            let n = self.n;
            let planned: Vec<(ProcessId, ActionId)> = self
                .actions
                .iter()
                .filter(|(_, s)| s.live)
                .flat_map(|(&a, s)| {
                    let acked = s.acked;
                    ProcessId::all(n)
                        .filter(move |&q| q != me && !acked.contains(q))
                        .map(move |q| (q, a))
                })
                .collect();
            for (q, a) in planned {
                self.out.send(q, CoordMsg::Alpha(a));
            }
            return self.out.pop();
        }
        None
    }

    fn quiescent(&self) -> bool {
        self.out.is_empty()
            && self
                .actions
                .values()
                .all(|s| !s.live || (s.done && s.acked.len() >= self.n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_udc, Verdict};
    use ktudc_fd::{check_fd_property, CyclingSubsetOracle, FdProperty, TUsefulOracle};
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

    fn lossy(n: usize, seed: u64) -> SimConfig {
        SimConfig::new(n)
            .channel(ChannelKind::fair_lossy(0.3))
            .horizon(800)
            .seed(seed)
    }

    #[test]
    fn udc_with_t_useful_fd_high_t() {
        // t = n − 1 = 4: the regime where t-useful ≈ perfect.
        let t = 4;
        for seed in 0..6 {
            let config = lossy(5, seed).crashes(CrashPlan::at(&[(1, 7), (2, 22), (4, 40)]));
            let w = Workload::single(0, 2);
            let out = run_protocol(
                &config,
                |_| GeneralizedUdc::new(t),
                &mut TUsefulOracle::new(t),
                &w,
            );
            check_fd_property(&out.run, FdProperty::GeneralizedStrongAccuracy).unwrap();
            check_fd_property(
                &out.run,
                FdProperty::GeneralizedImpermanentStrongCompleteness(t),
            )
            .unwrap();
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
            out.run.check_conditions(0).unwrap();
        }
    }

    #[test]
    fn udc_with_t_useful_fd_mid_t() {
        // n/2 ≤ t < n − 1: the genuinely generalized middle column of
        // Table 1 (n = 7, t = 4).
        let t = 4;
        for seed in 0..4 {
            let config = lossy(7, seed).crashes(CrashPlan::at(&[(1, 9), (3, 18), (5, 33)]));
            let w = Workload::single(0, 2);
            let out = run_protocol(
                &config,
                |_| GeneralizedUdc::new(t),
                &mut TUsefulOracle::new(t),
                &w,
            );
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn corollary_4_2_no_fd_needed_below_half() {
        // t = 2 < n/2 = 2.5: the cycling (S, 0) oracle consults no ground
        // truth, so this is UDC with *no failure detection whatsoever*.
        let t = 2;
        let n = 5;
        for seed in 0..6 {
            let config = lossy(n, seed).crashes(CrashPlan::at(&[(1, 12), (4, 28)]));
            let w = Workload::single(0, 2);
            let out = run_protocol(
                &config,
                |_| GeneralizedUdc::new(t),
                &mut CyclingSubsetOracle::new(n, t),
                &w,
            );
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn no_reports_means_no_performance() {
        // Without any failure-detector report the guard can never fire
        // (there is no (S, k) at all), so nobody performs — and with an
        // initiated action UDC's DC1 is *not yet* satisfied at the horizon.
        // This documents that condition (b) really gates performance.
        let config = lossy(4, 3).horizon(200);
        let w = Workload::single(0, 2);
        let out = run_protocol(
            &config,
            |_| GeneralizedUdc::new(2),
            &mut NullOracle::new(),
            &w,
        );
        assert!(!check_udc(&out.run, &w.actions()).is_satisfied());
        let did_any = (0..4).any(|i| out.run.view_at(ProcessId::new(i), 200).did(w.actions()[0]));
        assert!(!did_any);
    }

    #[test]
    fn guard_arithmetic_matches_the_paper() {
        let mut proto = GeneralizedUdc::new(3);
        proto.start(ProcessId::new(0), 5);
        let mut state = ActionState {
            live: true,
            done: false,
            acked: ProcSet::new(),
        };
        // Report ({p3, p4}, 1): useful iff 5 − 2 > min(3,4) − 1 = 2 ✓,
        // needs acks from {p1, p2} (p0 is self).
        proto.reports.push((
            [ProcessId::new(3), ProcessId::new(4)].into_iter().collect(),
            1,
        ));
        assert!(!proto.can_perform(&state));
        state.acked.insert(ProcessId::new(1));
        assert!(!proto.can_perform(&state));
        state.acked.insert(ProcessId::new(2));
        assert!(proto.can_perform(&state));
        // A useless report (k too small for |S|) does not unlock: ({p1..p4}, 1):
        // 5 − 4 = 1 > 3 − 1 = 2 is false.
        let mut proto2 = GeneralizedUdc::new(3);
        proto2.start(ProcessId::new(0), 5);
        proto2
            .reports
            .push(((1..5).map(ProcessId::new).collect(), 1));
        let full_acks = ActionState {
            live: true,
            done: false,
            acked: (1..5).map(ProcessId::new).collect(),
        };
        assert!(!proto2.can_perform(&full_acks));
    }

    #[test]
    fn periodic_workload_with_mid_t() {
        let config = lossy(5, 17)
            .crashes(CrashPlan::at(&[(2, 30), (3, 55)]))
            .horizon(2500);
        let w = Workload::periodic(5, 11, 140);
        let t = 3;
        let out = run_protocol(
            &config,
            |_| GeneralizedUdc::new(t),
            &mut TUsefulOracle::new(t),
            &w,
        );
        assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
    }
}
