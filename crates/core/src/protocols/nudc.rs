//! Proposition 2.3: non-uniform distributed coordination over fair but
//! unreliable channels, with no failure detector and no bound on failures.
//!
//! > Whenever a process `p` wants to attain nUDC of action `α` (i.e. if
//! > `init_p(α)` is in `p`'s history) `p` goes into a special `nUDC(α)`
//! > state. If a process is in an `nUDC(α)` state, it performs `α` and
//! > sends an `α`-message repeatedly to all other processes. If a process
//! > receives an `α`-message, it goes into an `nUDC(α)` state, if it has
//! > not already done so.
//!
//! The protocol never terminates (footnote 10 of the paper: with unreliable
//! channels no nUDC protocol can terminate), so
//! [`quiescent`](ktudc_sim::Protocol::quiescent) is `false` once any action
//! is live. One benign optimization over the paper's prose: receiving an
//! `α`-message from `q` proves `q` is already in the `nUDC(α)` state, so
//! retransmissions to `q` are suppressed — this only removes provably
//! redundant traffic.

use crate::protocols::CoordMsg;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, Time};
use ktudc_sim::{Outbox, ProtoAction, Protocol};
use std::collections::BTreeMap;

/// Per-action protocol state.
#[derive(Clone, Debug, Default)]
struct ActionState {
    /// Entered the `nUDC(α)` state.
    live: bool,
    /// `do(α)` already performed.
    done: bool,
    /// Peers known to hold `α` (they sent us an `α`-message).
    holders: ProcSet,
}

/// The Proposition 2.3 flooding protocol.
#[derive(Clone, Debug)]
pub struct NUdcFlood {
    me: ProcessId,
    n: usize,
    retransmit_every: Time,
    next_retransmit: Time,
    actions: BTreeMap<ActionId, ActionState>,
    out: Outbox<CoordMsg>,
}

impl NUdcFlood {
    /// Creates the protocol with the default retransmission period of 5
    /// ticks.
    #[must_use]
    pub fn new() -> Self {
        Self::with_period(5)
    }

    /// Creates the protocol with a custom retransmission period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(period: Time) -> Self {
        assert!(period >= 1);
        NUdcFlood {
            me: ProcessId::new(0),
            n: 0,
            retransmit_every: period,
            next_retransmit: 0,
            actions: BTreeMap::new(),
            out: Outbox::new(),
        }
    }

    fn enter(&mut self, action: ActionId) {
        let state = self.actions.entry(action).or_default();
        if !state.live {
            state.live = true;
        }
    }
}

impl Default for NUdcFlood {
    fn default() -> Self {
        NUdcFlood::new()
    }
}

impl Protocol<CoordMsg> for NUdcFlood {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }

    fn observe(&mut self, _time: Time, event: &Event<CoordMsg>) {
        match event {
            Event::Init { action } => self.enter(*action),
            Event::Recv {
                from,
                msg: CoordMsg::Alpha(action),
            } => {
                self.enter(*action);
                self.actions
                    .get_mut(action)
                    .expect("entered above")
                    .holders
                    .insert(*from);
            }
            Event::Do { action } => {
                self.actions.entry(*action).or_default().done = true;
            }
            _ => {}
        }
    }

    fn next_action(&mut self, time: Time) -> Option<ProtoAction<CoordMsg>> {
        // Perform any live, not-yet-performed action first.
        if let Some((&action, _)) = self.actions.iter().find(|(_, s)| s.live && !s.done) {
            return Some(ProtoAction::Do(action));
        }
        if let Some(send) = self.out.pop() {
            return Some(send);
        }
        if time >= self.next_retransmit {
            self.next_retransmit = time + self.retransmit_every;
            let me = self.me;
            let n = self.n;
            let mut enqueued = false;
            let planned: Vec<(ProcessId, ActionId)> = self
                .actions
                .iter()
                .filter(|(_, s)| s.live)
                .flat_map(|(&a, s)| {
                    ProcessId::all(n)
                        .filter(move |&q| q != me && !s.holders.contains(q))
                        .map(move |q| (q, a))
                })
                .collect();
            for (q, a) in planned {
                self.out.send(q, CoordMsg::Alpha(a));
                enqueued = true;
            }
            if enqueued {
                return self.out.pop();
            }
        }
        None
    }

    fn quiescent(&self) -> bool {
        // Keeps flooding forever; quiescent only while idle or once every
        // peer is a known holder of every live action.
        self.out.is_empty()
            && self
                .actions
                .values()
                .all(|s| !s.live || (s.done && s.holders.len() >= self.n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_nudc, check_udc, Verdict};
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

    #[test]
    fn nudc_holds_under_heavy_loss_and_crashes() {
        for seed in 0..8 {
            let config = SimConfig::new(5)
                .channel(ChannelKind::fair_lossy(0.5))
                .crashes(CrashPlan::at(&[(1, 10), (3, 25)]))
                .horizon(400)
                .seed(seed);
            let w = Workload::single(0, 2);
            let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
            assert_eq!(
                check_nudc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
            out.run.check_conditions(0).unwrap();
        }
    }

    #[test]
    fn nudc_holds_even_when_everyone_crashes() {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.3))
            .crashes(CrashPlan::at(&[(0, 12), (1, 15), (2, 18)]))
            .horizon(100)
            .seed(4);
        let w = Workload::single(0, 1);
        let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
        assert_eq!(check_nudc(&out.run, &w.actions()), Verdict::Satisfied);
    }

    #[test]
    fn nudc_is_weaker_than_udc_under_loss() {
        // Hunt for the separating schedule: the initiator performs α and
        // crashes before any flood message survives, which satisfies nUDC
        // but violates UDC's horizon reading. (This is the paper's reason
        // UDC needs more machinery than flooding.)
        let w = Workload::single(0, 1);
        let mut separated = false;
        for seed in 0..400 {
            let config = SimConfig::new(4)
                .channel(ChannelKind::fair_lossy(0.9))
                .crashes(CrashPlan::at(&[(0, 3)]))
                .horizon(250)
                .seed(seed);
            let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
            assert_eq!(check_nudc(&out.run, &w.actions()), Verdict::Satisfied);
            if !check_udc(&out.run, &w.actions()).is_satisfied() {
                separated = true;
                break;
            }
        }
        assert!(
            separated,
            "90% loss with the initiator crashing at tick 3 should strand α at least once"
        );
    }

    #[test]
    fn retransmission_suppressed_to_known_holders() {
        let config = SimConfig::new(2)
            .channel(ChannelKind::reliable())
            .horizon(200)
            .seed(0);
        let w = Workload::single(0, 1);
        let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
        // p1 learns p0 holds α from the very message that delivered it, so
        // p1 never floods back: all traffic is p0's (one-directional), about
        // half of the unsuppressed two-directional flood.
        let p1_sends = out
            .run
            .history(ProcessId::new(1))
            .iter()
            .filter(|e| matches!(e, Event::Send { .. }))
            .count();
        assert_eq!(p1_sends, 0, "non-initiator should be fully suppressed");
        assert!(
            out.messages_sent <= 45,
            "initiator floods alone: saw {} sends",
            out.messages_sent
        );
        assert_eq!(check_nudc(&out.run, &w.actions()), Verdict::Satisfied);
    }

    #[test]
    fn multiple_actions_coordinate_independently() {
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.2))
            .horizon(300)
            .seed(9);
        let w = Workload::periodic(3, 7, 50);
        let out = run_protocol(&config, |_| NUdcFlood::new(), &mut NullOracle::new(), &w);
        assert_eq!(check_nudc(&out.run, &w.actions()), Verdict::Satisfied);
        assert!(w.actions().len() >= 7);
    }
}
