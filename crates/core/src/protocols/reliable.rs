//! Proposition 2.4: **uniform** distributed coordination over reliable
//! channels, with no failure detector and no bound on failures.
//!
//! > If `init_p(α)` is in `p`'s history, `p` goes into a special `UDC(α)`
//! > state. If a process is in a `UDC(α)` state, it sends an `α`-message to
//! > all processes **and then** performs `α`. If a process receives an
//! > `α`-message, it goes into a UDC-state if it has not already done so.
//!
//! The send-before-do ordering is the whole trick: by the time anyone
//! (faulty or not) performs `α`, the `α`-messages are already in reliable
//! channels, so every correct process will receive one and follow suit —
//! uniformity for free. With *unreliable* channels the same protocol
//! demonstrably fails UDC (see the tests), which is the paper's starting
//! observation.

use crate::protocols::CoordMsg;
use ktudc_model::{ActionId, Event, ProcessId, Time};
use ktudc_sim::{ProtoAction, Protocol};
use std::collections::{BTreeSet, VecDeque};

/// One pending step of the plan queue.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Step {
    Send(ProcessId, ActionId),
    Do(ActionId),
}

/// The Proposition 2.4 protocol (reliable channels, send-then-do).
#[derive(Clone, Debug)]
pub struct ReliableUdc {
    me: ProcessId,
    n: usize,
    entered: BTreeSet<ActionId>,
    plan: VecDeque<Step>,
}

impl Default for ReliableUdc {
    fn default() -> Self {
        ReliableUdc::new()
    }
}

impl ReliableUdc {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        ReliableUdc {
            me: ProcessId::new(0),
            n: 0,
            entered: BTreeSet::new(),
            plan: VecDeque::new(),
        }
    }

    fn enter(&mut self, action: ActionId) {
        if self.entered.insert(action) {
            // Queue the α-messages first, the do strictly after (FIFO).
            for q in ProcessId::all(self.n) {
                if q != self.me {
                    self.plan.push_back(Step::Send(q, action));
                }
            }
            self.plan.push_back(Step::Do(action));
        }
    }
}

impl Protocol<CoordMsg> for ReliableUdc {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }

    fn observe(&mut self, _time: Time, event: &Event<CoordMsg>) {
        match event {
            Event::Init { action } => self.enter(*action),
            Event::Recv {
                msg: CoordMsg::Alpha(action),
                ..
            } => self.enter(*action),
            _ => {}
        }
    }

    fn next_action(&mut self, _time: Time) -> Option<ProtoAction<CoordMsg>> {
        match self.plan.pop_front() {
            Some(Step::Send(to, a)) => Some(ProtoAction::Send {
                to,
                msg: CoordMsg::Alpha(a),
            }),
            Some(Step::Do(a)) => Some(ProtoAction::Do(a)),
            None => None,
        }
    }

    fn quiescent(&self) -> bool {
        self.plan.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_udc, SpecViolation, Verdict};
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, NullOracle, SimConfig, Workload};

    #[test]
    fn udc_holds_on_reliable_channels_with_many_crashes() {
        for seed in 0..8 {
            let config = SimConfig::new(5)
                .channel(ChannelKind::reliable())
                .crashes(CrashPlan::at(&[(0, 9), (2, 14), (4, 20)]))
                .horizon(300)
                .seed(seed);
            let w = Workload::single(0, 2);
            let out = run_protocol(&config, |_| ReliableUdc::new(), &mut NullOracle::new(), &w);
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
            out.run.check_conditions(0).unwrap();
        }
    }

    #[test]
    fn udc_holds_even_when_every_process_crashes() {
        // Unbounded failures: all five crash, but late enough for messages
        // to land. Everyone who performed did so after sending to all, so
        // DC2's consequent is discharged by the crashes.
        let config = SimConfig::new(5)
            .channel(ChannelKind::reliable())
            .crashes(CrashPlan::at(&[
                (0, 40),
                (1, 42),
                (2, 44),
                (3, 46),
                (4, 48),
            ]))
            .horizon(200)
            .seed(3);
        let w = Workload::single(0, 1);
        let out = run_protocol(&config, |_| ReliableUdc::new(), &mut NullOracle::new(), &w);
        assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
    }

    #[test]
    fn same_protocol_fails_udc_on_lossy_channels() {
        // The separating schedule of §1: the initiator's α-messages are all
        // lost, it performs α, crashes — and no correct process can ever
        // perform α because nothing survives. With no retransmission this
        // is a *permanent* violation, not a horizon artifact: the network
        // is empty and every surviving protocol instance is quiescent.
        let w = Workload::single(0, 1);
        let mut witnessed = false;
        for seed in 0..200 {
            let config = SimConfig::new(4)
                .channel(ChannelKind::fair_lossy(0.85))
                .crashes(CrashPlan::at(&[(0, 8)]))
                .horizon(300)
                .seed(seed);
            let out = run_protocol(&config, |_| ReliableUdc::new(), &mut NullOracle::new(), &w);
            if let Verdict::Violated(SpecViolation::Dc2 { .. }) = check_udc(&out.run, &w.actions())
            {
                // Certify permanence: nothing in flight, nobody working.
                assert!(out.quiescent, "violation must be permanent, seed {seed}");
                witnessed = true;
                break;
            }
        }
        assert!(witnessed, "85% loss should strand a performed action");
    }

    #[test]
    fn plan_preserves_send_before_do_order() {
        let mut proto = ReliableUdc::new();
        proto.start(ProcessId::new(1), 3);
        let alpha = ActionId::new(ProcessId::new(1), 0);
        proto.observe(1, &Event::Init { action: alpha });
        let mut saw_do_after_sends = 0;
        let mut sends = 0;
        while let Some(step) = proto.next_action(2) {
            match step {
                ProtoAction::Send { .. } => {
                    assert_eq!(saw_do_after_sends, 0, "send after do");
                    sends += 1;
                }
                ProtoAction::Do(a) => {
                    assert_eq!(a, alpha);
                    saw_do_after_sends += 1;
                }
            }
        }
        assert_eq!(sends, 2);
        assert_eq!(saw_do_after_sends, 1);
        assert!(proto.quiescent());
    }

    #[test]
    fn duplicate_entry_is_idempotent() {
        let mut proto = ReliableUdc::new();
        proto.start(ProcessId::new(0), 2);
        let alpha = ActionId::new(ProcessId::new(1), 0);
        proto.observe(
            1,
            &Event::Recv {
                from: ProcessId::new(1),
                msg: CoordMsg::Alpha(alpha),
            },
        );
        proto.observe(
            2,
            &Event::Recv {
                from: ProcessId::new(1),
                msg: CoordMsg::Alpha(alpha),
            },
        );
        let steps: Vec<_> = std::iter::from_fn(|| proto.next_action(3)).collect();
        assert_eq!(
            steps.len(),
            2,
            "one send + one do despite duplicate receipt"
        );
    }
}
