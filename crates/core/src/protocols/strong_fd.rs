//! Proposition 3.1: UDC over fair-lossy channels with a strong failure
//! detector, no bound on the number of failures.
//!
//! > If a process `p` is in a `UDC(α)` state, it sends an `α`-message
//! > repeatedly to all other processes. Process `p` performs `α` if it is
//! > in a `UDC(α)` state and if, for every process `q`, `p` receives an
//! > acknowledgment from `q` to its `α`-message or `p`'s failure detector
//! > says **or has said** that `q` is faulty. However, `p` continues to
//! > send `α`-messages (even after performing `α`) to all processes from
//! > which it has not received an acknowledgment. Every time a process `q`
//! > receives an `α`-message from `p`, `q` sends an acknowledgment to `p`;
//! > it also goes into a `UDC(α)` state if it has not already done so.
//!
//! The correctness argument needs only *weak* accuracy (some correct `q*`
//! is never suspected, so a performer must have gotten `q*`'s ack, so `q*`
//! is in the `UDC(α)` state and will drive everyone else there) and strong
//! completeness (a process waiting on a crashed peer is eventually
//! released by a suspicion). By Propositions 2.1 and 2.2, an
//! impermanent-weak detector suffices after conversion — hence
//! Corollary 3.2.
//!
//! Note the "**or has said**": suspicions are *latched* (`ever_suspected`
//! accumulates), which is what lets the protocol tolerate impermanent
//! detectors whose current report may have retracted a suspicion.

use crate::protocols::CoordMsg;
use ktudc_model::{ActionId, Event, ProcSet, ProcessId, SuspectReport, Time};
use ktudc_sim::{Outbox, ProtoAction, Protocol};
use std::collections::BTreeMap;

#[derive(Clone, Debug, Default)]
struct ActionState {
    live: bool,
    done: bool,
    acked: ProcSet,
}

/// The Proposition 3.1 protocol.
#[derive(Clone, Debug)]
pub struct StrongFdUdc {
    me: ProcessId,
    n: usize,
    retransmit_every: Time,
    next_retransmit: Time,
    /// Everyone the local failure detector has *ever* suspected.
    ever_suspected: ProcSet,
    actions: BTreeMap<ActionId, ActionState>,
    out: Outbox<CoordMsg>,
}

impl StrongFdUdc {
    /// Creates the protocol with the default retransmission period of 5
    /// ticks.
    #[must_use]
    pub fn new() -> Self {
        Self::with_period(5)
    }

    /// Creates the protocol with a custom retransmission period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_period(period: Time) -> Self {
        assert!(period >= 1);
        StrongFdUdc {
            me: ProcessId::new(0),
            n: 0,
            retransmit_every: period,
            next_retransmit: 0,
            ever_suspected: ProcSet::new(),
            actions: BTreeMap::new(),
            out: Outbox::new(),
        }
    }

    fn enter(&mut self, action: ActionId) {
        self.actions.entry(action).or_default().live = true;
    }

    /// The performance guard: every peer has acked or has (at some point)
    /// been suspected.
    fn can_perform(&self, state: &ActionState) -> bool {
        ProcessId::all(self.n)
            .filter(|&q| q != self.me)
            .all(|q| state.acked.contains(q) || self.ever_suspected.contains(q))
    }

    /// Peers still owed a retransmission for `state` (not yet acked).
    fn unacked(&self, state: &ActionState) -> impl Iterator<Item = ProcessId> + '_ {
        let acked = state.acked;
        let me = self.me;
        ProcessId::all(self.n).filter(move |&q| q != me && !acked.contains(q))
    }
}

impl Default for StrongFdUdc {
    fn default() -> Self {
        StrongFdUdc::new()
    }
}

impl Protocol<CoordMsg> for StrongFdUdc {
    fn start(&mut self, me: ProcessId, n: usize) {
        self.me = me;
        self.n = n;
    }

    fn observe(&mut self, _time: Time, event: &Event<CoordMsg>) {
        match event {
            Event::Init { action } => self.enter(*action),
            Event::Recv {
                from,
                msg: CoordMsg::Alpha(action),
            } => {
                self.enter(*action);
                // Acknowledge every α-message, every time (the sender may
                // have lost earlier acks).
                self.out.send(*from, CoordMsg::Ack(*action));
            }
            Event::Recv {
                from,
                msg: CoordMsg::Ack(action),
            } => {
                self.actions.entry(*action).or_default().acked.insert(*from);
            }
            Event::Suspect(SuspectReport::Standard(s)) => {
                self.ever_suspected = self.ever_suspected.union(*s);
            }
            Event::Do { action } => {
                self.actions.entry(*action).or_default().done = true;
            }
            _ => {}
        }
    }

    fn next_action(&mut self, time: Time) -> Option<ProtoAction<CoordMsg>> {
        // Perform whatever is ready.
        let ready = self
            .actions
            .iter()
            .find(|(_, s)| s.live && !s.done && self.can_perform(s))
            .map(|(&a, _)| a);
        if let Some(action) = ready {
            return Some(ProtoAction::Do(action));
        }
        if let Some(send) = self.out.pop() {
            return Some(send);
        }
        if time >= self.next_retransmit {
            self.next_retransmit = time + self.retransmit_every;
            let planned: Vec<(ProcessId, ActionId)> = self
                .actions
                .iter()
                .filter(|(_, s)| s.live)
                .flat_map(|(&a, s)| self.unacked(s).map(move |q| (q, a)))
                .collect();
            for (q, a) in planned {
                self.out.send(q, CoordMsg::Alpha(a));
            }
            return self.out.pop();
        }
        None
    }

    fn quiescent(&self) -> bool {
        self.out.is_empty()
            && self
                .actions
                .values()
                .all(|s| !s.live || (s.done && s.acked.len() >= self.n - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{check_udc, Verdict};
    use ktudc_fd::{
        check_fd_property, FdProperty, ImpermanentStrongOracle, PerfectOracle, StrongOracle,
        WeakOracle,
    };
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

    fn lossy_config(n: usize, seed: u64) -> SimConfig {
        SimConfig::new(n)
            .channel(ChannelKind::fair_lossy(0.3))
            .horizon(600)
            .seed(seed)
    }

    #[test]
    fn udc_with_strong_fd_under_loss_and_crashes() {
        for seed in 0..8 {
            let config = lossy_config(5, seed).crashes(CrashPlan::at(&[(1, 6), (3, 30)]));
            let w = Workload::single(0, 2);
            let out = run_protocol(
                &config,
                |_| StrongFdUdc::new(),
                &mut StrongOracle::new(),
                &w,
            );
            // Sanity: the oracle really is a strong FD on this run.
            check_fd_property(&out.run, FdProperty::StrongCompleteness).unwrap();
            check_fd_property(&out.run, FdProperty::WeakAccuracy).unwrap();
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
            out.run.check_conditions(0).unwrap();
        }
    }

    #[test]
    fn udc_with_perfect_fd_and_unbounded_failures() {
        // n−1 of n crash; the last process must still perform everything
        // that anyone performed.
        for seed in 0..6 {
            let config = lossy_config(4, seed)
                .crashes(CrashPlan::at(&[(0, 25), (1, 35), (2, 45)]))
                .horizon(800);
            let w = Workload::single(0, 2);
            let out = run_protocol(
                &config,
                |_| StrongFdUdc::new(),
                &mut PerfectOracle::new(),
                &w,
            );
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn udc_with_impermanent_strong_fd() {
        // Retracting detectors are fine because suspicions are latched.
        for seed in 0..6 {
            let config = lossy_config(5, seed).crashes(CrashPlan::at(&[(2, 8)]));
            let w = Workload::single(0, 2);
            let out = run_protocol(
                &config,
                |_| StrongFdUdc::new(),
                &mut ImpermanentStrongOracle::new(),
                &w,
            );
            assert_eq!(
                check_udc(&out.run, &w.actions()),
                Verdict::Satisfied,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn weak_fd_without_conversion_can_strand_the_initiator() {
        // With only weak completeness, a non-monitor process may wait
        // forever on a crashed peer it never suspects: DC1 stalls. This is
        // why Proposition 2.1's conversion is needed before Corollary 3.2.
        let w = Workload::single(3, 2); // initiator p3 is not the monitor (p0)
        let mut stalled = false;
        for seed in 0..60 {
            let config = SimConfig::new(4)
                .channel(ChannelKind::fair_lossy(0.2))
                .crashes(CrashPlan::at(&[(1, 4)]))
                .horizon(500)
                .seed(seed);
            let out = run_protocol(
                &config,
                |_| StrongFdUdc::new(),
                &mut WeakOracle { false_prob: 0.0 },
                &w,
            );
            if !check_udc(&out.run, &w.actions()).is_satisfied() {
                stalled = true;
                break;
            }
        }
        assert!(
            stalled,
            "a weak detector should leave the non-monitor initiator waiting on the crashed peer"
        );
    }

    #[test]
    fn performer_keeps_retransmitting_after_do() {
        // The paper's protocol keeps sending to unacked peers even after
        // performing — drop acks aggressively and watch retransmissions
        // continue past the do.
        let config = SimConfig::new(3)
            .channel(ChannelKind::fair_lossy(0.6))
            .horizon(400)
            .seed(11);
        let w = Workload::single(0, 1);
        let out = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut StrongOracle::new(),
            &w,
        );
        let do_tick = out
            .run
            .timed_history(ktudc_model::ProcessId::new(0))
            .find(|(_, e)| matches!(e, Event::Do { .. }))
            .map(|(t, _)| t);
        if let Some(do_tick) = do_tick {
            let sends_after = out
                .run
                .timed_history(ktudc_model::ProcessId::new(0))
                .filter(|(t, e)| *t > do_tick && matches!(e, Event::Send { .. }))
                .count();
            assert!(
                sends_after > 0 || out.quiescent,
                "either still retransmitting or fully acked"
            );
        }
        assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
    }

    #[test]
    fn heavy_workload_many_actions() {
        let config = lossy_config(4, 21)
            .crashes(CrashPlan::at(&[(2, 40)]))
            .horizon(2000);
        let w = Workload::periodic(4, 9, 120);
        let out = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut StrongOracle::new(),
            &w,
        );
        assert_eq!(check_udc(&out.run, &w.actions()), Verdict::Satisfied);
        assert!(w.actions().len() >= 12);
    }
}
