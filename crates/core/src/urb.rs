//! Uniform Reliable Broadcast as a facade over UDC.
//!
//! Section 5 of the paper (footnote 9) observes that **URB and UDC are
//! isomorphic problems**: `broadcast` in URB corresponds to `init` in UDC
//! and `deliver` to `do`. Aguilera–Toueg–Deianov's companion paper is
//! stated for URB; this module makes the isomorphism executable so results
//! can be read in either vocabulary — and because URB (e.g.
//! Schiper–Sandoz's Uniform Reliable Multicast over Isis-style virtual
//! synchrony, which *simulates perfect failure detection*, exactly as
//! Theorem 3.6 says it must) is how practitioners usually meet UDC.
//!
//! The facade maps a broadcast workload onto a UDC workload, runs any of
//! the crate's UDC protocols, and re-reads the run through URB's
//! specification: **validity** (a correct broadcaster's message is
//! delivered), **uniform agreement** (if *any* process delivers `m`, every
//! correct process delivers `m`), and **integrity** (deliver at most once,
//! only broadcast messages).

use crate::spec::{check_udc, SpecViolation, Verdict};
use ktudc_model::{ActionId, ProcessId, Run, Time};

/// A broadcast instance: `message` is identified by its broadcaster and a
/// per-broadcaster sequence number — precisely an [`ActionId`] under the
/// isomorphism.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BroadcastId(ActionId);

impl BroadcastId {
    /// The `seq`-th broadcast of `broadcaster`.
    #[must_use]
    pub fn new(broadcaster: ProcessId, seq: u32) -> Self {
        BroadcastId(ActionId::new(broadcaster, seq))
    }

    /// The broadcasting process.
    #[must_use]
    pub fn broadcaster(self) -> ProcessId {
        self.0.initiator()
    }

    /// The underlying coordination action (`broadcast ↦ init`,
    /// `deliver ↦ do`).
    #[must_use]
    pub fn as_action(self) -> ActionId {
        self.0
    }
}

impl From<ActionId> for BroadcastId {
    fn from(action: ActionId) -> Self {
        BroadcastId(action)
    }
}

/// A URB specification violation, phrased in broadcast vocabulary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UrbViolation {
    /// A correct broadcaster's message was never delivered by itself.
    Validity {
        /// The undelivered broadcast.
        broadcast: BroadcastId,
    },
    /// Some process delivered `m` but a correct process never did.
    UniformAgreement {
        /// The broadcast.
        broadcast: BroadcastId,
        /// A process that delivered.
        deliverer: ProcessId,
        /// The correct process that did not.
        missing: ProcessId,
    },
    /// A delivery of a message nobody broadcast, or a double delivery.
    Integrity {
        /// The offending broadcast id.
        broadcast: BroadcastId,
        /// The offending process.
        process: ProcessId,
    },
}

impl std::fmt::Display for UrbViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UrbViolation::Validity { broadcast } => write!(
                f,
                "validity: correct {} never delivered its own broadcast {:?}",
                broadcast.broadcaster(),
                broadcast
            ),
            UrbViolation::UniformAgreement {
                broadcast,
                deliverer,
                missing,
            } => write!(
                f,
                "uniform agreement: {deliverer} delivered {broadcast:?} but correct {missing} did not"
            ),
            UrbViolation::Integrity { broadcast, process } => {
                write!(f, "integrity: {process} mis-delivered {broadcast:?}")
            }
        }
    }
}

impl std::error::Error for UrbViolation {}

/// Which processes delivered `broadcast` in `run`, with delivery ticks.
#[must_use]
pub fn deliveries<M>(run: &Run<M>, broadcast: BroadcastId) -> Vec<(ProcessId, Time)> {
    let action = broadcast.as_action();
    let mut out = Vec::new();
    for p in ProcessId::all(run.n()) {
        for (t, e) in run.timed_history(p) {
            if matches!(e, ktudc_model::Event::Do { action: a } if *a == action) {
                out.push((p, t));
            }
        }
    }
    out
}

/// Checks URB (validity + uniform agreement + integrity) on a run, for the
/// listed broadcasts, under the usual finite-horizon reading of liveness.
///
/// # Errors
///
/// Returns the first violation, in broadcast vocabulary. Internally this
/// *is* the UDC checker plus integrity — the isomorphism at work.
pub fn check_urb<M>(run: &Run<M>, broadcasts: &[BroadcastId]) -> Result<(), UrbViolation> {
    // Integrity: at most one delivery per process per broadcast.
    for &bc in broadcasts {
        for p in ProcessId::all(run.n()) {
            let count = deliveries(run, bc).iter().filter(|(q, _)| *q == p).count();
            if count > 1 {
                return Err(UrbViolation::Integrity {
                    broadcast: bc,
                    process: p,
                });
            }
        }
    }
    let actions: Vec<ActionId> = broadcasts.iter().map(|b| b.as_action()).collect();
    match check_udc(run, &actions) {
        Verdict::Satisfied => Ok(()),
        Verdict::Violated(SpecViolation::Dc1 { action }) => Err(UrbViolation::Validity {
            broadcast: action.into(),
        }),
        Verdict::Violated(SpecViolation::Dc2 {
            action,
            performer,
            missing,
        }) => Err(UrbViolation::UniformAgreement {
            broadcast: action.into(),
            deliverer: performer,
            missing,
        }),
        Verdict::Violated(SpecViolation::Dc3 {
            action, performer, ..
        }) => Err(UrbViolation::Integrity {
            broadcast: action.into(),
            process: performer,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::strong_fd::StrongFdUdc;
    use ktudc_fd::StrongOracle;
    use ktudc_model::{Event, RunBuilder};
    use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn broadcast_id_roundtrip() {
        let bc = BroadcastId::new(p(2), 7);
        assert_eq!(bc.broadcaster(), p(2));
        assert_eq!(bc.as_action(), ActionId::new(p(2), 7));
        assert_eq!(BroadcastId::from(ActionId::new(p(2), 7)), bc);
    }

    #[test]
    fn urb_over_the_prop_3_1_protocol() {
        // URB = UDC with broadcast/deliver names: run the strong-FD UDC
        // protocol and read the result as uniform reliable broadcast.
        let config = SimConfig::new(5)
            .channel(ChannelKind::fair_lossy(0.3))
            .crashes(CrashPlan::at(&[(1, 6), (3, 25)]))
            .horizon(600)
            .seed(3);
        let w = Workload::single(0, 2);
        let out = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut StrongOracle::new(),
            &w,
        );
        let bc: BroadcastId = w.actions()[0].into();
        check_urb(&out.run, &[bc]).unwrap();
        // Every correct process delivered exactly once.
        let delivered = deliveries(&out.run, bc);
        for q in out.run.correct().iter() {
            assert_eq!(delivered.iter().filter(|(d, _)| *d == q).count(), 1);
        }
    }

    #[test]
    fn uniform_agreement_violation_translates() {
        // The broadcaster delivers then crashes; nobody else delivers.
        let bc = BroadcastId::new(p(0), 0);
        let mut b = RunBuilder::<u8>::new(2);
        b.append(
            p(0),
            1,
            Event::Init {
                action: bc.as_action(),
            },
        )
        .unwrap();
        b.append(
            p(0),
            2,
            Event::Do {
                action: bc.as_action(),
            },
        )
        .unwrap();
        b.append(p(0), 3, Event::Crash).unwrap();
        let run = b.finish(6);
        assert!(matches!(
            check_urb(&run, &[bc]),
            Err(UrbViolation::UniformAgreement { deliverer, missing, .. })
                if deliverer == p(0) && missing == p(1)
        ));
    }

    #[test]
    fn validity_violation_translates() {
        let bc = BroadcastId::new(p(0), 0);
        let mut b = RunBuilder::<u8>::new(2);
        b.append(
            p(0),
            1,
            Event::Init {
                action: bc.as_action(),
            },
        )
        .unwrap();
        let run = b.finish(5);
        assert!(matches!(
            check_urb(&run, &[bc]),
            Err(UrbViolation::Validity { .. })
        ));
    }

    #[test]
    fn integrity_catches_double_delivery_and_ghosts() {
        let bc = BroadcastId::new(p(0), 0);
        // Double delivery.
        let mut b = RunBuilder::<u8>::new(1);
        b.append(
            p(0),
            1,
            Event::Init {
                action: bc.as_action(),
            },
        )
        .unwrap();
        b.append(
            p(0),
            2,
            Event::Do {
                action: bc.as_action(),
            },
        )
        .unwrap();
        b.append(
            p(0),
            3,
            Event::Do {
                action: bc.as_action(),
            },
        )
        .unwrap();
        let run = b.finish(5);
        assert!(matches!(
            check_urb(&run, &[bc]),
            Err(UrbViolation::Integrity { .. })
        ));
        // Ghost delivery (never broadcast) = DC3 in UDC terms.
        let mut b = RunBuilder::<u8>::new(2);
        b.append(
            p(1),
            2,
            Event::Do {
                action: bc.as_action(),
            },
        )
        .unwrap();
        let run = b.finish(5);
        assert!(matches!(
            check_urb(&run, &[bc]),
            Err(UrbViolation::Integrity { process, .. }) if process == p(1)
        ));
    }

    #[test]
    fn violation_display() {
        let v = UrbViolation::Validity {
            broadcast: BroadcastId::new(p(0), 1),
        };
        assert!(v.to_string().contains("never delivered"));
    }
}
