//! Violation-detection campaigns: mutation testing for the checker stack.
//!
//! A *chaos plan* perturbs a Table-1 cell — network faults from
//! [`ktudc_sim::FaultPlan`], contract-violating failure-detector wrappers
//! from [`ktudc_fd::perturb`], or crash schedules that overrun the context
//! bound `t`. Each plan is classified, **per cell**, as in-model (the
//! paper's run conditions R1–R5 and the cell's context assumptions still
//! hold) or out-of-model (some assumption is deliberately broken), and the
//! campaign asserts a detection matrix:
//!
//! * every **in-model** plan leaves the UDC verdict unchanged and raises
//!   no alarm from any checker (zero false alarms), and
//! * every **out-of-model** plan is either *detected* — flagged by the
//!   structural R1–R5 checker, the cell's claimed FD-class properties, the
//!   fault-bound audit, or a changed UDC verdict — or explicitly recorded
//!   as *survived*, with the injection evidence in the row. Nothing falls
//!   through silently, and every plan kind must be detected at least once
//!   across the campaign (the mutation-kill criterion).
//!
//! The campaign runs over the *positive* (achievable) UDC cells of
//! Table 1. Negative cells violate the specification by design, so a
//! changed verdict there is not a detection signal; they are exercised by
//! the ordinary harness instead.
//!
//! Everything is deterministic: a campaign over fixed cells, plans, and
//! seeds produces a byte-identical report (pinned by its digest).

use crate::harness::{make_oracle, CellSpec, FdChoice, ProtocolChoice};
use crate::protocols::generalized::GeneralizedUdc;
use crate::protocols::reliable::ReliableUdc;
use crate::protocols::strong_fd::StrongFdUdc;
use crate::protocols::CoordMsg;
use crate::spec::{check_udc, Verdict};
use ktudc_fd::{
    check_fd_property, FalseSuspector, FdProperty, MinFaultyInflater, SuspicionSuppressor,
};
use ktudc_model::hashing::stable_hash;
use ktudc_model::{ModelError, ProcessId, Time};
use ktudc_sim::{
    run_protocol, ChannelKind, CrashPlan, FaultPlan, FdOracle, SimConfig, SimOutcome, Workload,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Fairness threshold (R5 reading) used by the campaign's structural
/// check: a message sent this many times to a live receiver with zero
/// receipts counts as an unfair-channel witness. High enough that benign
/// lossy channels never trip it at campaign horizons, low enough that a
/// severed link under a retransmitting protocol does.
pub const FAIRNESS_THRESHOLD: usize = 25;

/// Whether a plan stays inside the model assumptions of a given cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanClass {
    /// R1–R5 and the cell's context assumptions still hold; checkers must
    /// stay silent and the verdict must not move.
    InModel,
    /// Some assumption is deliberately broken; the campaign demands
    /// detection or an explicitly recorded survival.
    OutOfModel,
}

/// A scheduled failure-detector contract violation (wrappers from
/// [`ktudc_fd::perturb`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum FdMutation {
    /// One false suspicion of the immune process (lowest-indexed correct)
    /// at the first poll at or after `at` — breaks strong accuracy.
    FalseSuspect {
        /// Earliest tick at which the false suspicion fires.
        at: Time,
    },
    /// Erase every suspicion of the highest-indexed process — breaks
    /// strong/weak completeness whenever that process crashes.
    Suppress,
    /// Inflate one generalized report's claimed `min_faulty` bound at the
    /// first qualifying poll at or after `at` — breaks generalized strong
    /// accuracy.
    InflateMinFaulty {
        /// Earliest tick at which the inflated bound fires.
        at: Time,
    },
}

/// One mutation: a named bundle of network faults, an optional FD
/// contract violation, and an optional crash-bound overrun.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Display name (stable across runs; part of the report digest).
    pub name: &'static str,
    /// Network-level faults injected into the simulated channels.
    pub network: FaultPlan,
    /// Failure-detector contract violation, if any.
    pub fd: Option<FdMutation>,
    /// How far beyond the cell's `t` the crash schedule may draw.
    pub extra_crashes: usize,
}

impl ChaosPlan {
    /// A pure network-fault plan.
    #[must_use]
    pub fn network(name: &'static str, network: FaultPlan) -> Self {
        ChaosPlan {
            name,
            network,
            fd: None,
            extra_crashes: 0,
        }
    }

    /// A pure FD-mutation plan.
    #[must_use]
    pub fn fd_mutation(name: &'static str, fd: FdMutation) -> Self {
        ChaosPlan {
            name,
            network: FaultPlan::none(),
            fd: Some(fd),
            extra_crashes: 0,
        }
    }

    /// A plan whose crash schedule may exceed the context bound `t` by up
    /// to `extra` victims.
    #[must_use]
    pub fn crash_overrun(name: &'static str, extra: usize) -> Self {
        ChaosPlan {
            name,
            network: FaultPlan::none(),
            fd: None,
            extra_crashes: extra,
        }
    }

    /// Whether this plan is meaningful for `cell`. FD mutations only
    /// target cells whose detector actually claims the property they
    /// break (so detection is guaranteed rather than probabilistic).
    #[must_use]
    pub fn applies_to(&self, cell: &CellSpec) -> bool {
        match self.fd {
            None => true,
            Some(FdMutation::FalseSuspect { .. } | FdMutation::Suppress) => {
                matches!(cell.fd, FdChoice::Perfect)
            }
            Some(FdMutation::InflateMinFaulty { .. }) => {
                matches!(cell.fd, FdChoice::TUseful | FdChoice::Cycling)
            }
        }
    }

    /// Classifies this plan relative to `cell`'s model assumptions.
    ///
    /// Duplication (R3), permanently severed links (R5), FD contract
    /// violations, and crash-bound overruns are always out-of-model.
    /// Burst loss and bounded partitions only destroy copies, which is
    /// in-model on channels already declared lossy (the protocols there
    /// retransmit) but breaks the reliable-channel assumption of
    /// Proposition 2.4 otherwise. Bounded delay spikes are in-model
    /// everywhere.
    #[must_use]
    pub fn class_for(&self, cell: &CellSpec) -> PlanClass {
        if self.fd.is_some()
            || self.extra_crashes > 0
            || self.network.duplicates()
            || self.network.has_unfair_link()
        {
            return PlanClass::OutOfModel;
        }
        if self.network.drops_copies() && cell.drop_prob.is_none() {
            return PlanClass::OutOfModel;
        }
        PlanClass::InModel
    }
}

/// The standard mutation catalog for an `n`-process grid: three in-model
/// controls (on lossy cells) and six out-of-model violations covering R3,
/// R5, bounded loss against reliable-channel cells, the crash bound, and
/// three FD-class contracts.
///
/// The bounded partition isolates *all* of process 0's outgoing links for
/// its window (hence the `n` parameter): a single cut link is masked by
/// the protocols' relaying and would never be caught, but full egress
/// isolation while p0 initiates actions is detectable on reliable cells.
#[must_use]
pub fn standard_plans(n: usize) -> Vec<ChaosPlan> {
    let mut isolate = FaultPlan::none();
    for to in 1..n {
        isolate = isolate.partition_link(0, to, 20, 80);
    }
    vec![
        ChaosPlan::network("delay-spikes", FaultPlan::none().delay_spikes(40, 8, 5)),
        ChaosPlan::network("burst-loss", FaultPlan::none().burst_loss(30, 3)),
        ChaosPlan::network("bounded-partition", isolate),
        ChaosPlan::network("duplication", FaultPlan::none().duplicate(0.25)),
        ChaosPlan::network("severed-link", FaultPlan::none().sever_link(0, 1, 1)),
        ChaosPlan::crash_overrun("crash-overrun", 2),
        ChaosPlan::fd_mutation("fd-false-suspect", FdMutation::FalseSuspect { at: 40 }),
        ChaosPlan::fd_mutation("fd-suppress", FdMutation::Suppress),
        ChaosPlan::fd_mutation(
            "fd-inflate-min-faulty",
            FdMutation::InflateMinFaulty { at: 40 },
        ),
    ]
}

/// The positive (achievable) UDC cells of Table 1, sized for the chaos
/// campaign. `smoke` shrinks the grid for CI.
#[must_use]
pub fn chaos_cells(smoke: bool) -> Vec<(String, CellSpec)> {
    let (n, horizon, loss, (t_low, t_mid, t_high)) = if smoke {
        (4, 600, 0.25, (1, 2, 3))
    } else {
        (5, 1200, 0.3, (2, 3, 4))
    };
    let cell = |t: usize, drop: Option<f64>, fd: FdChoice, proto: ProtocolChoice| {
        CellSpec::new(n, t, drop, fd, proto).horizon(horizon)
    };
    vec![
        (
            format!("reliable / no FD / t={t_low}"),
            cell(t_low, None, FdChoice::None, ProtocolChoice::Reliable),
        ),
        (
            format!("reliable / no FD / t={t_high}"),
            cell(t_high, None, FdChoice::None, ProtocolChoice::Reliable),
        ),
        (
            format!("lossy / cycling / t={t_low}"),
            cell(
                t_low,
                Some(loss),
                FdChoice::Cycling,
                ProtocolChoice::Generalized,
            ),
        ),
        (
            format!("lossy / t-useful / t={t_mid}"),
            cell(
                t_mid,
                Some(loss),
                FdChoice::TUseful,
                ProtocolChoice::Generalized,
            ),
        ),
        (
            format!("lossy / strong / t={t_high}"),
            cell(
                t_high,
                Some(loss),
                FdChoice::Strong,
                ProtocolChoice::StrongFd,
            ),
        ),
        (
            format!("lossy / perfect / t={t_high}"),
            cell(
                t_high,
                Some(loss),
                FdChoice::Perfect,
                ProtocolChoice::StrongFd,
            ),
        ),
    ]
}

/// The FD-class properties a cell's detector *claims*, i.e. the
/// contracts the campaign holds it to. Checked on every campaign run:
/// they must hold under in-model plans and catch the matching FD
/// mutation.
#[must_use]
pub fn claimed_properties(fd: FdChoice) -> &'static [FdProperty] {
    match fd {
        FdChoice::None => &[],
        FdChoice::Cycling | FdChoice::TUseful => &[FdProperty::GeneralizedStrongAccuracy],
        FdChoice::Weak => &[FdProperty::WeakAccuracy, FdProperty::WeakCompleteness],
        FdChoice::ImpermanentStrong => &[FdProperty::ImpermanentStrongCompleteness],
        FdChoice::Strong => &[FdProperty::WeakAccuracy, FdProperty::StrongCompleteness],
        FdChoice::Perfect => &[FdProperty::StrongAccuracy, FdProperty::StrongCompleteness],
        // The empirical detectors unconditionally claim only completeness
        // (a crashed process goes silent in every regime, so beats stop and
        // counters freeze); their *accuracy* is regime-dependent — that is
        // precisely what `ktudc_fd::classify` measures per fault regime.
        FdChoice::Heartbeat | FdChoice::PhiAccrual | FdChoice::Gossip => {
            &[FdProperty::StrongCompleteness]
        }
    }
}

/// How one campaign row was classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// In-model plan, verdict unchanged, every checker silent.
    Clean,
    /// In-model plan, but a checker fired or the verdict moved — a
    /// campaign failure.
    FalseAlarm,
    /// Out-of-model plan caught by at least one checker.
    Detected,
    /// Out-of-model plan absorbed by the protocol; the injection evidence
    /// is recorded in the row.
    Survived,
}

/// One (cell, plan, seed) trial of the campaign.
///
/// Owns its strings (rather than borrowing the plan catalog's `'static`
/// names) so rows journaled by [`run_chaos_campaign_journaled`] can be
/// deserialized on resume; `String` and `&str` hash identically, so the
/// report digest is unaffected.
#[derive(Clone, Debug, Hash, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Cell display label.
    pub cell: String,
    /// Plan name.
    pub plan: String,
    /// Plan classification relative to this cell.
    pub class: PlanClass,
    /// Trial seed.
    pub seed: u64,
    /// Injection evidence: network injections, crashes beyond `t`, and
    /// scheduled FD perturbations that could fire.
    pub injected: u64,
    /// UDC verdict of the unperturbed trial at the same seed.
    pub baseline_verdict: String,
    /// UDC verdict of the perturbed trial.
    pub verdict: String,
    /// Every alarm raised, in checker order (structural, FD-class,
    /// fault-bound, spec verdict).
    pub detections: Vec<String>,
    /// Row classification.
    pub outcome: RowOutcome,
    /// Tick of the structural witness, when the checker exposes one
    /// (R3 duplication does; used for detection-latency reporting).
    pub detection_tick: Option<Time>,
}

fn simulate(
    cell: &CellSpec,
    network: &FaultPlan,
    fd: Option<FdMutation>,
    extra_crashes: usize,
    seed: u64,
) -> (SimOutcome<CoordMsg>, &'static str) {
    let channel = match cell.drop_prob {
        None => ChannelKind::reliable(),
        Some(p) => ChannelKind::fair_lossy(p),
    };
    let config = SimConfig::new(cell.n)
        .channel(channel)
        .crashes(CrashPlan::Random {
            max_failures: cell.t + extra_crashes,
            latest: cell.horizon / 4,
        })
        .horizon(cell.horizon)
        .seed(seed)
        .faults(network.clone());
    let workload = Workload::periodic(cell.n, 9, cell.horizon / 6);
    let base = make_oracle(cell);
    let mut oracle: Box<dyn FdOracle> = match fd {
        None => base,
        Some(FdMutation::FalseSuspect { at }) => {
            Box::new(FalseSuspector::new(base, ProcessId::new(0), at))
        }
        Some(FdMutation::Suppress) => {
            Box::new(SuspicionSuppressor::new(base, ProcessId::new(cell.n - 1)))
        }
        Some(FdMutation::InflateMinFaulty { at }) => Box::new(MinFaultyInflater::new(base, at)),
    };
    let out = match cell.protocol {
        ProtocolChoice::Reliable => {
            run_protocol(&config, |_| ReliableUdc::new(), oracle.as_mut(), &workload)
        }
        ProtocolChoice::StrongFd => {
            run_protocol(&config, |_| StrongFdUdc::new(), oracle.as_mut(), &workload)
        }
        ProtocolChoice::Generalized => run_protocol(
            &config,
            |_| GeneralizedUdc::new(cell.t),
            oracle.as_mut(),
            &workload,
        ),
    };
    let verdict = match check_udc(&out.run, &workload.actions()) {
        Verdict::Satisfied => "satisfied",
        Verdict::Violated(_) if out.quiescent => "violated-permanent",
        Verdict::Violated(_) => "unsatisfied-pending",
    };
    (out, verdict)
}

fn fd_injection_evidence(fd: Option<FdMutation>, out: &SimOutcome<CoordMsg>, n: usize) -> u64 {
    match fd {
        None => 0,
        // The suppressor only has an observable effect when its target
        // actually crashed in this trial; a vacuous run is recorded as 0.
        Some(FdMutation::Suppress) => {
            u64::from(out.truth.crash_time(ProcessId::new(n - 1)).is_some())
        }
        // One-shot perturbations fire at the first qualifying poll, which
        // periodic FD polling guarantees before the horizon.
        Some(_) => 1,
    }
}

/// Runs one (cell, plan, seed) trial: the unperturbed baseline, the
/// perturbed run, and the full checker battery over the result.
#[must_use]
pub fn run_chaos_trial(label: &str, cell: &CellSpec, plan: &ChaosPlan, seed: u64) -> ChaosRow {
    let class = plan.class_for(cell);
    let (_, baseline_verdict) = simulate(cell, &FaultPlan::none(), None, 0, seed);
    let (out, verdict) = simulate(cell, &plan.network, plan.fd, plan.extra_crashes, seed);

    let mut detections = Vec::new();
    let mut detection_tick = None;
    if let Err(e) = out.run.check_conditions(FAIRNESS_THRESHOLD) {
        if let ModelError::ReceiveWithoutSend { time, .. } = &e {
            detection_tick = Some(*time);
        }
        detections.push(format!("structural: {e}"));
    }
    for prop in claimed_properties(cell.fd) {
        if let Err(v) = check_fd_property(&out.run, *prop) {
            detections.push(format!("fd: {v}"));
        }
    }
    let crashes = out.truth.faulty().len();
    if crashes > cell.t {
        detections.push(format!(
            "fault-bound: {crashes} crashes exceed the context bound t = {}",
            cell.t
        ));
    }
    if verdict != baseline_verdict {
        // A flip to a *safety* violation is always evidence. A flip to a
        // mere stall ("unsatisfied-pending") is evidence only against an
        // out-of-model plan: legal extra loss on an already-lossy channel
        // may push quiescence past the finite horizon without violating
        // anything — R5 fairness only promises delivery in the limit —
        // so for in-model plans a stall is the expected finite-horizon
        // artifact, not an alarm.
        if verdict == "violated-permanent" || class == PlanClass::OutOfModel {
            detections.push(format!(
                "spec: verdict changed ({baseline_verdict} -> {verdict})"
            ));
        }
    }

    let injected = out.faults.total()
        + crashes.saturating_sub(cell.t) as u64
        + fd_injection_evidence(plan.fd, &out, cell.n);
    let outcome = match (class, detections.is_empty()) {
        (PlanClass::InModel, true) => RowOutcome::Clean,
        (PlanClass::InModel, false) => RowOutcome::FalseAlarm,
        (PlanClass::OutOfModel, true) => RowOutcome::Survived,
        (PlanClass::OutOfModel, false) => RowOutcome::Detected,
    };
    ChaosRow {
        cell: label.to_string(),
        plan: plan.name.to_string(),
        class,
        seed,
        injected,
        baseline_verdict: baseline_verdict.to_string(),
        verdict: verdict.to_string(),
        detections,
        outcome,
        detection_tick,
    }
}

/// The campaign's detection matrix, with a platform-pinned digest over
/// the serialized rows: identical cells, plans, and seeds reproduce an
/// identical digest.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosReport {
    /// R5 threshold the structural checks ran at.
    pub fairness_threshold: usize,
    /// In-model rows with no alarm and an unchanged verdict.
    pub clean: usize,
    /// In-model rows that raised an alarm — must be zero.
    pub false_alarms: usize,
    /// Out-of-model rows caught by a checker.
    pub detected: usize,
    /// Out-of-model rows absorbed by the protocol (with evidence).
    pub survived: usize,
    /// Every trial row.
    pub rows: Vec<ChaosRow>,
    /// 64-bit FNV-1a digest (hex) of the serialized rows.
    pub digest: String,
}

impl ChaosReport {
    fn tally(rows: Vec<ChaosRow>) -> Self {
        let count = |o: RowOutcome| rows.iter().filter(|r| r.outcome == o).count();
        let digest = format!("{:016x}", stable_hash(&rows));
        ChaosReport {
            fairness_threshold: FAIRNESS_THRESHOLD,
            clean: count(RowOutcome::Clean),
            false_alarms: count(RowOutcome::FalseAlarm),
            detected: count(RowOutcome::Detected),
            survived: count(RowOutcome::Survived),
            rows,
            digest,
        }
    }

    /// No in-model plan raised any alarm.
    #[must_use]
    pub fn zero_false_alarms(&self) -> bool {
        self.false_alarms == 0
    }

    /// Every out-of-model plan kind was detected at least once across the
    /// campaign (the mutation-kill criterion; surviving *rows* are fine —
    /// a plan kind that is *never* caught means a checker is dead).
    #[must_use]
    pub fn all_mutants_killed(&self) -> bool {
        let mut killed: BTreeMap<&str, bool> = BTreeMap::new();
        for row in &self.rows {
            if row.class == PlanClass::OutOfModel {
                *killed.entry(row.plan.as_str()).or_insert(false) |=
                    row.outcome == RowOutcome::Detected;
            }
        }
        !killed.is_empty() && killed.values().all(|&d| d)
    }

    /// Rows that violate the campaign contract, for diagnostics.
    #[must_use]
    pub fn offending_rows(&self) -> Vec<&ChaosRow> {
        self.rows
            .iter()
            .filter(|r| r.outcome == RowOutcome::FalseAlarm)
            .collect()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rows: {} clean, {} false alarms, {} detected, {} survived (digest {})",
            self.rows.len(),
            self.clean,
            self.false_alarms,
            self.detected,
            self.survived,
            self.digest
        )
    }
}

/// Sweeps `plans` (where applicable) across `cells` at each seed. Trials
/// are independent and fully seed-determined, so they run in parallel;
/// the row order — cells outer, plans middle, seeds inner — is identical
/// either way.
#[must_use]
pub fn run_chaos_campaign(
    cells: &[(String, CellSpec)],
    plans: &[ChaosPlan],
    seeds: &[u64],
) -> ChaosReport {
    let mut work = Vec::new();
    for (label, cell) in cells {
        for plan in plans.iter().filter(|p| p.applies_to(cell)) {
            for &seed in seeds {
                work.push((label.clone(), cell.clone(), plan.clone(), seed));
            }
        }
    }
    let rows = ktudc_par::par_map(work, |(label, cell, plan, seed)| {
        run_chaos_trial(&label, &cell, &plan, seed)
    });
    ChaosReport::tally(rows)
}

/// What a journaled campaign replayed versus recomputed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosResumeStats {
    /// Trials in the campaign's work list.
    pub total_trials: usize,
    /// Trials whose rows were replayed from the journal.
    pub resumed_trials: usize,
    /// Trials computed (and journaled) by this invocation.
    pub computed_trials: usize,
    /// Valid journal entries found at open (including the header).
    pub replayed_entries: u64,
    /// Torn/corrupt bytes the journal layer truncated at open.
    pub truncated_bytes: u64,
    /// Whether the journal already existed (i.e. this was a resume).
    pub resumed: bool,
}

/// One journal entry of a checkpointed campaign, JSON-encoded.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum ChaosJournalEntry {
    /// First entry: pins the exact work list (cells, plans, seeds, order).
    Header {
        /// [`campaign_fingerprint`] of the work list.
        fingerprint: u64,
    },
    /// One completed trial, by work-list index.
    Trial {
        /// Index into the deterministic work list.
        index: usize,
        /// The finished row, exactly as a fresh run would produce it.
        row: ChaosRow,
    },
}

/// Stable fingerprint of a campaign's work list: every (label, cell,
/// plan name, seed) in order. Two campaigns share a journal iff they
/// agree on this.
fn campaign_fingerprint(work: &[(String, CellSpec, ChaosPlan, u64)]) -> Result<u64, String> {
    let mut items: Vec<(String, String, String, u64)> = Vec::with_capacity(work.len());
    for (label, cell, plan, seed) in work {
        let cell_json =
            serde_json::to_string(cell).map_err(|e| format!("chaos journal: encode cell: {e}"))?;
        items.push((label.clone(), cell_json, plan.name.to_string(), *seed));
    }
    Ok(stable_hash(&items))
}

/// [`run_chaos_campaign`], checkpointed: every completed trial is
/// appended to the journal at `path`, so a killed campaign resumes from
/// the last durable trial and — because trials are fully
/// seed-determined — produces a report digest **identical** to an
/// uninterrupted run's, whatever mixture of replay and recomputation
/// built it.
///
/// # Errors
///
/// Returns I/O failures, a journal written for a different campaign
/// (cells/plans/seeds mismatch), or an unparseable (version-skewed)
/// journal.
pub fn run_chaos_campaign_journaled(
    cells: &[(String, CellSpec)],
    plans: &[ChaosPlan],
    seeds: &[u64],
    path: &Path,
    sync: ktudc_store::SyncPolicy,
) -> Result<(ChaosReport, ChaosResumeStats), String> {
    let mut work = Vec::new();
    for (label, cell) in cells {
        for plan in plans.iter().filter(|p| p.applies_to(cell)) {
            for &seed in seeds {
                work.push((label.clone(), cell.clone(), plan.clone(), seed));
            }
        }
    }
    let fingerprint = campaign_fingerprint(&work)?;

    let (mut journal, recovered) = ktudc_store::Journal::recover(path, sync)
        .map_err(|e| format!("chaos journal {}: {e}", path.display()))?;
    let mut stats = ChaosResumeStats {
        total_trials: work.len(),
        replayed_entries: recovered.entries.len() as u64,
        truncated_bytes: recovered.truncated_bytes,
        resumed: recovered.existed && !recovered.entries.is_empty(),
        ..ChaosResumeStats::default()
    };

    let mut done: BTreeMap<usize, ChaosRow> = BTreeMap::new();
    for (i, bytes) in recovered.entries.iter().enumerate() {
        let entry: ChaosJournalEntry = std::str::from_utf8(bytes)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str(s).map_err(|e| e.to_string()))
            .map_err(|e| {
                format!(
                    "chaos journal {}: entry {i} does not parse ({e}); \
                     the journal was written by an incompatible version",
                    path.display()
                )
            })?;
        match (i, entry) {
            (0, ChaosJournalEntry::Header { fingerprint: f }) if f == fingerprint => {}
            (0, ChaosJournalEntry::Header { .. }) => {
                return Err(format!(
                    "chaos journal {} was written for a different campaign; \
                     refusing to merge (delete it to start over)",
                    path.display()
                ));
            }
            (0, ChaosJournalEntry::Trial { .. }) => {
                return Err(format!(
                    "chaos journal {}: first entry is not a header",
                    path.display()
                ));
            }
            (_, ChaosJournalEntry::Trial { index, row }) if index < work.len() => {
                done.insert(index, row);
            }
            (_, ChaosJournalEntry::Trial { index, .. }) => {
                return Err(format!(
                    "chaos journal {}: trial index {index} out of range",
                    path.display()
                ));
            }
            (_, ChaosJournalEntry::Header { .. }) => {
                return Err(format!(
                    "chaos journal {}: duplicate header at entry {i}",
                    path.display()
                ));
            }
        }
    }
    if recovered.entries.is_empty() {
        let bytes = serde_json::to_string(&ChaosJournalEntry::Header { fingerprint })
            .map_err(|e| format!("chaos journal encode: {e}"))?;
        journal
            .append(bytes.as_bytes())
            .map_err(|e| format!("chaos journal append: {e}"))?;
    }

    let mut rows: Vec<Option<ChaosRow>> = Vec::with_capacity(work.len());
    let mut todo = Vec::new();
    for (index, item) in work.into_iter().enumerate() {
        match done.remove(&index) {
            Some(row) => {
                stats.resumed_trials += 1;
                rows.push(Some(row));
            }
            None => {
                rows.push(None);
                todo.push((index, item));
            }
        }
    }

    // Compute missing trials in small parallel chunks, journaling after
    // each chunk; chunking affects only the checkpoint cadence, never the
    // report (assembly is by index).
    let chunk = ktudc_par::thread_count().max(1) * 2;
    for batch in todo.chunks(chunk) {
        let computed: Vec<(usize, ChaosRow)> =
            ktudc_par::par_map(batch.to_vec(), |(index, (label, cell, plan, seed))| {
                (index, run_chaos_trial(&label, &cell, &plan, seed))
            });
        for (index, row) in computed {
            let bytes = serde_json::to_string(&ChaosJournalEntry::Trial {
                index,
                row: row.clone(),
            })
            .map_err(|e| format!("chaos journal encode: {e}"))?;
            journal
                .append(bytes.as_bytes())
                .map_err(|e| format!("chaos journal append: {e}"))?;
            stats.computed_trials += 1;
            rows[index] = Some(row);
        }
    }
    journal
        .sync()
        .map_err(|e| format!("chaos journal {}: sync: {e}", path.display()))?;

    let rows: Vec<ChaosRow> = rows
        .into_iter()
        .map(|r| r.expect("every trial index resolved"))
        .collect();
    Ok((ChaosReport::tally(rows), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cells() -> Vec<(String, CellSpec)> {
        vec![
            (
                "reliable / no FD / t=1".into(),
                CellSpec::new(4, 1, None, FdChoice::None, ProtocolChoice::Reliable).horizon(600),
            ),
            (
                "lossy / t-useful / t=2".into(),
                CellSpec::new(
                    4,
                    2,
                    Some(0.25),
                    FdChoice::TUseful,
                    ProtocolChoice::Generalized,
                )
                .horizon(600),
            ),
            (
                "lossy / perfect / t=3".into(),
                CellSpec::new(
                    4,
                    3,
                    Some(0.25),
                    FdChoice::Perfect,
                    ProtocolChoice::StrongFd,
                )
                .horizon(600),
            ),
        ]
    }

    #[test]
    fn classification_depends_on_the_cell() {
        let reliable = CellSpec::new(4, 1, None, FdChoice::None, ProtocolChoice::Reliable);
        let lossy = CellSpec::new(4, 3, Some(0.3), FdChoice::Strong, ProtocolChoice::StrongFd);
        let spikes = ChaosPlan::network("s", FaultPlan::none().delay_spikes(40, 8, 5));
        let burst = ChaosPlan::network("b", FaultPlan::none().burst_loss(30, 3));
        let dup = ChaosPlan::network("d", FaultPlan::none().duplicate(0.2));
        let sever = ChaosPlan::network("x", FaultPlan::none().sever_link(0, 1, 1));
        assert_eq!(spikes.class_for(&reliable), PlanClass::InModel);
        assert_eq!(spikes.class_for(&lossy), PlanClass::InModel);
        // Destroying copies breaks Prop 2.4's reliable-channel assumption
        // but is business as usual on a lossy channel.
        assert_eq!(burst.class_for(&reliable), PlanClass::OutOfModel);
        assert_eq!(burst.class_for(&lossy), PlanClass::InModel);
        assert_eq!(dup.class_for(&lossy), PlanClass::OutOfModel);
        assert_eq!(sever.class_for(&lossy), PlanClass::OutOfModel);
        // FD mutations only target cells claiming the broken property.
        let inflate = ChaosPlan::fd_mutation("i", FdMutation::InflateMinFaulty { at: 40 });
        assert!(!inflate.applies_to(&lossy));
        assert!(inflate.applies_to(&CellSpec::new(
            4,
            2,
            Some(0.25),
            FdChoice::TUseful,
            ProtocolChoice::Generalized
        )));
    }

    #[test]
    fn campaign_is_clean_and_kills_every_mutant() {
        let report = run_chaos_campaign(&small_cells(), &standard_plans(4), &[1, 2, 5]);
        assert!(
            report.zero_false_alarms(),
            "in-model plans raised alarms: {:#?}",
            report.offending_rows()
        );
        assert!(
            report.all_mutants_killed(),
            "some plan kind was never detected:\n{report}\n{:#?}",
            report.rows
        );
        assert!(report.clean > 0, "campaign exercised no in-model rows");
        assert!(report.detected > 0, "campaign detected nothing");
    }

    #[test]
    fn journaled_campaign_matches_direct_and_resumes_identically() {
        let mut path = std::env::temp_dir();
        path.push(format!("ktudc-chaos-journal-test-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let cells = small_cells();
        let plans = vec![
            ChaosPlan::network("delay-spikes", FaultPlan::none().delay_spikes(40, 8, 5)),
            ChaosPlan::network("duplication", FaultPlan::none().duplicate(0.25)),
        ];
        let seeds = [7, 8];
        let direct = run_chaos_campaign(&cells, &plans, &seeds);

        let (fresh, s1) = run_chaos_campaign_journaled(
            &cells,
            &plans,
            &seeds,
            &path,
            ktudc_store::SyncPolicy::Never,
        )
        .unwrap();
        assert_eq!(fresh.digest, direct.digest, "fresh journaled run drifted");
        assert!(!s1.resumed);
        assert_eq!(s1.computed_trials, s1.total_trials);

        // Simulate a kill mid-campaign: tear bytes off the journal tail,
        // losing the last trial(s); the resume must recompute exactly
        // those and land on the identical digest.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - bytes.len() / 4]).unwrap();
        let (resumed, s2) = run_chaos_campaign_journaled(
            &cells,
            &plans,
            &seeds,
            &path,
            ktudc_store::SyncPolicy::Never,
        )
        .unwrap();
        assert_eq!(resumed.digest, direct.digest, "resumed run drifted");
        assert!(s2.resumed);
        assert!(s2.resumed_trials > 0, "nothing was replayed");
        assert!(s2.computed_trials > 0, "nothing was recomputed");

        // A different campaign must be refused, not merged.
        let err = run_chaos_campaign_journaled(
            &cells,
            &plans,
            &[99],
            &path,
            ktudc_store::SyncPolicy::Never,
        )
        .unwrap_err();
        assert!(err.contains("different campaign"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_report_is_deterministic() {
        let cells = small_cells();
        let plans = vec![
            ChaosPlan::network("delay-spikes", FaultPlan::none().delay_spikes(40, 8, 5)),
            ChaosPlan::network("duplication", FaultPlan::none().duplicate(0.25)),
        ];
        let a = run_chaos_campaign(&cells, &plans, &[7, 8]);
        let b = run_chaos_campaign(&cells, &plans, &[7, 8]);
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            serde_json::to_string(&a.rows).unwrap(),
            serde_json::to_string(&b.rows).unwrap()
        );
    }
}
