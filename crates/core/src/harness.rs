//! The achievability harness behind the UDC rows of Table 1.
//!
//! A *cell* of the table fixes a channel regime, a failure-bound regime,
//! and a failure-detector class; the harness runs the designated protocol
//! over many seeded trials with randomized crash schedules and tallies the
//! verdicts. Positive cells should come out all-satisfied; negative cells
//! produce *permanent* violations (spec violated while the whole system is
//! quiescent — nothing in flight, nobody retransmitting) or livelocks
//! (unsatisfied and never quiescent: some process is stuck waiting forever,
//! as when a weak detector never releases a waiter).

use crate::protocols::generalized::GeneralizedUdc;
use crate::protocols::reliable::ReliableUdc;
use crate::protocols::strong_fd::StrongFdUdc;
use crate::spec::{check_udc, Verdict};
use ktudc_fd::{
    CyclingSubsetOracle, DetectorKind, ImpermanentStrongOracle, PerfectOracle, StrongOracle,
    TUsefulOracle, WeakOracle,
};
use ktudc_model::budget::{AbortReason, Budget};
use ktudc_model::Time;
use ktudc_sim::{
    run_detected, run_protocol, ChannelKind, CrashPlan, FdOracle, NullOracle, SimConfig, Workload,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Failure-detector classes selectable by the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FdChoice {
    /// No detector at all.
    None,
    /// The oracle-free cycling `(S, 0)` detector (only valid for
    /// `t < n/2`) — still "no FD" in the paper's accounting.
    Cycling,
    /// A t-useful generalized detector.
    TUseful,
    /// A weak detector (weak completeness + weak accuracy), *without* the
    /// Proposition 2.1 conversion.
    Weak,
    /// An impermanent-strong detector.
    ImpermanentStrong,
    /// A strong detector.
    Strong,
    /// A perfect detector.
    Perfect,
    /// The *empirical* heartbeat-timeout detector of `ktudc-fd::impls`,
    /// run in the detector plane and fed by real message arrivals — its
    /// class is whatever `ktudc_fd::classify` finds for the regime, not a
    /// definition.
    Heartbeat,
    /// The empirical φ-accrual detector (adaptive timeout).
    PhiAccrual,
    /// The empirical counter-gossip detector (routed liveness).
    Gossip,
}

impl FdChoice {
    /// For the empirical (derived) detector choices, the `DetectorKind` to
    /// instantiate in the detector plane; `None` for oracle classes.
    #[must_use]
    pub fn empirical_kind(self) -> Option<DetectorKind> {
        match self {
            FdChoice::Heartbeat => Some(DetectorKind::Heartbeat),
            FdChoice::PhiAccrual => Some(DetectorKind::PhiAccrual),
            FdChoice::Gossip => Some(DetectorKind::Gossip),
            _ => None,
        }
    }
}

impl fmt::Display for FdChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FdChoice::None => "no FD",
            FdChoice::Cycling => "no FD (cycling (S,0))",
            FdChoice::TUseful => "t-useful",
            FdChoice::Weak => "weak",
            FdChoice::ImpermanentStrong => "imp-strong",
            FdChoice::Strong => "strong",
            FdChoice::Perfect => "perfect",
            FdChoice::Heartbeat => "heartbeat (derived)",
            FdChoice::PhiAccrual => "phi-accrual (derived)",
            FdChoice::Gossip => "gossip (derived)",
        };
        f.write_str(s)
    }
}

/// Protocols selectable by the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolChoice {
    /// Proposition 2.4 (send-then-do; correct only on reliable channels).
    Reliable,
    /// Proposition 3.1 (ack + latched-suspicion gating).
    StrongFd,
    /// Proposition 4.1 (generalized-report gating), with the cell's `t`.
    Generalized,
}

impl fmt::Display for ProtocolChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolChoice::Reliable => "Prop 2.4",
            ProtocolChoice::StrongFd => "Prop 3.1",
            ProtocolChoice::Generalized => "Prop 4.1",
        };
        f.write_str(s)
    }
}

/// One cell's experimental setup.
///
/// Serializes to a flat JSON object so it doubles as the `ktudc-serve` wire
/// schema for `cell` requests; the encoding is pinned by a unit test below
/// (any change to it is a wire-protocol break and must bump the serve
/// schema version).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// System size.
    pub n: usize,
    /// Failure bound `t` of the context (crash schedules draw at most `t`
    /// victims).
    pub t: usize,
    /// `None` for reliable channels, `Some(p)` for fair-lossy with drop
    /// probability `p`.
    pub drop_prob: Option<f64>,
    /// Failure-detector class.
    pub fd: FdChoice,
    /// Protocol under test.
    pub protocol: ProtocolChoice,
    /// Simulation horizon.
    pub horizon: Time,
    /// Number of seeded trials.
    pub trials: u64,
}

impl CellSpec {
    /// A cell with sensible defaults (horizon 800, 20 trials).
    #[must_use]
    pub fn new(
        n: usize,
        t: usize,
        drop_prob: Option<f64>,
        fd: FdChoice,
        protocol: ProtocolChoice,
    ) -> Self {
        CellSpec {
            n,
            t,
            drop_prob,
            fd,
            protocol,
            horizon: 800,
            trials: 20,
        }
    }

    /// Overrides the trial count.
    #[must_use]
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Overrides the horizon.
    #[must_use]
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = horizon;
        self
    }
}

/// Tallied outcome of a cell.
///
/// Round-trips through serde (the `ktudc-serve` `cell` response body);
/// encoding pinned alongside [`CellSpec`]'s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Trials whose run satisfied UDC (by the horizon).
    pub satisfied: u64,
    /// Trials violating UDC with the whole system quiescent — a certified
    /// permanent violation.
    pub violated_permanent: u64,
    /// Trials unsatisfied at the horizon while work was still pending
    /// (stalls/livelocks; in a negative cell these are processes waiting
    /// forever on a peer they cannot clear).
    pub unsatisfied_pending: u64,
    /// Mean messages sent per trial.
    pub mean_messages: f64,
}

impl CellOutcome {
    /// Total trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.satisfied + self.violated_permanent + self.unsatisfied_pending
    }

    /// Whether the cell achieved UDC on every trial.
    #[must_use]
    pub fn achieved(&self) -> bool {
        self.trials() > 0 && self.satisfied == self.trials()
    }
}

impl fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ok, {} permanent violations, {} stalls",
            self.satisfied,
            self.trials(),
            self.violated_permanent,
            self.unsatisfied_pending
        )
    }
}

/// Runs one cell: `spec.trials` seeded trials with randomized (≤ t) crash
/// schedules, tallying UDC verdicts. Trials are fully determined by their
/// seed and independent of one another, so they run in parallel (feature
/// `parallel`); the tally is identical either way.
///
/// # Panics
///
/// Panics on inconsistent specs (e.g. [`FdChoice::Cycling`] with
/// `t ≥ n/2`, which the trivial construction cannot serve).
#[must_use]
pub fn run_cell(spec: &CellSpec) -> CellOutcome {
    match run_cell_budgeted(spec, &Budget::unlimited()) {
        CellStatus::Done(outcome) => outcome,
        CellStatus::Aborted { .. } => unreachable!("an unlimited budget cannot abort"),
    }
}

/// Outcome of a budget-constrained cell evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum CellStatus {
    /// Every trial ran; the tally is complete.
    Done(CellOutcome),
    /// The budget tripped partway through the trial sweep.
    Aborted {
        /// Why the budget tripped.
        reason: AbortReason,
        /// Tally over the trials that did complete (may be empty).
        partial: CellOutcome,
        /// How many of `spec.trials` trials completed before the trip.
        trials_completed: u64,
    },
}

/// Like [`run_cell`], but polls `budget` once per trial and stops admitting
/// new trials once it trips. Trials already completed are tallied into the
/// `Aborted` partial, so a shed cell still reports what it learned.
///
/// Trials are horizon-bounded and short, so per-trial granularity keeps
/// cancellation latency to one trial's worth of work per parallel worker.
#[must_use]
pub fn run_cell_budgeted(spec: &CellSpec, budget: &Budget) -> CellStatus {
    let seeds: Vec<u64> = (0..spec.trials).collect();
    let trials = ktudc_par::par_map(seeds, |seed| {
        if budget.check().is_err() {
            None
        } else {
            Some(run_trial(spec, seed))
        }
    });
    let mut outcome = CellOutcome::default();
    let mut total_msgs: u64 = 0;
    let mut completed: u64 = 0;
    for trial in trials.into_iter().flatten() {
        completed += 1;
        total_msgs += trial.messages_sent;
        match trial.verdict {
            TrialVerdict::Satisfied => outcome.satisfied += 1,
            TrialVerdict::ViolatedPermanent => outcome.violated_permanent += 1,
            TrialVerdict::UnsatisfiedPending => outcome.unsatisfied_pending += 1,
        }
    }
    outcome.mean_messages = total_msgs as f64 / completed.max(1) as f64;
    match budget.tripped() {
        Some(reason) => CellStatus::Aborted {
            reason,
            partial: outcome,
            trials_completed: completed,
        },
        None => CellStatus::Done(outcome),
    }
}

enum TrialVerdict {
    Satisfied,
    ViolatedPermanent,
    UnsatisfiedPending,
}

struct TrialResult {
    messages_sent: u64,
    verdict: TrialVerdict,
}

fn run_trial(spec: &CellSpec, seed: u64) -> TrialResult {
    let channel = match spec.drop_prob {
        None => ChannelKind::reliable(),
        Some(p) => ChannelKind::fair_lossy(p),
    };
    let config = SimConfig::new(spec.n)
        .channel(channel)
        .crashes(CrashPlan::Random {
            max_failures: spec.t,
            latest: spec.horizon / 4,
        })
        .horizon(spec.horizon)
        .seed(seed);
    let workload = Workload::periodic(spec.n, 9, spec.horizon / 6);
    let out = if let Some(kind) = spec.fd.empirical_kind() {
        // Derived-detector path: no oracle. The detector runs in its own
        // message plane over the same channel regime, and its suspicion
        // reports land in the protocol's event stream exactly where the
        // oracle's would — the protocol cannot tell the difference.
        let detected = match spec.protocol {
            ProtocolChoice::Reliable => {
                run_detected(&config, |_| ReliableUdc::new(), |_| kind.build(), &workload)
            }
            ProtocolChoice::StrongFd => {
                run_detected(&config, |_| StrongFdUdc::new(), |_| kind.build(), &workload)
            }
            ProtocolChoice::Generalized => run_detected(
                &config,
                |_| GeneralizedUdc::new(spec.t),
                |_| kind.build(),
                &workload,
            ),
        };
        detected.sim
    } else {
        let mut oracle = make_oracle(spec);
        match spec.protocol {
            ProtocolChoice::Reliable => {
                run_protocol(&config, |_| ReliableUdc::new(), oracle.as_mut(), &workload)
            }
            ProtocolChoice::StrongFd => {
                run_protocol(&config, |_| StrongFdUdc::new(), oracle.as_mut(), &workload)
            }
            ProtocolChoice::Generalized => run_protocol(
                &config,
                |_| GeneralizedUdc::new(spec.t),
                oracle.as_mut(),
                &workload,
            ),
        }
    };
    let verdict = match check_udc(&out.run, &workload.actions()) {
        Verdict::Satisfied => TrialVerdict::Satisfied,
        Verdict::Violated(_) if out.quiescent => TrialVerdict::ViolatedPermanent,
        Verdict::Violated(_) => TrialVerdict::UnsatisfiedPending,
    };
    TrialResult {
        messages_sent: out.messages_sent,
        verdict,
    }
}

/// Oracle for the ground-truth FD classes. The empirical (derived) choices
/// have no oracle — `run_trial` routes them through `run_detected` instead,
/// so reaching here with one is a caller bug.
pub(crate) fn make_oracle(spec: &CellSpec) -> Box<dyn FdOracle> {
    match spec.fd {
        FdChoice::None => Box::new(NullOracle::new()),
        FdChoice::Cycling => Box::new(CyclingSubsetOracle::new(spec.n, spec.t)),
        FdChoice::TUseful => Box::new(TUsefulOracle::new(spec.t)),
        FdChoice::Weak => Box::new(WeakOracle { false_prob: 0.0 }),
        FdChoice::ImpermanentStrong => Box::new(ImpermanentStrongOracle::new()),
        FdChoice::Strong => Box::new(StrongOracle::new()),
        FdChoice::Perfect => Box::new(PerfectOracle::new()),
        FdChoice::Heartbeat | FdChoice::PhiAccrual | FdChoice::Gossip => {
            unreachable!("empirical detectors run in the detector plane, not as oracles")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_cell_reliable_no_fd() {
        let spec = CellSpec::new(4, 3, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(6)
            .horizon(500);
        let out = run_cell(&spec);
        assert!(out.achieved(), "{out}");
    }

    #[test]
    fn positive_cell_lossy_strong_fd_unbounded_t() {
        let spec = CellSpec::new(4, 3, Some(0.3), FdChoice::Strong, ProtocolChoice::StrongFd)
            .trials(6)
            .horizon(900);
        let out = run_cell(&spec);
        assert!(out.achieved(), "{out}");
    }

    #[test]
    fn positive_cell_lossy_cycling_low_t() {
        let spec = CellSpec::new(
            5,
            2,
            Some(0.3),
            FdChoice::Cycling,
            ProtocolChoice::Generalized,
        )
        .trials(6)
        .horizon(900);
        let out = run_cell(&spec);
        assert!(out.achieved(), "{out}");
    }

    /// Table 1's "strong FD" rows, with the oracle replaced by detectors
    /// that *earn* their suspicions from message arrivals. The asserted
    /// cells are exactly those where `ktudc_fd::classify` grants the
    /// detector (at least) the strong class for the regime: heartbeat on
    /// clean channels; φ-accrual and gossip even at 30% loss. Heartbeat on
    /// lossy channels is deliberately *not* asserted — classification
    /// demotes it there (false suspicions), so Table 1 makes no promise.
    #[test]
    fn positive_cells_with_derived_detectors() {
        for (fd, drop_prob) in [
            (FdChoice::Heartbeat, None),
            (FdChoice::PhiAccrual, Some(0.3)),
            (FdChoice::Gossip, Some(0.3)),
        ] {
            let spec = CellSpec::new(4, 3, drop_prob, fd, ProtocolChoice::StrongFd)
                .trials(6)
                .horizon(900);
            let out = run_cell(&spec);
            assert!(out.achieved(), "{fd}: {out}");
        }
    }

    #[test]
    fn negative_cell_lossy_no_fd_high_t() {
        // Unreliable channels + up to n−1 failures + no detector: the best
        // no-FD protocol (Prop 2.4's) suffers certified permanent
        // violations.
        let spec = CellSpec::new(4, 3, Some(0.6), FdChoice::None, ProtocolChoice::Reliable)
            .trials(25)
            .horizon(600);
        let out = run_cell(&spec);
        assert!(!out.achieved(), "{out}");
        assert!(
            out.violated_permanent > 0,
            "expected certified permanent violations: {out}"
        );
    }

    #[test]
    fn negative_cell_weak_fd_stalls() {
        // An unconverted weak detector leaves non-monitor processes waiting
        // forever on crashed peers: stalls, not completions.
        let spec = CellSpec::new(4, 3, Some(0.3), FdChoice::Weak, ProtocolChoice::StrongFd)
            .trials(20)
            .horizon(700);
        let out = run_cell(&spec);
        assert!(!out.achieved(), "{out}");
        assert!(out.unsatisfied_pending > 0, "{out}");
    }

    #[test]
    fn budgeted_cell_with_headroom_matches_unbudgeted() {
        let spec = CellSpec::new(4, 3, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(6)
            .horizon(500);
        let plain = run_cell(&spec);
        let budget = Budget::unlimited();
        match run_cell_budgeted(&spec, &budget) {
            CellStatus::Done(outcome) => assert_eq!(outcome, plain),
            CellStatus::Aborted { reason, .. } => panic!("unexpected abort: {reason}"),
        }
        assert_eq!(budget.steps(), spec.trials, "one budget poll per trial");
    }

    #[test]
    fn step_capped_cell_aborts_with_partial_tally() {
        let spec = CellSpec::new(4, 3, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(8)
            .horizon(500);
        let budget = Budget::unlimited().with_max_steps(3);
        match run_cell_budgeted(&spec, &budget) {
            CellStatus::Aborted {
                reason,
                partial,
                trials_completed,
            } => {
                assert_eq!(reason, AbortReason::StepLimit);
                assert!(trials_completed >= 1, "some trials run before the trip");
                assert!(trials_completed < spec.trials, "the trip sheds trials");
                assert_eq!(partial.trials(), trials_completed);
            }
            CellStatus::Done(outcome) => panic!("a 3-step cap must trip: {outcome}"),
        }
    }

    #[test]
    fn cancelled_cell_runs_no_trials() {
        let spec = CellSpec::new(4, 3, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(6)
            .horizon(500);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        match run_cell_budgeted(&spec, &budget) {
            CellStatus::Aborted {
                reason,
                partial,
                trials_completed,
            } => {
                assert_eq!(reason, AbortReason::Cancelled);
                assert_eq!(trials_completed, 0);
                assert_eq!(partial.trials(), 0);
            }
            CellStatus::Done(outcome) => panic!("a cancelled budget must abort: {outcome}"),
        }
    }

    #[test]
    fn wire_schema_is_pinned() {
        // These exact strings are the serve wire schema payloads (the
        // envelope is versioned separately, see `SCHEMA_VERSION`).
        // If this test fails, the encoding changed: bump
        // `ktudc_serve::SCHEMA_VERSION` and repin deliberately — never
        // silently.
        let spec = CellSpec::new(
            4,
            2,
            Some(0.25),
            FdChoice::TUseful,
            ProtocolChoice::Generalized,
        )
        .trials(6)
        .horizon(300);
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(
            json,
            r#"{"n":4,"t":2,"drop_prob":0.25,"fd":"TUseful","protocol":"Generalized","horizon":300,"trials":6}"#
        );
        assert_eq!(serde_json::from_str::<CellSpec>(&json).unwrap(), spec);

        // `None` channels encode as an explicit null, and every FD /
        // protocol variant is a bare string tag.
        let reliable = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable);
        let json = serde_json::to_string(&reliable).unwrap();
        assert!(json.contains(r#""drop_prob":null"#), "{json}");
        assert!(json.contains(r#""fd":"None""#), "{json}");
        assert_eq!(serde_json::from_str::<CellSpec>(&json).unwrap(), reliable);

        // The derived-detector choices are wire-additive bare tags too.
        let derived = CellSpec::new(
            4,
            3,
            Some(0.3),
            FdChoice::PhiAccrual,
            ProtocolChoice::StrongFd,
        );
        let json = serde_json::to_string(&derived).unwrap();
        assert!(json.contains(r#""fd":"PhiAccrual""#), "{json}");
        assert_eq!(serde_json::from_str::<CellSpec>(&json).unwrap(), derived);
        for fd in [FdChoice::Heartbeat, FdChoice::Gossip] {
            let json = serde_json::to_string(&fd).unwrap();
            assert_eq!(serde_json::from_str::<FdChoice>(&json).unwrap(), fd);
        }

        let outcome = CellOutcome {
            satisfied: 5,
            violated_permanent: 1,
            unsatisfied_pending: 0,
            mean_messages: 12.5,
        };
        let json = serde_json::to_string(&outcome).unwrap();
        assert_eq!(
            json,
            r#"{"satisfied":5,"violated_permanent":1,"unsatisfied_pending":0,"mean_messages":12.5}"#
        );
        assert_eq!(serde_json::from_str::<CellOutcome>(&json).unwrap(), outcome);
    }

    #[test]
    fn outcome_accounting() {
        let o = CellOutcome {
            satisfied: 3,
            violated_permanent: 1,
            unsatisfied_pending: 2,
            mean_messages: 10.0,
        };
        assert_eq!(o.trials(), 6);
        assert!(!o.achieved());
        assert!(o.to_string().contains("3/6 ok"));
        assert_eq!(FdChoice::Cycling.to_string(), "no FD (cycling (S,0))");
        assert_eq!(ProtocolChoice::StrongFd.to_string(), "Prop 3.1");
    }
}
