//! Uniform and non-uniform distributed coordination specifications (§2.4).
//!
//! UDC of an action `α ∈ A_p` holds in a system when three conditions are
//! valid:
//!
//! * **DC1** `init_p(α) ⇒ ✸(do_p(α) ∨ crash(p))` — the initiator itself
//!   eventually performs the action or crashes;
//! * **DC2** `⋀_{q1,q2} (do_q1(α) ⇒ ✸(do_q2(α) ∨ crash(q2)))` — if
//!   *anyone* (correct or not!) performs `α`, every process eventually
//!   performs it or crashes; this is the *uniformity* that distinguishes
//!   UDC from consensus-style agreement;
//! * **DC3** `⋀_q (do_q(α) ⇒ init_p(α))` — nothing is performed that was
//!   never initiated.
//!
//! nUDC replaces DC2 by **DC2′**, which additionally excuses coordination
//! when the performer `q1` itself crashes.
//!
//! Two evaluation routes are provided: [`check_udc`] / [`check_nudc`]
//! evaluate a single finished run under the finite-horizon reading of `✸`
//! ("by the horizon"), returning witness-carrying verdicts;
//! [`udc_formula`] / [`nudc_formula`] build the conditions as
//! epistemic-temporal formulas so `ktudc-epistemic` can check them as
//! validities over exhaustively explored systems.

use ktudc_epistemic::Formula;
use ktudc_model::{ActionId, ProcessId, Run, Time};
use std::fmt;

/// A specification violation with its witnessing configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecViolation {
    /// DC1: the initiator initiated but neither performed nor crashed by
    /// the horizon.
    Dc1 {
        /// The orphaned action.
        action: ActionId,
    },
    /// DC2 (or DC2′): `performer` performed but `missing` neither performed
    /// nor crashed by the horizon (and, for DC2′, the performer stayed
    /// correct).
    Dc2 {
        /// The action.
        action: ActionId,
        /// A process that performed `α`.
        performer: ProcessId,
        /// A process that did not (and did not crash).
        missing: ProcessId,
    },
    /// DC3: `performer` performed an action that was never initiated.
    Dc3 {
        /// The action.
        action: ActionId,
        /// The offending performer.
        performer: ProcessId,
        /// When it performed.
        time: Time,
    },
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecViolation::Dc1 { action } => {
                write!(
                    f,
                    "DC1: {action} initiated but initiator neither did it nor crashed"
                )
            }
            SpecViolation::Dc2 {
                action,
                performer,
                missing,
            } => write!(
                f,
                "DC2: {performer} performed {action} but {missing} neither performed it nor crashed"
            ),
            SpecViolation::Dc3 {
                action,
                performer,
                time,
            } => write!(
                f,
                "DC3: {performer} performed uninitiated {action} at tick {time}"
            ),
        }
    }
}

impl std::error::Error for SpecViolation {}

/// The outcome of checking a coordination spec on a finished run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All conditions met (liveness met *by the horizon*).
    Satisfied,
    /// A condition failed; DC3 failures are true safety violations, DC1/DC2
    /// failures are horizon-relative (combine with quiescence information
    /// to certify a genuine violation — see
    /// [`harness`](crate::harness)).
    Violated(SpecViolation),
}

impl Verdict {
    /// `true` for [`Verdict::Satisfied`].
    #[must_use]
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Verdict::Satisfied)
    }
}

/// Checks UDC (DC1 ∧ DC2 ∧ DC3) for every listed action on one run, under
/// the finite-horizon reading of `✸`.
#[must_use]
pub fn check_udc<M>(run: &Run<M>, actions: &[ActionId]) -> Verdict {
    check(run, actions, true)
}

/// Checks nUDC (DC1 ∧ DC2′ ∧ DC3) for every listed action on one run.
#[must_use]
pub fn check_nudc<M>(run: &Run<M>, actions: &[ActionId]) -> Verdict {
    check(run, actions, false)
}

fn check<M>(run: &Run<M>, actions: &[ActionId], uniform: bool) -> Verdict {
    let horizon = run.horizon();
    let n = run.n();
    for &action in actions {
        let initiator = action.initiator();
        let initiated = run.view_at(initiator, horizon).initiated(action);
        // DC3 first (safety): any do without init.
        for q in ProcessId::all(n) {
            if let Some((t, _)) = run.timed_history(q).find(|(_, e)| {
                e.action() == Some(action) && matches!(e, ktudc_model::Event::Do { .. })
            }) {
                if !initiated {
                    return Verdict::Violated(SpecViolation::Dc3 {
                        action,
                        performer: q,
                        time: t,
                    });
                }
            }
        }
        // DC1.
        if initiated {
            let view = run.view_at(initiator, horizon);
            if !view.did(action) && !view.crashed() {
                return Verdict::Violated(SpecViolation::Dc1 { action });
            }
        }
        // DC2 / DC2′.
        let performers: Vec<ProcessId> = ProcessId::all(n)
            .filter(|&q| run.view_at(q, horizon).did(action))
            .collect();
        for &q1 in &performers {
            if !uniform && run.crash_time(q1).is_some() {
                // DC2′ excuses coordination when the performer crashed.
                continue;
            }
            for q2 in ProcessId::all(n) {
                let v2 = run.view_at(q2, horizon);
                if !v2.did(action) && !v2.crashed() {
                    return Verdict::Violated(SpecViolation::Dc2 {
                        action,
                        performer: q1,
                        missing: q2,
                    });
                }
            }
        }
    }
    Verdict::Satisfied
}

/// DC1 as a formula: `init_p(α) ⇒ ✸(do_p(α) ∨ crash(p))`.
#[must_use]
pub fn dc1_formula<M>(action: ActionId) -> Formula<M> {
    let p = action.initiator();
    Formula::implies(
        Formula::initiated(action),
        Formula::eventually(Formula::or(vec![
            Formula::did(p, action),
            Formula::crashed(p),
        ])),
    )
}

/// DC2 as a formula: `⋀_{q1,q2} (do_q1(α) ⇒ ✸(do_q2(α) ∨ crash(q2)))`.
#[must_use]
pub fn dc2_formula<M>(n: usize, action: ActionId) -> Formula<M> {
    let mut conjuncts = Vec::new();
    for q1 in ProcessId::all(n) {
        for q2 in ProcessId::all(n) {
            conjuncts.push(Formula::implies(
                Formula::did(q1, action),
                Formula::eventually(Formula::or(vec![
                    Formula::did(q2, action),
                    Formula::crashed(q2),
                ])),
            ));
        }
    }
    Formula::and(conjuncts)
}

/// DC2′ as a formula (nUDC): the consequent may also be discharged by the
/// *performer* crashing.
#[must_use]
pub fn dc2_prime_formula<M>(n: usize, action: ActionId) -> Formula<M> {
    let mut conjuncts = Vec::new();
    for q1 in ProcessId::all(n) {
        for q2 in ProcessId::all(n) {
            conjuncts.push(Formula::implies(
                Formula::did(q1, action),
                Formula::eventually(Formula::or(vec![
                    Formula::did(q2, action),
                    Formula::crashed(q2),
                    Formula::crashed(q1),
                ])),
            ));
        }
    }
    Formula::and(conjuncts)
}

/// DC3 as a formula: `⋀_q (do_q(α) ⇒ init_p(α))`.
#[must_use]
pub fn dc3_formula<M>(n: usize, action: ActionId) -> Formula<M> {
    Formula::and(
        ProcessId::all(n)
            .map(|q| Formula::implies(Formula::did(q, action), Formula::initiated(action)))
            .collect(),
    )
}

/// The full UDC specification DC1 ∧ DC2 ∧ DC3 as one formula, for validity
/// checking over explored systems.
#[must_use]
pub fn udc_formula<M>(n: usize, action: ActionId) -> Formula<M> {
    Formula::and(vec![
        dc1_formula(action),
        dc2_formula(n, action),
        dc3_formula(n, action),
    ])
}

/// The full nUDC specification DC1 ∧ DC2′ ∧ DC3 as one formula.
#[must_use]
pub fn nudc_formula<M>(n: usize, action: ActionId) -> Formula<M> {
    Formula::and(vec![
        dc1_formula(action),
        dc2_prime_formula(n, action),
        dc3_formula(n, action),
    ])
}

/// **Proposition 3.5** as a formula, for one observer `p` and one action
/// `α` (the paper conjoins over all `p, p′, α`):
///
/// ```text
/// K_p(init(α) ∧ ⋀_q ✸(K_q init(α) ∨ crash(q)))
///   ⇒ K_p(⋁_q ✷¬crash(q) ⇒ ⋁_q (K_q init(α) ∧ ✷¬crash(q)))
/// ```
///
/// "If `p` knows the action was initiated and that everyone will either
/// learn of it or crash, then `p` knows that — should any process survive
/// forever — some *forever-correct* process knows of the initiation."
/// This is the epistemic pivot of the Theorem 3.6 proof. Note the
/// finite-horizon reading of `✷¬crash(q)` ("`q` does not crash up to the
/// horizon") makes validity conservative: the paper's infinite-run
/// statement is approximated from the safe side.
#[must_use]
pub fn prop_3_5_formula<M: Clone>(n: usize, p: ProcessId, action: ActionId) -> Formula<M> {
    let premise = Formula::knows(
        p,
        Formula::and(
            std::iter::once(Formula::initiated(action))
                .chain(ProcessId::all(n).map(|q| {
                    Formula::eventually(Formula::or(vec![
                        Formula::knows(q, Formula::initiated(action)),
                        Formula::crashed(q),
                    ]))
                }))
                .collect(),
        ),
    );
    let someone_survives = Formula::or(
        ProcessId::all(n)
            .map(|q| Formula::always(Formula::not(Formula::crashed(q))))
            .collect(),
    );
    let informed_survivor = Formula::or(
        ProcessId::all(n)
            .map(|q| {
                Formula::and(vec![
                    Formula::knows(q, Formula::initiated(action)),
                    Formula::always(Formula::not(Formula::crashed(q))),
                ])
            })
            .collect(),
    );
    let conclusion = Formula::knows(p, Formula::implies(someone_survives, informed_survivor));
    Formula::implies(premise, conclusion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_epistemic::ModelChecker;
    use ktudc_model::{Event, RunBuilder, System};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn alpha() -> ActionId {
        ActionId::new(p(0), 0)
    }

    #[test]
    fn satisfied_when_everyone_performs() {
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        b.append(p(1), 3, Event::Do { action: alpha() }).unwrap();
        b.append(p(2), 4, Event::Do { action: alpha() }).unwrap();
        let run = b.finish(5);
        assert_eq!(check_udc(&run, &[alpha()]), Verdict::Satisfied);
        assert_eq!(check_nudc(&run, &[alpha()]), Verdict::Satisfied);
    }

    #[test]
    fn satisfied_when_missing_process_crashed() {
        let mut b = RunBuilder::<u8>::new(3);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(2), 1, Event::Crash).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        b.append(p(1), 3, Event::Do { action: alpha() }).unwrap();
        let run = b.finish(5);
        assert_eq!(check_udc(&run, &[alpha()]), Verdict::Satisfied);
    }

    #[test]
    fn dc1_violation() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        let run = b.finish(5);
        assert_eq!(
            check_udc(&run, &[alpha()]),
            Verdict::Violated(SpecViolation::Dc1 { action: alpha() })
        );
    }

    #[test]
    fn dc2_violation_uniformity() {
        // p0 performs then crashes; p1 never performs. UDC violated — and
        // this is exactly the case nUDC (DC2′) forgives.
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        b.append(p(0), 3, Event::Crash).unwrap();
        let run = b.finish(8);
        match check_udc(&run, &[alpha()]) {
            Verdict::Violated(SpecViolation::Dc2 {
                performer, missing, ..
            }) => {
                assert_eq!(performer, p(0));
                assert_eq!(missing, p(1));
            }
            other => panic!("expected DC2 violation, got {other:?}"),
        }
        assert_eq!(check_nudc(&run, &[alpha()]), Verdict::Satisfied);
    }

    #[test]
    fn nudc_still_binds_correct_performers() {
        // A *correct* performer obliges everyone even under nUDC.
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        let run = b.finish(8);
        assert!(matches!(
            check_nudc(&run, &[alpha()]),
            Verdict::Violated(SpecViolation::Dc2 { .. })
        ));
    }

    #[test]
    fn dc3_violation_is_flagged() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(1), 2, Event::Do { action: alpha() }).unwrap();
        let run = b.finish(5);
        assert!(matches!(
            check_udc(&run, &[alpha()]),
            Verdict::Violated(SpecViolation::Dc3 {
                performer,
                ..
            }) if performer == p(1)
        ));
    }

    #[test]
    fn uninitiated_action_is_vacuously_satisfied() {
        let run = RunBuilder::<u8>::new(2).finish(5);
        assert_eq!(check_udc(&run, &[alpha()]), Verdict::Satisfied);
    }

    #[test]
    fn formulas_agree_with_run_checker() {
        // Build a 2-run system: one satisfying, one DC2-violating, and
        // check the formula verdicts match the run checker's.
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        b.append(p(1), 3, Event::Do { action: alpha() }).unwrap();
        let good = b.finish(4);
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        b.append(p(0), 3, Event::Crash).unwrap();
        let bad = b.finish(4);
        assert!(check_udc(&good, &[alpha()]).is_satisfied());
        assert!(!check_udc(&bad, &[alpha()]).is_satisfied());

        let sys = System::new(vec![good, bad]);
        let mut mc = ModelChecker::new(&sys);
        let f = udc_formula::<u8>(2, alpha());
        let err = mc.valid(&f).unwrap_err();
        assert_eq!(err.run, 1, "the violating point must lie in the bad run");
        // The good run satisfies the formula at all its points.
        let g = udc_formula::<u8>(2, alpha());
        for m in 0..=4 {
            assert!(mc.eval(&g, ktudc_model::Point::new(0, m)));
        }
    }

    #[test]
    fn nudc_formula_forgives_crashed_performer() {
        let mut b = RunBuilder::<u8>::new(2);
        b.append(p(0), 1, Event::Init { action: alpha() }).unwrap();
        b.append(p(0), 2, Event::Do { action: alpha() }).unwrap();
        b.append(p(0), 3, Event::Crash).unwrap();
        let sys = System::new(vec![b.finish(4)]);
        let mut mc = ModelChecker::new(&sys);
        mc.valid(&nudc_formula::<u8>(2, alpha())).unwrap();
        assert!(mc.valid(&udc_formula::<u8>(2, alpha())).is_err());
    }

    #[test]
    fn violation_display() {
        let v = SpecViolation::Dc2 {
            action: alpha(),
            performer: p(0),
            missing: p(1),
        };
        assert!(v.to_string().contains("p0 performed a0.0 but p1"));
    }
}
