//! The paper's primary contribution, executable: Uniform Distributed
//! Coordination specifications, the four coordination protocols of Halpern
//! & Ricciardi's constructive propositions, the knowledge-based `f`/`f′`
//! failure-detector simulation constructions of Theorems 3.6 and 4.3, and
//! the achievability harness behind Table 1.
//!
//! # Map from paper to module
//!
//! | Paper | Module |
//! |---|---|
//! | §2.4 UDC/nUDC (DC1–DC3, DC2′) | [`spec`] |
//! | Prop. 2.3 — nUDC, fair channels, no FD | [`protocols::nudc`] |
//! | Prop. 2.4 — UDC, reliable channels, no FD | [`protocols::reliable`] |
//! | Prop. 3.1 — UDC, fair channels, strong FD | [`protocols::strong_fd`] |
//! | Prop. 4.1 — UDC, ≤t failures, t-useful FD | [`protocols::generalized`] |
//! | Thm. 3.6 — UDC ⇒ simulable perfect FD (`f`, P1–P3) | [`simulate`] |
//! | Thm. 4.3 — UDC ⇒ simulable t-useful FD (`f′`, P3′) | [`simulate`] |
//! | Table 1 UDC rows | [`harness`] |
//! | §5 — URB ≅ UDC (broadcast ↦ init, deliver ↦ do) | [`urb`] |
//!
//! The protocols implement [`Protocol`](ktudc_sim::Protocol) over the shared
//! message type [`protocols::CoordMsg`] and run inside the `ktudc-sim`
//! scheduler; the specifications are checked on the produced runs, and —
//! on exhaustively explored systems — as epistemic-temporal validities via
//! [`spec::udc_formula`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod harness;
pub mod protocols;
pub mod simulate;
pub mod spec;
pub mod urb;

pub use chaos::{
    run_chaos_campaign, run_chaos_campaign_journaled, ChaosPlan, ChaosReport, ChaosResumeStats,
    ChaosRow, PlanClass, RowOutcome,
};
pub use protocols::CoordMsg;
pub use spec::{check_nudc, check_udc, SpecViolation, Verdict};
