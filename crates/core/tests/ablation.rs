//! Ablation tests for the design choices DESIGN.md calls out: the
//! retransmission period, the latched-suspicion discipline, the send-
//! before-do ordering, and horizon sensitivity of the verdicts.

use ktudc_core::protocols::reliable::ReliableUdc;
use ktudc_core::protocols::strong_fd::StrongFdUdc;
use ktudc_core::spec::{check_udc, Verdict};
use ktudc_fd::{PerfectOracle, StrongOracle};
use ktudc_model::{Event, ProcessId, Time};
use ktudc_sim::{run_protocol, ChannelKind, CrashPlan, SimConfig, Workload};

fn lossy(seed: u64, horizon: Time) -> SimConfig {
    SimConfig::new(4)
        .channel(ChannelKind::fair_lossy(0.4))
        .crashes(CrashPlan::at(&[(1, 10)]))
        .horizon(horizon)
        .seed(seed)
}

/// Ablation: retransmission period. Faster retransmission trades messages
/// for latency; both extremes still attain UDC (fairness only needs
/// unbounded retries), but the message counts must differ measurably.
#[test]
fn retransmission_period_trades_messages_for_latency() {
    let w = Workload::single(0, 2);
    let fast = run_protocol(
        &lossy(5, 900),
        |_| StrongFdUdc::with_period(2),
        &mut StrongOracle::new(),
        &w,
    );
    let slow = run_protocol(
        &lossy(5, 900),
        |_| StrongFdUdc::with_period(12),
        &mut StrongOracle::new(),
        &w,
    );
    assert_eq!(check_udc(&fast.run, &w.actions()), Verdict::Satisfied);
    assert_eq!(check_udc(&slow.run, &w.actions()), Verdict::Satisfied);
    assert!(
        fast.messages_sent > slow.messages_sent,
        "period 2 sent {} vs period 12 sent {}",
        fast.messages_sent,
        slow.messages_sent
    );
}

/// Ablation: the send-before-do ordering of Proposition 2.4 is load-
/// bearing. A do-before-send variant performs the action with nothing in
/// the channels, so the initiator crashing right after its `do` strands
/// the action *even on reliable channels*.
#[test]
fn do_before_send_breaks_uniformity_even_on_reliable_channels() {
    use ktudc_core::CoordMsg;
    use ktudc_sim::{ProtoAction, Protocol};
    use std::collections::{BTreeSet, VecDeque};

    /// Deliberately wrong variant: performs first, then informs.
    #[derive(Clone, Debug)]
    struct DoFirst {
        me: ProcessId,
        n: usize,
        entered: BTreeSet<ktudc_model::ActionId>,
        plan: VecDeque<ProtoAction<CoordMsg>>,
    }
    impl Protocol<CoordMsg> for DoFirst {
        fn start(&mut self, me: ProcessId, n: usize) {
            self.me = me;
            self.n = n;
        }
        fn observe(&mut self, _t: Time, e: &Event<CoordMsg>) {
            let action = match e {
                Event::Init { action } => Some(*action),
                Event::Recv {
                    msg: CoordMsg::Alpha(a),
                    ..
                } => Some(*a),
                _ => None,
            };
            if let Some(a) = action {
                if self.entered.insert(a) {
                    self.plan.push_back(ProtoAction::Do(a)); // WRONG ORDER
                    for q in ProcessId::all(self.n) {
                        if q != self.me {
                            self.plan.push_back(ProtoAction::Send {
                                to: q,
                                msg: CoordMsg::Alpha(a),
                            });
                        }
                    }
                }
            }
        }
        fn next_action(&mut self, _t: Time) -> Option<ProtoAction<CoordMsg>> {
            self.plan.pop_front()
        }
        fn quiescent(&self) -> bool {
            self.plan.is_empty()
        }
    }

    let w = Workload::single(0, 1);
    // Crash the initiator right after its first event slot: the `do` has
    // happened (tick 2), the informs have not.
    let config = SimConfig::new(3)
        .channel(ChannelKind::reliable())
        .crashes(CrashPlan::at(&[(0, 3)]))
        .horizon(300)
        .seed(0);
    let wrong = run_protocol(
        &config,
        |_| DoFirst {
            me: ProcessId::new(0),
            n: 0,
            entered: BTreeSet::new(),
            plan: VecDeque::new(),
        },
        &mut ktudc_sim::NullOracle::new(),
        &w,
    );
    assert!(
        !check_udc(&wrong.run, &w.actions()).is_satisfied(),
        "do-before-send must strand the action"
    );
    assert!(wrong.quiescent, "violation is permanent, not a stall");
    // The correct ordering survives the identical schedule.
    let right = run_protocol(
        &config,
        |_| ReliableUdc::new(),
        &mut ktudc_sim::NullOracle::new(),
        &w,
    );
    assert_eq!(check_udc(&right.run, &w.actions()), Verdict::Satisfied);
}

/// Ablation: horizon sensitivity. The same configuration judged at an
/// inadequate horizon is *unsatisfied-but-pending*, never a certified
/// violation — the three-way verdict protects against false negatives.
#[test]
fn short_horizons_stall_but_do_not_falsely_certify() {
    let w = Workload::single(0, 2);
    let short = run_protocol(
        &lossy(3, 12),
        |_| StrongFdUdc::new(),
        &mut PerfectOracle::new(),
        &w,
    );
    assert!(!check_udc(&short.run, &w.actions()).is_satisfied());
    assert!(
        !short.quiescent,
        "work is pending, so this is a stall, not a certified violation"
    );
    let long = run_protocol(
        &lossy(3, 900),
        |_| StrongFdUdc::new(),
        &mut PerfectOracle::new(),
        &w,
    );
    assert_eq!(check_udc(&long.run, &w.actions()), Verdict::Satisfied);
}

/// Ablation: FD polling period. Rarer polling delays crash *discovery*
/// (deterministically: the first report cannot precede the first poll),
/// while UDC correctness is unaffected at either extreme. Completion
/// latency itself is scheduler-noisy, so the assertion targets discovery.
#[test]
fn fd_polling_period_affects_discovery_not_correctness() {
    let w = Workload::single(0, 2);
    let first_report = |fd_period: Time| {
        let config = lossy(8, 1200).fd_period(fd_period);
        let out = run_protocol(
            &config,
            |_| StrongFdUdc::new(),
            &mut PerfectOracle::new(),
            &w,
        );
        assert_eq!(
            check_udc(&out.run, &w.actions()),
            Verdict::Satisfied,
            "period {fd_period}"
        );
        // Earliest failure-detector report anywhere in the run.
        ProcessId::all(4)
            .filter_map(|p| {
                out.run
                    .timed_history(p)
                    .find(|(_, e)| e.is_suspect())
                    .map(|(t, _)| t)
            })
            .min()
            .expect("a perfect oracle polled periodically must report")
    };
    let quick = first_report(2);
    let sluggish = first_report(40);
    assert!(
        sluggish > quick,
        "rarer polling must delay the first report ({sluggish} vs {quick})"
    );
}
