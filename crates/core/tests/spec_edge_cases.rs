//! Edge cases of the UDC/nUDC specification checkers: verdict precedence,
//! multi-action interplay, vacuous cases, and agreement between the
//! run-level checkers and the formula-level semantics on adversarial
//! hand-built runs.

use ktudc_core::spec::{check_nudc, check_udc, nudc_formula, udc_formula, SpecViolation, Verdict};
use ktudc_epistemic::ModelChecker;
use ktudc_model::{ActionId, Event, ProcessId, Run, RunBuilder, System};

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn a(owner: usize, seq: u32) -> ActionId {
    ActionId::new(p(owner), seq)
}

#[test]
fn dc3_is_safety_and_reported_per_action() {
    // An uninitiated do of β AND an unfinished initiation of α. Verdicts
    // are per-action in list order, with DC3 (safety) first within each
    // action: asking about β first must surface the DC3 violation.
    let mut b = RunBuilder::<u8>::new(2);
    b.append(p(0), 1, Event::Init { action: a(0, 0) }).unwrap();
    b.append(p(1), 2, Event::Do { action: a(0, 1) }).unwrap();
    let run = b.finish(4);
    assert!(matches!(
        check_udc(&run, &[a(0, 1), a(0, 0)]),
        Verdict::Violated(SpecViolation::Dc3 { .. })
    ));
    // Asking about α first surfaces its DC1 stall instead.
    assert!(matches!(
        check_udc(&run, &[a(0, 0), a(0, 1)]),
        Verdict::Violated(SpecViolation::Dc1 { .. })
    ));
}

#[test]
fn independent_actions_are_judged_independently() {
    // α completes everywhere, β is stranded: the verdict must name β.
    let mut b = RunBuilder::<u8>::new(2);
    b.append(p(0), 1, Event::Init { action: a(0, 0) }).unwrap();
    b.append(p(0), 2, Event::Do { action: a(0, 0) }).unwrap();
    b.append(p(1), 3, Event::Do { action: a(0, 0) }).unwrap();
    b.append(p(1), 4, Event::Init { action: a(1, 0) }).unwrap();
    b.append(p(1), 5, Event::Do { action: a(1, 0) }).unwrap();
    let run = b.finish(9);
    assert_eq!(check_udc(&run, &[a(0, 0)]), Verdict::Satisfied);
    match check_udc(&run, &[a(0, 0), a(1, 0)]) {
        Verdict::Violated(SpecViolation::Dc2 { action, .. }) => assert_eq!(action, a(1, 0)),
        other => panic!("expected β's DC2, got {other:?}"),
    }
}

#[test]
fn performer_other_than_initiator_triggers_obligations() {
    // Only a *non-initiator* performs; DC2 binds everyone else all the
    // same (and DC1 is separately violated for the idle initiator).
    let mut b = RunBuilder::<u8>::new(3);
    b.append(p(0), 1, Event::Init { action: a(0, 0) }).unwrap();
    b.append(p(0), 2, Event::Send { to: p(1), msg: 1 }).unwrap();
    b.append(p(1), 3, Event::Recv { from: p(0), msg: 1 })
        .unwrap();
    b.append(p(1), 4, Event::Do { action: a(0, 0) }).unwrap();
    let run = b.finish(8);
    // p0 (initiator) and p2 both failed to perform; DC1 fires first.
    assert!(matches!(
        check_udc(&run, &[a(0, 0)]),
        Verdict::Violated(SpecViolation::Dc1 { .. })
    ));
}

#[test]
fn all_crashed_run_satisfies_udc_vacuously() {
    // Initiator crashes before doing anything; everyone else crashes too:
    // DC1's disjunct `crash(p)` discharges it, DC2 has no performer.
    let mut b = RunBuilder::<u8>::new(2);
    b.append(p(0), 1, Event::Init { action: a(0, 0) }).unwrap();
    b.append(p(0), 2, Event::Crash).unwrap();
    b.append(p(1), 3, Event::Crash).unwrap();
    let run = b.finish(6);
    assert_eq!(check_udc(&run, &[a(0, 0)]), Verdict::Satisfied);
    assert_eq!(check_nudc(&run, &[a(0, 0)]), Verdict::Satisfied);
}

#[test]
fn empty_action_list_is_trivially_satisfied() {
    let run: Run<u8> = RunBuilder::new(3).finish(5);
    assert_eq!(check_udc(&run, &[]), Verdict::Satisfied);
}

#[test]
fn duplicate_do_events_do_not_confuse_the_checker() {
    // Performing twice is permitted by UDC (it has no integrity clause —
    // unlike URB, whose facade adds one).
    let mut b = RunBuilder::<u8>::new(1);
    b.append(p(0), 1, Event::Init { action: a(0, 0) }).unwrap();
    b.append(p(0), 2, Event::Do { action: a(0, 0) }).unwrap();
    b.append(p(0), 3, Event::Do { action: a(0, 0) }).unwrap();
    let run = b.finish(5);
    assert_eq!(check_udc(&run, &[a(0, 0)]), Verdict::Satisfied);
    assert!(ktudc_core::urb::check_urb(&run, &[a(0, 0).into()]).is_err());
}

#[test]
fn checker_and_formula_agree_on_adversarial_runs() {
    // A small zoo of hand-built runs; for each, the run checker and the
    // model-checked formula must give the same verdict at the initial
    // point of a singleton system.
    let alpha = a(0, 0);
    let build = |script: &dyn Fn(&mut RunBuilder<u8>)| {
        let mut b = RunBuilder::<u8>::new(2);
        script(&mut b);
        b.finish(10)
    };
    let runs: Vec<Run<u8>> = vec![
        build(&|b| {
            b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
            b.append(p(0), 2, Event::Do { action: alpha }).unwrap();
            b.append(p(1), 3, Event::Do { action: alpha }).unwrap();
        }),
        build(&|b| {
            b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
            b.append(p(0), 2, Event::Do { action: alpha }).unwrap();
            b.append(p(0), 3, Event::Crash).unwrap();
        }),
        build(&|b| {
            b.append(p(1), 2, Event::Do { action: alpha }).unwrap();
        }),
        build(&|b| {
            b.append(p(0), 1, Event::Init { action: alpha }).unwrap();
        }),
        build(&|_| {}),
    ];
    for (i, run) in runs.into_iter().enumerate() {
        let run_verdict = check_udc(&run, &[alpha]).is_satisfied();
        let nudc_verdict = check_nudc(&run, &[alpha]).is_satisfied();
        let sys = System::new(vec![run]);
        let mut mc = ModelChecker::new(&sys);
        let formula_verdict = mc.valid(&udc_formula::<u8>(2, alpha)).is_ok();
        let nudc_formula_verdict = mc.valid(&nudc_formula::<u8>(2, alpha)).is_ok();
        assert_eq!(run_verdict, formula_verdict, "UDC mismatch on run {i}");
        assert_eq!(
            nudc_verdict, nudc_formula_verdict,
            "nUDC mismatch on run {i}"
        );
    }
}
