//! The scenario cache: an LRU over canonical request bodies.
//!
//! Every cacheable endpoint computes a pure function of its request body
//! ([`RequestKind::cacheable`](crate::wire::RequestKind::cacheable)), so
//! the server memoizes outcomes keyed by the body's *canonical JSON* —
//! the exact string `serde_json::to_string` produces, whose field order
//! is fixed by the struct definitions. The map is keyed by the pinned
//! 64-bit [`StableHasher`] digest of that string for cheap lookup, but
//! every hit re-compares the stored canonical string, so a (≈2⁻⁶⁴) hash
//! collision degrades to a miss instead of serving the wrong scenario's
//! outcome.
//!
//! Eviction is least-recently-used under a logical clock bumped on every
//! access. The victim scan is linear in the entry count; capacities here
//! are hundreds of entries guarding seconds-long computations, so the
//! scan is noise.

use crate::wire::ResponseKind;
use ktudc_model::hashing::StableHasher;
use std::collections::HashMap;
use std::hash::Hasher;

struct Entry {
    /// Full canonical body, kept to guard against digest collisions.
    canon: String,
    value: ResponseKind,
    last_used: u64,
}

/// A bounded least-recently-used outcome cache.
pub struct LruCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry>,
}

impl LruCache {
    /// A cache holding at most `capacity` outcomes. Capacity 0 disables
    /// caching (every lookup misses, every insert is dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            clock: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// The pinned digest of a canonical body.
    #[must_use]
    pub fn key_of(canon: &str) -> u64 {
        let mut h = StableHasher::new();
        h.write(canon.as_bytes());
        h.finish()
    }

    /// Looks up the outcome of a canonical body, refreshing its recency.
    pub fn get(&mut self, canon: &str) -> Option<ResponseKind> {
        self.clock += 1;
        let entry = self.entries.get_mut(&Self::key_of(canon))?;
        if entry.canon != canon {
            // Digest collision: miss, and keep the incumbent.
            return None;
        }
        entry.last_used = self.clock;
        Some(entry.value.clone())
    }

    /// Stores an outcome, evicting the least-recently-used entry at
    /// capacity. A digest collision overwrites the incumbent (one of the
    /// two scenarios stays uncached; correctness is preserved by the
    /// canonical-string check in [`LruCache::get`]).
    pub fn insert(&mut self, canon: String, value: ResponseKind) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let key = Self::key_of(&canon);
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            Entry {
                canon,
                value,
                last_used: self.clock,
            },
        );
    }

    /// Number of cached outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tag: u64) -> ResponseKind {
        ResponseKind::Explore(ktudc_sim::ExploreOutcome {
            runs: tag as usize,
            complete: true,
            events: tag,
            digest: tag,
        })
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut cache = LruCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".to_string(), outcome(1));
        assert_eq!(cache.get("a"), Some(outcome(1)));
        assert!(cache.get("b").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a".to_string(), outcome(1));
        cache.insert("b".to_string(), outcome(2));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c".to_string(), outcome(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a".to_string(), outcome(1));
        cache.insert("b".to_string(), outcome(2));
        cache.insert("a".to_string(), outcome(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some(outcome(9)));
        assert_eq!(cache.get("b"), Some(outcome(2)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert("a".to_string(), outcome(1));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn digest_is_stable_across_calls() {
        assert_eq!(LruCache::key_of("scenario"), LruCache::key_of("scenario"));
        assert_ne!(LruCache::key_of("scenario"), LruCache::key_of("scenari0"));
    }
}
