//! The scenario cache: an LRU over canonical request bodies.
//!
//! Every cacheable endpoint computes a pure function of its request body
//! ([`RequestKind::cacheable`](crate::wire::RequestKind::cacheable)), so
//! the server memoizes outcomes keyed by the body's *canonical JSON* —
//! the exact string `serde_json::to_string` produces, whose field order
//! is fixed by the struct definitions. The map is keyed by the pinned
//! 64-bit [`StableHasher`] digest of that string for cheap lookup, but
//! every hit re-compares the stored canonical string, so a (≈2⁻⁶⁴) hash
//! collision degrades to a miss instead of serving the wrong scenario's
//! outcome.
//!
//! Eviction is least-recently-used under a logical clock bumped on every
//! access. The victim scan is linear in the entry count; capacities here
//! are hundreds of entries guarding seconds-long computations, so the
//! scan is noise.

use crate::wire::ResponseKind;
use ktudc_model::hashing::StableHasher;
use std::collections::HashMap;
use std::hash::Hasher;

struct Entry {
    /// Full canonical body, kept to guard against digest collisions.
    canon: String,
    value: ResponseKind,
    last_used: u64,
}

/// A bounded least-recently-used outcome cache.
pub struct LruCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry>,
}

impl LruCache {
    /// A cache holding at most `capacity` outcomes. Capacity 0 disables
    /// caching (every lookup misses, every insert is dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            clock: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// The pinned digest of a canonical body.
    #[must_use]
    pub fn key_of(canon: &str) -> u64 {
        let mut h = StableHasher::new();
        h.write(canon.as_bytes());
        h.finish()
    }

    /// Looks up the outcome of a canonical body, refreshing its recency.
    pub fn get(&mut self, canon: &str) -> Option<ResponseKind> {
        self.clock += 1;
        let entry = self.entries.get_mut(&Self::key_of(canon))?;
        if entry.canon != canon {
            // Digest collision: miss, and keep the incumbent.
            return None;
        }
        entry.last_used = self.clock;
        Some(entry.value.clone())
    }

    /// Stores an outcome, evicting the least-recently-used entry at
    /// capacity. A digest collision overwrites the incumbent (one of the
    /// two scenarios stays uncached; correctness is preserved by the
    /// canonical-string check in [`LruCache::get`]).
    pub fn insert(&mut self, canon: String, value: ResponseKind) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        let key = Self::key_of(&canon);
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            Entry {
                canon,
                value,
                last_used: self.clock,
            },
        );
    }

    /// Exports every cached outcome, least-recently-used first, so that
    /// replaying the list through [`LruCache::warm_load`] reproduces both
    /// the contents and the eviction order. This is the snapshot payload
    /// of a durable server.
    #[must_use]
    pub fn export(&self) -> Vec<(String, ResponseKind)> {
        let mut entries: Vec<(&Entry, u64)> =
            self.entries.values().map(|e| (e, e.last_used)).collect();
        entries.sort_by_key(|&(_, last_used)| last_used);
        entries
            .into_iter()
            .map(|(e, _)| (e.canon.clone(), e.value.clone()))
            .collect()
    }

    /// Replays an exported entry list into this cache (oldest first, so
    /// recency — and therefore future eviction order — is preserved).
    /// Entries beyond capacity evict exactly as live inserts would.
    pub fn warm_load(&mut self, entries: Vec<(String, ResponseKind)>) {
        for (canon, value) in entries {
            self.insert(canon, value);
        }
    }

    /// Number of cached outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tag: u64) -> ResponseKind {
        ResponseKind::Explore(ktudc_sim::ExploreOutcome {
            runs: tag as usize,
            complete: true,
            events: tag,
            digest: tag,
        })
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut cache = LruCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".to_string(), outcome(1));
        assert_eq!(cache.get("a"), Some(outcome(1)));
        assert!(cache.get("b").is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        cache.insert("a".to_string(), outcome(1));
        cache.insert("b".to_string(), outcome(2));
        // Touch "a" so "b" is the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c".to_string(), outcome(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut cache = LruCache::new(2);
        cache.insert("a".to_string(), outcome(1));
        cache.insert("b".to_string(), outcome(2));
        cache.insert("a".to_string(), outcome(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some(outcome(9)));
        assert_eq!(cache.get("b"), Some(outcome(2)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert("a".to_string(), outcome(1));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn export_then_warm_load_round_trips_contents_and_recency() {
        let mut cache = LruCache::new(3);
        cache.insert("a".to_string(), outcome(1));
        cache.insert("b".to_string(), outcome(2));
        cache.insert("c".to_string(), outcome(3));
        // Touch "a": it becomes the most recent, "b" the LRU victim.
        assert!(cache.get("a").is_some());

        let exported = cache.export();
        assert_eq!(exported.len(), 3);

        let mut revived = LruCache::new(3);
        revived.warm_load(exported);
        assert_eq!(revived.get("a"), Some(outcome(1)));
        assert_eq!(revived.get("b"), Some(outcome(2)));
        assert_eq!(revived.get("c"), Some(outcome(3)));

        // Recency survived the round trip: inserting a fourth entry must
        // evict "b" (the pre-export LRU victim), not "a".
        let mut revived = LruCache::new(3);
        revived.warm_load(cache.export());
        revived.insert("d".to_string(), outcome(4));
        assert!(revived.get("a").is_some());
        assert!(revived.get("b").is_none());
        assert!(revived.get("c").is_some());
        assert!(revived.get("d").is_some());
    }

    #[test]
    fn warm_load_respects_capacity() {
        let mut big = LruCache::new(8);
        for i in 0..8 {
            big.insert(format!("k{i}"), outcome(i));
        }
        let mut small = LruCache::new(3);
        small.warm_load(big.export());
        assert_eq!(small.len(), 3);
        // The newest three survive, exactly as live inserts would leave it.
        assert!(small.get("k7").is_some());
        assert!(small.get("k5").is_some());
        assert!(small.get("k0").is_none());
    }

    #[test]
    fn digest_is_stable_across_calls() {
        assert_eq!(LruCache::key_of("scenario"), LruCache::key_of("scenario"));
        assert_ne!(LruCache::key_of("scenario"), LruCache::key_of("scenari0"));
    }
}
