//! The daemon: accept loop, connection readers, worker dispatch.
//!
//! # Threading model
//!
//! One nonblocking accept thread polls the listener and a shutdown flag.
//! Each connection gets a reader thread that parses request lines and
//! dispatches them; the actual computations run on a shared bounded
//! [`Pool`], so a connection burst cannot spawn unbounded compute. Each
//! connection's write half sits behind a mutex shared by the reader (for
//! inline answers: cache hits, stats, errors) and the workers (for
//! computed answers), which is what lets responses stream back in
//! completion order.
//!
//! # Backpressure
//!
//! [`Pool::try_execute`] fails fast when the queue is at capacity; the
//! server converts that into an [`ErrorCode::Overloaded`] response
//! immediately. Nothing ever waits for queue space and no queue grows
//! without bound, so an oversized burst costs each shed request one
//! line of JSON.
//!
//! # Shutdown
//!
//! A `Shutdown` request (or [`ServerHandle::shutdown`], which the binary
//! wires to SIGTERM/SIGINT) sets one flag. The accept thread notices
//! within its poll interval, stops accepting, and calls
//! [`Pool::shutdown`], which drains every job already accepted — their
//! responses still go out — then joins the workers. Requests arriving
//! during the drain get [`ErrorCode::ShuttingDown`].

use crate::admission::{estimated_wait_micros, AimdConfig, AimdController, JobRegistry};
use crate::cache::LruCache;
use crate::metrics::{Metrics, PoolCounters};
use crate::wire::{
    AbortedOutcome, CheckOutcome, ClusterHealthReport, ErrorCode, HealthReport, PartialCell,
    PartialOutcome, Request, RequestKind, RequestOptions, Response, ResponseKind, ShardHealth,
    WireError, MAX_REQUEST_LINE_BYTES, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
use ktudc_core::harness::{run_cell_budgeted, CellStatus};
use ktudc_epistemic::ModelChecker;
use ktudc_fd::{classify_detector_budgeted, ClassifyStatus};
use ktudc_model::{AbortReason, Budget};
use ktudc_par::{Pool, SubmitError};
use ktudc_sim::{
    explore_spec_budgeted, run_explore_spec_budgeted, system_digest, ExploreStatus,
    ExploreStatusOutcome,
};
use ktudc_store::SnapshotStore;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Test-only server fault injection, applied at the response-writing
/// boundary. Every field counts *responses* (a shared monotone sequence
/// across all connections): the k-th, 2k-th, … response suffers the
/// fault. The default injects nothing; production paths never construct
/// anything else. This is the server half of the chaos soak — the
/// [`HardenedClient`](crate::client::HardenedClient) must mask all of it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerFaults {
    /// Sleep for the given duration before writing every k-th response
    /// (exercises client read deadlines).
    pub delay_every: Option<(u64, Duration)>,
    /// Sever the connection instead of writing every k-th response
    /// (exercises reconnect-and-resend).
    pub sever_every: Option<u64>,
    /// Write only half of every k-th response line, then sever
    /// (exercises the client's handling of torn, unparseable replies).
    pub short_write_every: Option<u64>,
}

impl ServerFaults {
    /// Whether any fault is armed.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.delay_every.is_some() || self.sever_every.is_some() || self.short_write_every.is_some()
    }
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port (the bound address
    /// is available from [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads; 0 means [`ktudc_par::thread_count`].
    pub workers: usize,
    /// Bounded request-queue capacity (jobs accepted but not started).
    pub queue_capacity: usize,
    /// Scenario-cache capacity in outcomes; 0 disables caching.
    pub cache_capacity: usize,
    /// Data directory for durability. `Some(dir)` makes the server
    /// *durable*: at boot it warm-loads the scenario cache from the
    /// newest valid snapshot in `dir` (skipping — never loading —
    /// corrupt ones) and claims a fresh generation; afterwards it
    /// re-snapshots the cache every [`ServeConfig::snapshot_every`]
    /// computed outcomes and once more at shutdown. `None` (the default)
    /// is the original purely in-memory server at generation 0.
    pub data_dir: Option<PathBuf>,
    /// Computed (non-cached) outcomes between cache snapshots of a
    /// durable server; 0 snapshots only at boot and shutdown.
    pub snapshot_every: u64,
    /// Latency target for the adaptive concurrency controller, in
    /// milliseconds: when the observed p99 of admitted compute requests
    /// exceeds it, admission clamps down (AIMD). 0 disables adaptation —
    /// the static queue bound is the only backpressure.
    pub target_p99_ms: u64,
    /// Watchdog sampling period in milliseconds.
    pub watchdog_tick_ms: u64,
    /// Watchdog ticks without heartbeat movement before a running job
    /// counts as a stuck worker in [`HealthReport::stuck_workers`].
    pub stuck_after_ticks: u64,
    /// Per-connection idle read deadline, in milliseconds: a connection
    /// that sends no bytes for this long is reaped (counted in
    /// [`StatsReport::idle_reaped`](crate::metrics::StatsReport)), so a
    /// half-open peer cannot pin a connection thread forever. 0
    /// disables the deadline. The default (60 s) is far above any
    /// client's request cadence but finite.
    pub idle_timeout_ms: u64,
    /// Test-only response faults (default: none).
    pub faults: ServerFaults,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 256,
            data_dir: None,
            snapshot_every: 32,
            target_p99_ms: 0,
            watchdog_tick_ms: 25,
            stuck_after_ticks: 200,
            idle_timeout_ms: 60_000,
            faults: ServerFaults::default(),
        }
    }
}

/// What a durable server's boot-time recovery found, exposed on
/// [`ServerHandle::recovery`] and (minus the timing) via the `Health`
/// endpoint. A non-durable server reports all zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryReport {
    /// The generation this boot claimed (0 for a non-durable server).
    pub generation: u64,
    /// Cache outcomes warm-loaded from the newest valid snapshot.
    pub recovered_cache_entries: usize,
    /// Snapshot files skipped as corrupt during recovery.
    pub corrupt_snapshots_skipped: u64,
    /// Microseconds from bind to ready (recovery + boot snapshot
    /// included); the bench's restart-to-ready figure.
    pub restart_to_ready_micros: u64,
}

/// Durable state of a snapshotting server.
struct Durability {
    store: Mutex<SnapshotStore>,
    snapshot_every: u64,
    /// Computed outcomes inserted into the cache since the last snapshot.
    computed_since_snapshot: AtomicU64,
    /// Snapshots written since boot (boot snapshot included).
    snapshots_written: AtomicU64,
}

/// A request parked on an in-flight computation for the same canonical
/// body (single-flight dedup): answered when that computation lands.
struct Waiter {
    id: u64,
    /// The schema version the waiter's request spoke (echoed back).
    version: u32,
    out: Arc<Mutex<TcpStream>>,
    start: Instant,
}

struct Shared {
    /// `None` once shutdown has taken the pool for draining.
    pool: Mutex<Option<Pool>>,
    cache: Mutex<LruCache>,
    /// Canonical bodies currently being computed, with the requests
    /// waiting on each. Guarantees a spec is computed at most once even
    /// when identical requests race (e.g. a client resending after a
    /// severed connection while the original job still runs). Lock order
    /// is always `pending` → `cache`.
    pending: Mutex<HashMap<String, Vec<Waiter>>>,
    metrics: Metrics,
    /// Adaptive concurrency limit over queued + in-flight compute jobs.
    admission: AimdController,
    /// Running compute jobs' budget heartbeats, for the watchdog.
    registry: JobRegistry,
    shutdown: AtomicBool,
    workers: usize,
    /// Per-connection idle read deadline; `None` disables reaping.
    idle_timeout: Option<Duration>,
    faults: ServerFaults,
    /// Monotone response sequence number driving [`ServerFaults`].
    responses: AtomicU64,
    /// This boot's generation, stamped into every outgoing response.
    generation: u64,
    /// The bound listen address (port 0 resolved), so the server can
    /// describe itself as a one-shard cluster in `ClusterHealth`.
    addr: String,
    /// What boot-time recovery found (zeros when not durable).
    recovery: RecoveryReport,
    /// Snapshot machinery; `None` for an in-memory server.
    durability: Option<Durability>,
}

impl Shared {
    fn queue_depth(&self) -> usize {
        self.pool
            .lock()
            .expect("pool lock poisoned")
            .as_ref()
            .map_or(0, Pool::queue_depth)
    }

    fn in_flight(&self) -> usize {
        self.pool
            .lock()
            .expect("pool lock poisoned")
            .as_ref()
            .map_or(0, Pool::in_flight)
    }

    /// Jobs ahead of a new arrival: queued plus in flight. This is the
    /// quantity the admission limit bounds and the wait estimate scales
    /// with. Read from one coherent [`Pool::stats`] snapshot — summing
    /// the two separate accessors lets a worker pick a job up between
    /// the reads and count it twice, transiently overstating occupancy
    /// and shedding a request the limit would have admitted.
    fn occupancy(&self) -> usize {
        self.pool
            .lock()
            .expect("pool lock poisoned")
            .as_ref()
            .map_or(0, |p| {
                let s = p.stats();
                s.queued + s.in_flight
            })
    }

    /// Work-stealing counters for observability: (steals so far, deepest
    /// per-worker deque right now). Zeros once shutdown has taken the
    /// pool.
    fn steal_stats(&self) -> (u64, usize) {
        self.pool
            .lock()
            .expect("pool lock poisoned")
            .as_ref()
            .map_or((0, 0), |p| {
                let s = p.stats();
                (s.steals, s.deepest_queue)
            })
    }

    /// Counts one computed outcome and snapshots the cache when the
    /// cadence says so. Called off the worker that just published a
    /// result; snapshot failures are reported and tolerated (the cache
    /// is still authoritative in memory).
    fn note_computed(&self) {
        let Some(d) = &self.durability else { return };
        if d.snapshot_every == 0 {
            return;
        }
        let computed = d.computed_since_snapshot.fetch_add(1, Ordering::SeqCst) + 1;
        if computed >= d.snapshot_every {
            d.computed_since_snapshot.store(0, Ordering::SeqCst);
            self.snapshot_now();
        }
    }

    /// Writes one cache snapshot (atomic rename; crash-safe at any
    /// point). Failures go to stderr: losing a snapshot costs warm-cache
    /// time after the next crash, never correctness.
    fn snapshot_now(&self) {
        let Some(d) = &self.durability else { return };
        let exported = self.cache.lock().expect("cache lock poisoned").export();
        let payload = match serde_json::to_string(&exported) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("ktudc-serve: cache snapshot failed to encode: {e}");
                return;
            }
        };
        let mut store = d.store.lock().expect("snapshot store lock poisoned");
        match store.save(payload.as_bytes()) {
            Ok(_generation) => {
                d.snapshots_written.fetch_add(1, Ordering::SeqCst);
            }
            Err(e) => eprintln!("ktudc-serve: cache snapshot failed to write: {e}"),
        }
    }

    fn health_report(&self) -> HealthReport {
        let (steals, deepest_queue) = self.steal_stats();
        HealthReport {
            generation: self.generation,
            durable: self.durability.is_some(),
            recovered_cache_entries: self.recovery.recovered_cache_entries,
            corrupt_snapshots_skipped: self.recovery.corrupt_snapshots_skipped,
            store_corrupt_candidates: self.durability.as_ref().map_or(0, |d| {
                d.store
                    .lock()
                    .expect("snapshot store lock poisoned")
                    .corrupt_seen()
            }),
            snapshots_written: self
                .durability
                .as_ref()
                .map_or(0, |d| d.snapshots_written.load(Ordering::SeqCst)),
            cache_entries: self.cache.lock().expect("cache lock poisoned").len(),
            queue_depth: self.queue_depth(),
            in_flight: self.in_flight(),
            stuck_workers: self.registry.stuck_workers(),
            steals,
            deepest_queue,
            uptime_micros: self.metrics.uptime_micros(),
        }
    }
}

/// A handle to a running server.
///
/// Dropping the handle shuts the server down (and drains it) if it is
/// still running.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What boot-time recovery found (zeros for an in-memory server).
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.shared.recovery
    }

    /// Requests shutdown: stop accepting, drain, exit. Returns
    /// immediately; use [`ServerHandle::join`] to wait for the drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (locally or by a client).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the server has stopped accepting and drained every
    /// accepted job. Waits for a shutdown request if none was made yet.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shutdown();
            let _ = accept.join();
        }
    }
}

/// Binds and starts a server.
///
/// A durable config ([`ServeConfig::data_dir`]) additionally recovers
/// the scenario cache from the newest valid snapshot on disk and writes
/// a boot snapshot that claims this boot's generation — a corrupt or
/// torn snapshot is skipped (and counted), never loaded.
///
/// # Errors
///
/// Propagates the bind failure and any failure to open the data
/// directory or write the generation-claiming boot snapshot (a durable
/// server that cannot persist must not come up claiming it can);
/// everything after the bind is handled on the server's own threads.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let boot = Instant::now();
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = if config.workers == 0 {
        ktudc_par::thread_count()
    } else {
        config.workers
    };

    let mut cache = LruCache::new(config.cache_capacity);
    let mut recovery = RecoveryReport::default();
    let durability = match &config.data_dir {
        None => None,
        Some(dir) => {
            let mut store = SnapshotStore::open(dir, "cache")?;
            if let Some(snapshot) = store.load_latest()? {
                match serde_json::from_str::<Vec<(String, ResponseKind)>>(
                    std::str::from_utf8(&snapshot.payload).unwrap_or(""),
                ) {
                    Ok(entries) => {
                        recovery.recovered_cache_entries = entries.len();
                        cache.warm_load(entries);
                    }
                    // A checksum-valid snapshot whose payload no longer
                    // decodes was written by an incompatible version:
                    // treat it like corruption — skip it, start cold.
                    Err(_) => recovery.corrupt_snapshots_skipped += 1,
                }
            }
            recovery.corrupt_snapshots_skipped += store.corrupt_seen();
            // Claim this boot's generation with an immediate snapshot of
            // the recovered cache, so restarts are observable on the
            // wire even if the server never computes anything.
            let payload = serde_json::to_string(&cache.export())
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            recovery.generation = store.save(payload.as_bytes())?;
            Some(Durability {
                store: Mutex::new(store),
                snapshot_every: config.snapshot_every,
                computed_since_snapshot: AtomicU64::new(0),
                snapshots_written: AtomicU64::new(1),
            })
        }
    };
    recovery.restart_to_ready_micros = elapsed_micros(boot);

    let shared = Arc::new(Shared {
        pool: Mutex::new(Some(Pool::new(workers, config.queue_capacity))),
        cache: Mutex::new(cache),
        pending: Mutex::new(HashMap::new()),
        metrics: Metrics::new(),
        admission: AimdController::new(AimdConfig {
            target_p99_micros: config.target_p99_ms.saturating_mul(1_000),
            // Never clamp below the worker count: an admission limit the
            // workers outnumber would idle capacity we already paid for.
            min_limit: workers,
            max_limit: config.queue_capacity + workers,
            window: 32,
        }),
        registry: JobRegistry::new(),
        shutdown: AtomicBool::new(false),
        workers,
        idle_timeout: (config.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(config.idle_timeout_ms)),
        faults: config.faults,
        responses: AtomicU64::new(0),
        generation: recovery.generation,
        addr: addr.to_string(),
        recovery,
        durability,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    {
        // Watchdog: sample every running job's budget heartbeat on a
        // fixed tick; jobs whose heartbeat stalls for `stuck_after_ticks`
        // consecutive ticks are reported as stuck workers via `Health`.
        // The thread holds only a weak reference pattern via the shutdown
        // flag: it exits within one tick of shutdown and is not joined.
        let shared = Arc::clone(&shared);
        let tick = Duration::from_millis(config.watchdog_tick_ms.max(1));
        let stuck_after = config.stuck_after_ticks.max(1);
        std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                shared.registry.scan(stuck_after);
            }
        });
    }
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are small sequential lines; leaving Nagle on
                // makes each one wait out the peer's delayed ACK.
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || connection_loop(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain: take the pool so late submitters see ShuttingDown, then let
    // every accepted job finish and answer before we return.
    let pool = shared.pool.lock().expect("pool lock poisoned").take();
    if let Some(pool) = pool {
        pool.shutdown();
    }
    // Final snapshot: everything the drain just computed becomes warm
    // cache for the next boot.
    shared.snapshot_now();
}

/// What [`BoundedLineReader::next_line`] observed on the socket.
pub(crate) enum LineEvent {
    /// A complete newline-terminated line (lossy UTF-8; the delimiter
    /// stripped). Invalid bytes surface as replacement characters and
    /// fail JSON parsing downstream — a typed `BadRequest`, never a
    /// stall.
    Line(String),
    /// The peer accumulated more than the frame cap without a newline.
    Oversized,
    /// No bytes arrived within the idle deadline (a half-open or merely
    /// silent peer — this includes a partial frame followed by
    /// silence).
    IdleTimeout,
    /// Clean close, or an unrecoverable read error.
    Eof,
}

/// A line reader with the two bounds a hostile or broken peer forces on
/// a production accept loop: a per-read idle deadline (so a half-open
/// connection is reaped instead of pinning its thread forever) and a
/// frame-size cap (so a newline-less firehose cannot grow server memory
/// without limit). Shared by the server and router connection loops.
pub(crate) struct BoundedLineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    max_line: usize,
}

impl BoundedLineReader {
    /// Arms `stream` with the idle deadline (`None` = block forever)
    /// and wraps it. Fails only if the socket rejects the timeout.
    pub(crate) fn new(
        stream: TcpStream,
        idle_timeout: Option<Duration>,
        max_line: usize,
    ) -> std::io::Result<Self> {
        stream.set_read_timeout(idle_timeout)?;
        Ok(BoundedLineReader {
            stream,
            pending: Vec::new(),
            max_line,
        })
    }

    /// Blocks (up to the idle deadline) for the next complete line.
    pub(crate) fn next_line(&mut self) -> LineEvent {
        use std::io::Read;
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return LineEvent::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.pending.len() > self.max_line {
                return LineEvent::Oversized;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineEvent::IdleTimeout;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return LineEvent::Eof,
            }
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    let Ok(mut reader) =
        BoundedLineReader::new(read_half, shared.idle_timeout, MAX_REQUEST_LINE_BYTES)
    else {
        return;
    };
    loop {
        match reader.next_line() {
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(shared, &line, &out);
            }
            LineEvent::Oversized => {
                shared.metrics.record_oversized();
                write_response(
                    shared,
                    &out,
                    SCHEMA_VERSION,
                    Response::error(
                        0,
                        ErrorCode::BadRequest,
                        format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                    ),
                );
                break;
            }
            LineEvent::IdleTimeout => {
                if !shared.shutdown.load(Ordering::SeqCst) {
                    shared.metrics.record_idle_reap();
                }
                break;
            }
            LineEvent::Eof => break,
        }
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str, out: &Arc<Mutex<TcpStream>>) {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            // No recoverable id: 0 marks an unattributable failure.
            shared.metrics.record_malformed();
            write_response(
                shared,
                out,
                SCHEMA_VERSION,
                Response::error(0, ErrorCode::BadRequest, e.to_string()),
            );
            return;
        }
    };
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&request.schema_version) {
        write_response(
            shared,
            out,
            SCHEMA_VERSION,
            Response::error(
                request.id,
                ErrorCode::UnsupportedVersion,
                format!(
                    "request schema_version {} but this server speaks \
                     {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}",
                    request.schema_version
                ),
            ),
        );
        return;
    }
    let version = request.schema_version;
    let endpoint = request.kind.endpoint();
    let start = Instant::now();
    match request.kind {
        RequestKind::Stats => {
            let (cache_entries, cache_capacity) = {
                let cache = shared.cache.lock().expect("cache lock poisoned");
                (cache.len(), cache.capacity())
            };
            let (steals, deepest_queue) = shared.steal_stats();
            let report = shared.metrics.report(
                PoolCounters {
                    workers: shared.workers,
                    queue_depth: shared.queue_depth(),
                    queue_capacity: queue_capacity(shared),
                    steals,
                    deepest_queue,
                },
                cache_entries,
                cache_capacity,
            );
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                shared,
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Stats(report)),
            );
        }
        RequestKind::Health => {
            let report = shared.health_report();
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                shared,
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Health(report)),
            );
        }
        RequestKind::Ping => {
            // Heartbeat probe: answered inline on the connection thread,
            // never queued behind compute — a busy worker must still
            // prove liveness, otherwise queue pressure would read as
            // death to the detector plane. The envelope carries the
            // generation; the body is deliberately empty.
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                shared,
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Pong),
            );
        }
        RequestKind::ClusterHealth => {
            // A single-process server is a one-shard cluster of itself; a
            // router overrides this with the real fleet view.
            let health = shared.health_report();
            let report = ClusterHealthReport::aggregate(vec![ShardHealth::new(
                0,
                shared.addr.clone(),
                true,
                health.generation,
                Some(health),
            )]);
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                shared,
                out,
                version,
                Response::new(
                    request.id,
                    false,
                    micros,
                    ResponseKind::ClusterHealth(report),
                ),
            );
        }
        RequestKind::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                shared,
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Shutdown),
            );
        }
        kind @ (RequestKind::Cell(_)
        | RequestKind::Check(_)
        | RequestKind::Explore(_)
        | RequestKind::Classify(_)) => {
            dispatch_compute(
                shared,
                request.id,
                version,
                kind,
                request.options,
                start,
                out,
            );
        }
    }
}

/// Cache-or-queue path for the compute endpoints, with single-flight
/// dedup: identical canonical bodies that race share one computation.
///
/// This is what makes client resend-after-reconnect safe. A retried
/// request either hits the cache (the original job landed), joins the
/// original job's waiter list (it is still running), or starts the one
/// and only computation — in every case the spec is computed exactly
/// once and every requester gets the same payload.
fn dispatch_compute(
    shared: &Arc<Shared>,
    id: u64,
    version: u32,
    kind: RequestKind,
    options: RequestOptions,
    start: Instant,
    out: &Arc<Mutex<TcpStream>>,
) {
    let endpoint = kind.endpoint();
    let Ok(canon) = serde_json::to_string(&kind) else {
        write_response(
            shared,
            out,
            version,
            Response::error(id, ErrorCode::Internal, "request body is unencodable"),
        );
        shared.metrics.record_error(endpoint);
        return;
    };
    // Consult the cache and the in-flight table under the `pending` lock
    // (order pending → cache, matching the completion path) so a landing
    // job cannot slip between the cache miss and the waiter registration.
    {
        let mut pending = shared.pending.lock().expect("pending lock poisoned");
        let hit = shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get(&canon);
        if let Some(hit) = hit {
            drop(pending);
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, true);
            write_response(shared, out, version, Response::new(id, true, micros, hit));
            return;
        }
        // Deadline-carrying requests skip the single-flight table: their
        // results are deadline-truncated, so they must neither be shared
        // with nor cached for requests with other (or no) deadlines.
        if options.deadline_ms.is_none() {
            if let Some(waiters) = pending.get_mut(&canon) {
                waiters.push(Waiter {
                    id,
                    version,
                    out: Arc::clone(out),
                    start,
                });
                return;
            }
        }
        // Admission gate, decided before the job exists: a shed costs
        // one JSON line, never a queue slot. Cache hits and waiter joins
        // above are exempt — they consume no compute capacity.
        let occupancy = shared.occupancy();
        let est_wait_micros = estimated_wait_micros(
            occupancy,
            shared.workers,
            shared.metrics.compute_p50_micros(),
        );
        let retry_after_ms = (est_wait_micros / 1_000).max(1);
        if let Some(deadline_ms) = options.deadline_ms {
            if est_wait_micros >= deadline_ms.saturating_mul(1_000) {
                drop(pending);
                shared.metrics.record_shed_deadline(endpoint);
                write_response(
                    shared,
                    out,
                    version,
                    Response::error_with_retry(
                        id,
                        ErrorCode::DeadlineExceeded,
                        format!(
                            "estimated queue wait {}ms already exceeds the {deadline_ms}ms deadline",
                            est_wait_micros / 1_000
                        ),
                        retry_after_ms,
                    ),
                );
                return;
            }
        }
        if !shared.admission.try_admit(occupancy, options.priority) {
            drop(pending);
            shared.metrics.record_overload(endpoint);
            write_response(
                shared,
                out,
                version,
                Response::error_with_retry(
                    id,
                    ErrorCode::Overloaded,
                    format!(
                        "adaptive concurrency limit reached ({} of {}); retry later",
                        occupancy,
                        shared.admission.limit()
                    ),
                    retry_after_ms,
                ),
            );
            return;
        }
        if options.deadline_ms.is_none() {
            pending.insert(canon.clone(), Vec::new());
        }
    }
    if options.deadline_ms.is_some() {
        dispatch_deadline(shared, id, version, kind, options, start, out);
        return;
    }
    let job = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(out);
        let canon = canon.clone();
        let enqueued = Instant::now();
        move || {
            let picked = Instant::now();
            let queue_wait_micros = duration_micros(picked.duration_since(enqueued));
            // Every job runs under a budget — unlimited here, but its
            // heartbeat is what the watchdog samples to tell a long
            // computation from a wedged worker.
            let budget = Budget::unlimited();
            let token = shared.registry.register(budget.heartbeat());
            let outcome = match compute_budgeted(&kind, &budget) {
                Ok(ComputeStatus::Done(result)) => Ok(result),
                // An unlimited budget cannot trip; keep the worker alive
                // and surface the impossibility instead of asserting.
                Ok(ComputeStatus::Aborted { reason, .. }) => Err(WireError {
                    code: ErrorCode::Internal,
                    message: format!("unlimited budget aborted ({})", reason.name()),
                    retry_after_ms: 0,
                }),
                Err(err) => Err(err),
            };
            shared.registry.unregister(token);
            let compute_micros = elapsed_micros(picked);
            shared.metrics.record_queue_wait(queue_wait_micros);
            shared.metrics.record_compute(compute_micros);
            match outcome {
                Ok(result) => {
                    // Publish to the cache and claim the waiters atomically
                    // (pending → cache), so no request can miss both.
                    let waiters = {
                        let mut pending = shared.pending.lock().expect("pending lock poisoned");
                        shared
                            .cache
                            .lock()
                            .expect("cache lock poisoned")
                            .insert(canon.clone(), result.clone());
                        pending.remove(&canon).unwrap_or_default()
                    };
                    let micros = elapsed_micros(start);
                    shared.metrics.record(endpoint, micros, false);
                    shared.admission.observe(micros);
                    let mut response = Response::new(id, false, micros, result.clone());
                    response.queue_wait_ms = queue_wait_micros as f64 / 1_000.0;
                    response.compute_ms = compute_micros as f64 / 1_000.0;
                    write_response(&shared, &out, version, response);
                    for w in waiters {
                        let micros = elapsed_micros(w.start);
                        shared.metrics.record(endpoint, micros, true);
                        write_response(
                            &shared,
                            &w.out,
                            w.version,
                            Response::new(w.id, true, micros, result.clone()),
                        );
                    }
                    shared.note_computed();
                }
                Err(err) => {
                    let waiters = shared
                        .pending
                        .lock()
                        .expect("pending lock poisoned")
                        .remove(&canon)
                        .unwrap_or_default();
                    shared.metrics.record_error(endpoint);
                    write_response(
                        &shared,
                        &out,
                        version,
                        Response::error(id, err.code, err.message.clone()),
                    );
                    for w in waiters {
                        shared.metrics.record_error(endpoint);
                        write_response(
                            &shared,
                            &w.out,
                            w.version,
                            Response::error(w.id, err.code, err.message.clone()),
                        );
                    }
                }
            }
        }
    };
    let submitted = shared
        .pool
        .lock()
        .expect("pool lock poisoned")
        .as_ref()
        .map_or(Err(SubmitError::Closed), |pool| pool.try_execute(job));
    if let Err(reason) = submitted {
        // The job never ran: retract the in-flight marker and fail the
        // primary plus any waiters that raced in behind it.
        let waiters = shared
            .pending
            .lock()
            .expect("pending lock poisoned")
            .remove(&canon)
            .unwrap_or_default();
        let (code, message) = match reason {
            SubmitError::Full => (
                ErrorCode::Overloaded,
                format!(
                    "request queue is at capacity ({}); retry later",
                    queue_capacity(shared)
                ),
            ),
            SubmitError::Closed => (ErrorCode::ShuttingDown, "server is draining".to_string()),
        };
        let record = |endpoint| match reason {
            SubmitError::Full => shared.metrics.record_overload(endpoint),
            SubmitError::Closed => shared.metrics.record_error(endpoint),
        };
        let retry_after_ms = match reason {
            SubmitError::Full => retry_hint_ms(shared),
            SubmitError::Closed => 0,
        };
        record(endpoint);
        write_response(
            shared,
            out,
            version,
            Response::error_with_retry(id, code, message.clone(), retry_after_ms),
        );
        for w in waiters {
            record(endpoint);
            write_response(
                shared,
                &w.out,
                w.version,
                Response::error_with_retry(w.id, code, message.clone(), retry_after_ms),
            );
        }
    }
}

/// Retry hint stamped on every shed: the server's current queue-wait
/// estimate, floored at one millisecond so a client that honors hints
/// always backs off by a nonzero amount.
fn retry_hint_ms(shared: &Shared) -> u64 {
    let est = estimated_wait_micros(
        shared.occupancy(),
        shared.workers,
        shared.metrics.compute_p50_micros(),
    );
    (est / 1_000).max(1)
}

/// The worker path for a deadline-carrying request: runs outside the
/// single-flight table under a budget whose deadline counts from request
/// receipt (queue wait spends it). On a trip the requester gets the
/// typed partial ([`ResponseKind::Aborted`]) if it opted in, and a
/// [`ErrorCode::DeadlineExceeded`] error otherwise.
fn dispatch_deadline(
    shared: &Arc<Shared>,
    id: u64,
    version: u32,
    kind: RequestKind,
    options: RequestOptions,
    start: Instant,
    out: &Arc<Mutex<TcpStream>>,
) {
    let endpoint = kind.endpoint();
    let deadline_ms = options.deadline_ms.unwrap_or(0);
    let job = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(out);
        let enqueued = Instant::now();
        move || {
            let picked = Instant::now();
            let queue_wait_micros = duration_micros(picked.duration_since(enqueued));
            let budget =
                Budget::unlimited().with_deadline(start + Duration::from_millis(deadline_ms));
            let token = shared.registry.register(budget.heartbeat());
            let result = compute_budgeted(&kind, &budget);
            shared.registry.unregister(token);
            let compute_micros = elapsed_micros(picked);
            shared.metrics.record_queue_wait(queue_wait_micros);
            shared.metrics.record_compute(compute_micros);
            let micros = elapsed_micros(start);
            let mut response = match result {
                Ok(ComputeStatus::Done(result)) => {
                    shared.metrics.record(endpoint, micros, false);
                    // Only completed requests feed the controller: an
                    // aborted one's latency is capped by its own deadline
                    // and would read as spurious headroom.
                    shared.admission.observe(micros);
                    Response::new(id, false, micros, result)
                }
                Ok(ComputeStatus::Aborted { reason, partial }) if options.accept_partial => {
                    shared.metrics.record(endpoint, micros, false);
                    Response::new(
                        id,
                        false,
                        micros,
                        ResponseKind::Aborted(AbortedOutcome { reason, partial }),
                    )
                }
                Ok(ComputeStatus::Aborted { reason, .. }) => {
                    shared.metrics.record_shed_deadline(endpoint);
                    Response::error_with_retry(
                        id,
                        ErrorCode::DeadlineExceeded,
                        format!("computation aborted at the deadline ({})", reason.name()),
                        retry_hint_ms(&shared),
                    )
                }
                Err(err) => {
                    shared.metrics.record_error(endpoint);
                    Response::error_with_retry(id, err.code, err.message, err.retry_after_ms)
                }
            };
            response.queue_wait_ms = queue_wait_micros as f64 / 1_000.0;
            response.compute_ms = compute_micros as f64 / 1_000.0;
            write_response(&shared, &out, version, response);
        }
    };
    let submitted = shared
        .pool
        .lock()
        .expect("pool lock poisoned")
        .as_ref()
        .map_or(Err(SubmitError::Closed), |pool| pool.try_execute(job));
    if let Err(reason) = submitted {
        // No pending entry to retract: deadline requests never register.
        let (code, message) = match reason {
            SubmitError::Full => (
                ErrorCode::Overloaded,
                format!(
                    "request queue is at capacity ({}); retry later",
                    queue_capacity(shared)
                ),
            ),
            SubmitError::Closed => (ErrorCode::ShuttingDown, "server is draining".to_string()),
        };
        let retry_after_ms = match reason {
            SubmitError::Full => retry_hint_ms(shared),
            SubmitError::Closed => 0,
        };
        match reason {
            SubmitError::Full => shared.metrics.record_overload(endpoint),
            SubmitError::Closed => shared.metrics.record_error(endpoint),
        }
        write_response(
            shared,
            out,
            version,
            Response::error_with_retry(id, code, message, retry_after_ms),
        );
    }
}

/// What a budgeted compute job produced.
enum ComputeStatus {
    /// Ran to completion.
    Done(ResponseKind),
    /// The budget tripped; `partial` is whatever survived.
    Aborted {
        reason: AbortReason,
        partial: PartialOutcome,
    },
}

/// Runs one compute request under `budget`. Panics inside the libraries
/// (e.g. a [`CellSpec`](ktudc_core::harness::CellSpec) the harness
/// refuses) are caught and surfaced as [`ErrorCode::Internal`] so a
/// worker is never lost to a bad request.
fn compute_budgeted(kind: &RequestKind, budget: &Budget) -> Result<ComputeStatus, WireError> {
    let guarded = catch_unwind(AssertUnwindSafe(|| match kind {
        RequestKind::Cell(spec) => Ok(match run_cell_budgeted(spec, budget) {
            CellStatus::Done(outcome) => ComputeStatus::Done(ResponseKind::Cell(outcome)),
            CellStatus::Aborted {
                reason,
                partial,
                trials_completed,
            } => ComputeStatus::Aborted {
                reason,
                partial: if trials_completed == 0 {
                    PartialOutcome::None
                } else {
                    PartialOutcome::Cell(PartialCell {
                        outcome: partial,
                        trials_completed,
                    })
                },
            },
        }),
        RequestKind::Explore(spec) => match run_explore_spec_budgeted(spec, budget) {
            Ok(ExploreStatusOutcome::Done(outcome)) => {
                Ok(ComputeStatus::Done(ResponseKind::Explore(outcome)))
            }
            Ok(ExploreStatusOutcome::Aborted { reason, partial }) => Ok(ComputeStatus::Aborted {
                reason,
                partial: partial.map_or(PartialOutcome::None, PartialOutcome::Explore),
            }),
            Err(msg) => Err(WireError {
                code: ErrorCode::BadRequest,
                message: msg,
                retry_after_ms: 0,
            }),
        },
        RequestKind::Check(spec) => {
            let explored = match explore_spec_budgeted(&spec.scenario, budget) {
                Ok(ExploreStatus::Done(r)) => r,
                // A verdict over a partial system would be a verdict
                // about a different system: no usable partial.
                Ok(ExploreStatus::Aborted { reason, .. }) => {
                    return Ok(ComputeStatus::Aborted {
                        reason,
                        partial: PartialOutcome::None,
                    })
                }
                Err(msg) => {
                    return Err(WireError {
                        code: ErrorCode::BadRequest,
                        message: msg,
                        retry_after_ms: 0,
                    })
                }
            };
            let digest = system_digest(&explored.system);
            let mut checker = ModelChecker::new(&explored.system);
            let verdict = match checker.valid_budgeted(&spec.formula, budget) {
                Ok(v) => v,
                Err(reason) => {
                    return Ok(ComputeStatus::Aborted {
                        reason,
                        partial: PartialOutcome::None,
                    })
                }
            };
            let (valid, counterexample) = match verdict {
                Ok(()) => (true, None),
                Err(point) => (false, Some(point)),
            };
            Ok(ComputeStatus::Done(ResponseKind::Check(CheckOutcome {
                valid,
                counterexample,
                runs: explored.system.len(),
                complete: explored.complete,
                digest,
            })))
        }
        RequestKind::Classify(spec) => Ok(match classify_detector_budgeted(spec, budget) {
            ClassifyStatus::Done(verdict) => ComputeStatus::Done(ResponseKind::Classify(verdict)),
            // A class quantifies over *all* arms of the sweep; a verdict
            // from a subset would claim properties never tested. No
            // usable partial.
            ClassifyStatus::Aborted { reason, .. } => ComputeStatus::Aborted {
                reason,
                partial: PartialOutcome::None,
            },
        }),
        RequestKind::Stats
        | RequestKind::Health
        | RequestKind::ClusterHealth
        | RequestKind::Ping
        | RequestKind::Shutdown => Err(WireError {
            code: ErrorCode::Internal,
            message: "non-compute request reached a worker".to_string(),
            retry_after_ms: 0,
        }),
    }));
    match guarded {
        Ok(result) => result,
        Err(panic) => Err(WireError {
            code: ErrorCode::Internal,
            message: format!("computation panicked: {}", panic_message(&panic)),
            retry_after_ms: 0,
        }),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn queue_capacity(shared: &Shared) -> usize {
    shared
        .pool
        .lock()
        .expect("pool lock poisoned")
        .as_ref()
        .map_or(0, Pool::capacity)
}

fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn duration_micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Stamps the server's generation and the schema version the request
/// spoke, then serializes and writes one response line, applying any
/// armed [`ServerFaults`] on its way out. Write failures are dropped:
/// the client is gone, and the server has nothing useful to do about it.
fn write_response(shared: &Shared, out: &Mutex<TcpStream>, version: u32, mut response: Response) {
    response.schema_version = version;
    response.generation = shared.generation;
    let Ok(mut line) = serde_json::to_string(&response) else {
        return;
    };
    line.push('\n');
    let seq = shared.responses.fetch_add(1, Ordering::SeqCst) + 1;
    let faults = shared.faults;
    if let Some((every, delay)) = faults.delay_every {
        if every > 0 && seq.is_multiple_of(every) {
            std::thread::sleep(delay);
        }
    }
    let mut stream = out.lock().expect("stream lock poisoned");
    if let Some(every) = faults.sever_every {
        if every > 0 && seq.is_multiple_of(every) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
    if let Some(every) = faults.short_write_every {
        if every > 0 && seq.is_multiple_of(every) {
            let half = line.len() / 2;
            let _ = stream.write_all(&line.as_bytes()[..half]);
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::CheckSpec;
    use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
    use ktudc_epistemic::Formula;
    use ktudc_model::ProcessId;
    use ktudc_sim::ExploreSpec;

    /// The pre-budget compute entry point: an unlimited budget, with the
    /// (unreachable) abort arm folded into the error domain.
    fn compute(kind: &RequestKind) -> Result<ResponseKind, WireError> {
        match compute_budgeted(kind, &Budget::unlimited())? {
            ComputeStatus::Done(result) => Ok(result),
            ComputeStatus::Aborted { reason, .. } => Err(WireError {
                code: ErrorCode::Internal,
                message: format!("unlimited budget aborted ({})", reason.name()),
                retry_after_ms: 0,
            }),
        }
    }

    #[test]
    fn compute_cell_matches_direct_call() {
        let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(2)
            .horizon(120);
        let direct = run_cell(&spec);
        match compute(&RequestKind::Cell(spec)).unwrap() {
            ResponseKind::Cell(outcome) => assert_eq!(outcome, direct),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn compute_classify_matches_direct_call() {
        use ktudc_fd::{classify_detector, ClassifySpec, DetectorKind, FaultRegime};

        let spec = ClassifySpec::new(DetectorKind::Heartbeat, FaultRegime::Clean)
            .trials(2)
            .horizon(200);
        let direct = classify_detector(&spec);
        match compute(&RequestKind::Classify(spec)).unwrap() {
            ResponseKind::Classify(verdict) => assert_eq!(verdict, direct),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn classify_endpoint_is_served_and_cached() {
        use ktudc_fd::{ClassifySpec, DetectorKind, EmpiricalClass, FaultRegime};

        let handle = serve(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = crate::client::Client::connect(handle.addr()).unwrap();
        let spec = ClassifySpec::new(DetectorKind::PhiAccrual, FaultRegime::Clean)
            .trials(2)
            .horizon(200);

        let cold = client.request(RequestKind::Classify(spec.clone())).unwrap();
        assert!(!cold.cached);
        let verdict = match &cold.result {
            ResponseKind::Classify(v) => v.clone(),
            other => panic!("wrong payload: {other:?}"),
        };
        assert_eq!(verdict.class, EmpiricalClass::Perfect);
        assert_eq!(verdict.false_suspicion_events, 0);

        // Classification is deterministic per spec, so the retry is a
        // warm hit with an identical verdict.
        let warm = client.request(RequestKind::Classify(spec)).unwrap();
        assert!(warm.cached, "identical classify spec must hit the cache");
        assert_eq!(warm.result, cold.result);

        // The classify endpoint shows up in stats inside the cacheable
        // fold: 2 requests, 1 hit.
        let stats = client.stats().unwrap();
        let row = stats
            .endpoints
            .iter()
            .find(|e| e.endpoint == "classify")
            .expect("classify endpoint row");
        assert_eq!(row.requests, 2);
        assert_eq!(row.cache_hits, 1);
        assert!(stats.cache_hit_rate > 0.0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn compute_check_finds_tautologies_and_counterexamples() {
        let scenario = ExploreSpec::new(2, 2);
        let tautology = CheckSpec {
            scenario: scenario.clone(),
            formula: Formula::or(vec![
                Formula::crashed(ProcessId::new(0)),
                Formula::not(Formula::crashed(ProcessId::new(0))),
            ]),
        };
        match compute(&RequestKind::Check(tautology)).unwrap() {
            ResponseKind::Check(out) => {
                assert!(out.valid && out.complete);
                assert!(out.counterexample.is_none());
                assert!(out.runs > 0);
            }
            other => panic!("wrong payload: {other:?}"),
        }
        // "Process 0 has crashed" is false somewhere (e.g. the crash-free
        // run), so the check must fail with a counterexample.
        let falsifiable = CheckSpec {
            scenario,
            formula: Formula::crashed(ProcessId::new(0)),
        };
        match compute(&RequestKind::Check(falsifiable)).unwrap() {
            ResponseKind::Check(out) => {
                assert!(!out.valid);
                assert!(out.counterexample.is_some());
            }
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn compute_rejects_invalid_specs_as_bad_request() {
        let err = compute(&RequestKind::Explore(ExploreSpec::new(0, 2))).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        let err = compute(&RequestKind::Stats).unwrap_err();
        assert_eq!(err.code, ErrorCode::Internal);
    }

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("ktudc-serve-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&p);
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn durable_config(dir: &std::path::Path) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            data_dir: Some(dir.to_path_buf()),
            snapshot_every: 1,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn durable_server_recovers_cache_and_advances_generation() {
        let tmp = TempDir::new("recover");
        let spec = ExploreSpec::new(2, 2);

        // Boot 1: compute one exploration, then drain (which snapshots).
        let (gen1, cold) = {
            let handle = serve(&durable_config(&tmp.0)).unwrap();
            let mut client = crate::client::Client::connect(handle.addr()).unwrap();
            let response = client.request(RequestKind::Explore(spec.clone())).unwrap();
            assert!(!response.cached);
            let health = client.health().unwrap();
            assert!(health.durable);
            assert_eq!(health.recovered_cache_entries, 0);
            assert_eq!(health.corrupt_snapshots_skipped, 0);
            assert_eq!(response.generation, health.generation);
            handle.shutdown();
            handle.join();
            (health.generation, response.result)
        };

        // Boot 2: the same request must be a warm hit from the recovered
        // cache, under a strictly newer generation.
        let handle = serve(&durable_config(&tmp.0)).unwrap();
        assert!(handle.recovery().recovered_cache_entries >= 1);
        let mut client = crate::client::Client::connect(handle.addr()).unwrap();
        let health = client.health().unwrap();
        assert!(health.generation > gen1, "{} vs {gen1}", health.generation);
        assert!(health.recovered_cache_entries >= 1);
        assert_eq!(health.corrupt_snapshots_skipped, 0);
        let response = client.request(RequestKind::Explore(spec)).unwrap();
        assert!(response.cached, "recovered cache must answer warm");
        assert_eq!(response.result, cold);
        assert_eq!(response.generation, health.generation);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn corrupt_snapshots_are_skipped_never_loaded() {
        let tmp = TempDir::new("corrupt");
        // Boot once so a valid snapshot exists, with one cached outcome.
        let spec = ExploreSpec::new(2, 2);
        {
            let handle = serve(&durable_config(&tmp.0)).unwrap();
            let mut client = crate::client::Client::connect(handle.addr()).unwrap();
            client.request(RequestKind::Explore(spec.clone())).unwrap();
            handle.shutdown();
            handle.join();
        }
        // Plant a corrupt snapshot claiming to be newer than everything.
        std::fs::write(tmp.0.join("cache.999999.snap"), b"not a snapshot").unwrap();

        let handle = serve(&durable_config(&tmp.0)).unwrap();
        let recovery = handle.recovery();
        assert!(
            recovery.corrupt_snapshots_skipped >= 1,
            "the planted corruption must be counted: {recovery:?}"
        );
        // Recovery fell back to the newest *valid* snapshot: the cached
        // outcome from boot 1 is still served warm.
        let mut client = crate::client::Client::connect(handle.addr()).unwrap();
        let response = client.request(RequestKind::Explore(spec)).unwrap();
        assert!(response.cached);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn in_memory_server_reports_generation_zero_and_not_durable() {
        let handle = serve(&ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = crate::client::Client::connect(handle.addr()).unwrap();
        let health = client.health().unwrap();
        assert!(!health.durable);
        assert_eq!(health.generation, 0);
        let recovery = handle.recovery();
        assert_eq!(recovery.generation, 0);
        assert_eq!(recovery.recovered_cache_entries, 0);
        assert_eq!(recovery.corrupt_snapshots_skipped, 0);
        handle.shutdown();
        handle.join();
    }
}
