//! Deterministic in-process TCP fault proxy — chaos on the wire plane.
//!
//! PR 3's [`FaultPlan`](ktudc_sim::faults) injects faults at the
//! *simulated* channel boundary. This module moves the same taxonomy to
//! the real TCP path: a [`ChaosProxy`] listens on an ephemeral port,
//! forwards every accepted connection to one upstream address, and
//! applies a seeded schedule of **toxics** (toxiproxy-style) to the byte
//! stream in each direction. Interpose it on any hop — `ctl`↔router,
//! router↔worker, client↔server — and the hardened layers above must
//! mask everything it does, which `serve::audit` checks end to end.
//!
//! # Toxic vocabulary (the wire-plane mirror of `FaultPlan`)
//!
//! | sim `FaultPlan`            | wire toxic                                  |
//! |----------------------------|---------------------------------------------|
//! | `delay_spikes(w, extra)`   | [`Toxic::DelaySpike`] — stall a frame       |
//! | `burst_loss(w)`            | [`Toxic::TruncateEvery`] — torn frame + cut |
//! | `duplicate(p)`             | client resend storms (the proxy never dupes: TCP can't; the *client's* reconnect-and-resend is the duplication the auditor must prove harmless) |
//! | `partition_link(from, to)` | [`Toxic::Partition`] — one-way silent drop  |
//! | `sever_link(from, to)`     | [`Toxic::ResetEvery`] / unbounded partition |
//! | *(no sim analogue)*        | [`Toxic::CorruptEvery`], [`Toxic::StallEvery`], [`Toxic::Throttle`] |
//!
//! # Determinism
//!
//! All scheduling is counter-based: each direction keeps one **global**
//! frame counter shared by every connection through the proxy (the same
//! shared-sequence idiom as [`ServerFaults`](crate::server::ServerFaults)),
//! so "every k-th frame" is stable across client reconnects and cannot
//! stay aligned with a fixed batch size. The only randomness — which
//! byte a corruption lands on — is drawn statelessly from
//! `splitmix64(seed ^ CHAOS_STREAM_SALT ^ frame_index)`, mirroring the
//! simulator's dedicated fault RNG stream. An empty [`ToxicPlan`]
//! forwards every byte unchanged (the zero-perturbation invariant,
//! pinned by a unit test), and a fixed plan + seed + frame sequence
//! reproduces the same injections.
//!
//! # Framing
//!
//! The wire protocol is newline-delimited JSON, so the proxy cuts the
//! stream into newline-terminated *frames* and schedules toxics per
//! frame: a truncation is guaranteed to tear mid-frame, a corruption
//! lands inside a frame body (never on the delimiter), and a partition
//! drops whole frames silently. Bytes that overrun
//! [`MAX_PROXY_FRAME`] without a newline are flushed as-is (opaque
//! pass-through) so a non-JSON peer cannot balloon proxy memory.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Salt for the proxy's corruption-position stream, in the same spirit
/// as the simulator's `FAULT_STREAM_SALT`: chaos randomness must never
/// collide with any other consumer of the seed.
pub const CHAOS_STREAM_SALT: u64 = 0x70c1_c0de_5eed_cab1;

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Pump read poll: how long a relay thread blocks in `read` before
/// re-checking shutdown. Purely an implementation liveness knob — it
/// never delays delivery of bytes that have arrived.
const PUMP_POLL: Duration = Duration::from_millis(10);

/// A frame accumulating past this many bytes without a newline is
/// flushed as an opaque chunk instead of buffering further.
pub const MAX_PROXY_FRAME: usize = 4 << 20;

/// One step of `splitmix64` used statelessly: full avalanche of `x`.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which half of the proxied conversation a toxic applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → upstream bytes (requests).
    Upstream,
    /// Upstream → client bytes (responses).
    Downstream,
}

/// One wire-plane fault. All `every`-style toxics count frames on a
/// per-direction counter that is global across connections.
#[derive(Clone, Debug)]
pub enum Toxic {
    /// Sleep `extra` before forwarding frames whose index falls in the
    /// leading `width` slots of each `period` (the simulator's
    /// `Window` shape): a bounded latency spike.
    DelaySpike {
        /// Window period in frames.
        period: u64,
        /// Spiked slots at the start of each period.
        width: u64,
        /// Added forwarding delay for spiked frames.
        extra: Duration,
    },
    /// Forward every frame, but in write slices of at most `chunk`
    /// bytes with `pause` between slices: a throttled, sliced writer
    /// that exercises short-read handling on the receiver.
    Throttle {
        /// Largest single write.
        chunk: usize,
        /// Pause between slices.
        pause: Duration,
    },
    /// Every k-th frame: forward only the first half of the frame, then
    /// sever the proxied connection — a torn frame the peer can never
    /// complete.
    TruncateEvery(u64),
    /// Every k-th frame: overwrite one frame byte (never the trailing
    /// newline) with `0x00`, which no JSON encoding contains, so the
    /// corruption is guaranteed visible to the decoder instead of
    /// silently producing a different valid document.
    CorruptEvery(u64),
    /// Every k-th frame: drop it and sever the proxied connection
    /// without warning (abrupt close; the peer observes a mid-exchange
    /// connection reset / EOF).
    ResetEvery(u64),
    /// Every k-th frame: swallow it and go **half-open** — this
    /// connection keeps reading (and discarding) in this direction
    /// forever but forwards nothing further, while the opposite
    /// direction stays untouched. The peer sees a socket that is alive
    /// but permanently silent; only its own deadline can save it.
    StallEvery(u64),
    /// Silently drop every frame with index in `start..until`
    /// (`None` = forever): an asymmetric one-way partition when armed
    /// on a single direction.
    Partition {
        /// First dropped frame index.
        start: u64,
        /// First index delivered again; `None` severs the direction
        /// permanently.
        until: Option<u64>,
    },
}

/// A per-direction set of toxics. Empty by default: the proxy is then a
/// byte-exact relay.
#[derive(Clone, Debug, Default)]
pub struct ToxicPlan {
    upstream: Vec<Toxic>,
    downstream: Vec<Toxic>,
}

impl ToxicPlan {
    /// No toxics: forwards everything unchanged.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Arms `toxic` on client → upstream traffic.
    #[must_use]
    pub fn upstream(mut self, toxic: Toxic) -> Self {
        self.upstream.push(toxic);
        self
    }

    /// Arms `toxic` on upstream → client traffic.
    #[must_use]
    pub fn downstream(mut self, toxic: Toxic) -> Self {
        self.downstream.push(toxic);
        self
    }

    /// True when no toxic is armed in either direction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.upstream.is_empty() && self.downstream.is_empty()
    }

    fn for_direction(&self, dir: Direction) -> &[Toxic] {
        match dir {
            Direction::Upstream => &self.upstream,
            Direction::Downstream => &self.downstream,
        }
    }
}

/// Injection counters, mirroring the simulator's `FaultStats`: every
/// toxic that fires is counted, nothing is ever injected silently.
#[derive(Debug, Default)]
pub struct ChaosStats {
    connections: AtomicU64,
    frames_forwarded: AtomicU64,
    bytes_forwarded: AtomicU64,
    spike_delayed: AtomicU64,
    throttled_writes: AtomicU64,
    truncated: AtomicU64,
    corrupted: AtomicU64,
    resets: AtomicU64,
    stalled: AtomicU64,
    partition_dropped: AtomicU64,
    /// Global frame index of the first injection, plus one (0 = none
    /// yet) — the wire analogue of `FaultStats::first_injection`.
    first_injection: AtomicU64,
}

impl ChaosStats {
    fn note_injection(&self, frame: u64) {
        let _ = self.first_injection.compare_exchange(
            0,
            frame + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// A plain copy of the counters at this instant.
    #[must_use]
    pub fn snapshot(&self) -> ChaosStatsSnapshot {
        ChaosStatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames_forwarded: self.frames_forwarded.load(Ordering::Relaxed),
            bytes_forwarded: self.bytes_forwarded.load(Ordering::Relaxed),
            spike_delayed: self.spike_delayed.load(Ordering::Relaxed),
            throttled_writes: self.throttled_writes.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            stalled: self.stalled.load(Ordering::Relaxed),
            partition_dropped: self.partition_dropped.load(Ordering::Relaxed),
            first_injection: match self.first_injection.load(Ordering::Relaxed) {
                0 => None,
                n => Some(n - 1),
            },
        }
    }
}

/// Point-in-time view of [`ChaosStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Connections accepted and proxied.
    pub connections: u64,
    /// Frames delivered intact (possibly delayed or sliced).
    pub frames_forwarded: u64,
    /// Payload bytes delivered.
    pub bytes_forwarded: u64,
    /// Frames held by a delay spike before delivery.
    pub spike_delayed: u64,
    /// Sliced writes issued by the throttle toxic.
    pub throttled_writes: u64,
    /// Frames torn mid-body (then severed).
    pub truncated: u64,
    /// Frames delivered with one corrupted byte.
    pub corrupted: u64,
    /// Connections severed by the reset toxic.
    pub resets: u64,
    /// Frames swallowed by a half-open stall.
    pub stalled: u64,
    /// Frames dropped by a one-way partition.
    pub partition_dropped: u64,
    /// Global frame index of the first injection, if any.
    pub first_injection: Option<u64>,
}

impl ChaosStatsSnapshot {
    /// Total toxic firings of any kind.
    #[must_use]
    pub fn injections(&self) -> u64 {
        self.spike_delayed
            + self.throttled_writes
            + self.truncated
            + self.corrupted
            + self.resets
            + self.stalled
            + self.partition_dropped
    }
}

/// Per-direction shared scheduling state: the global frame counter.
#[derive(Debug, Default)]
struct DirState {
    frames: AtomicU64,
}

/// A running chaos proxy. Dropping it stops accepting; connections
/// already relayed die with their endpoints.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ChaosStats>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// The proxy's own listen address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Injection counters so far.
    #[must_use]
    pub fn stats(&self) -> ChaosStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting new connections and joins the accept thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a chaos proxy on an ephemeral local port, forwarding every
/// accepted connection to `upstream` under `plan`'s toxics with a
/// seeded corruption stream.
///
/// # Errors
///
/// Propagates the listener bind failure.
pub fn chaos_proxy(
    upstream: impl Into<String>,
    plan: ToxicPlan,
    seed: u64,
) -> std::io::Result<ChaosProxy> {
    let upstream = upstream.into();
    let listener = TcpListener::bind("127.0.0.1:0")?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ChaosStats::default());
    let up_state = Arc::new(DirState::default());
    let down_state = Arc::new(DirState::default());
    let accept = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _peer)) => {
                        let _ = client.set_nodelay(true);
                        let Ok(server) = TcpStream::connect(&upstream) else {
                            // Upstream refused: the client sees an
                            // immediate close, exactly what a dead
                            // worker looks like.
                            drop(client);
                            continue;
                        };
                        let _ = server.set_nodelay(true);
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        spawn_pumps(
                            &client,
                            &server,
                            &plan,
                            seed,
                            &up_state,
                            &down_state,
                            &stats,
                            &shutdown,
                        );
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        })
    };
    Ok(ChaosProxy {
        addr,
        shutdown,
        stats,
        accept: Some(accept),
    })
}

/// Spawns the two relay threads for one proxied connection.
#[allow(clippy::too_many_arguments)]
fn spawn_pumps(
    client: &TcpStream,
    server: &TcpStream,
    plan: &ToxicPlan,
    seed: u64,
    up_state: &Arc<DirState>,
    down_state: &Arc<DirState>,
    stats: &Arc<ChaosStats>,
    shutdown: &Arc<AtomicBool>,
) {
    for (dir, state) in [
        (Direction::Upstream, up_state),
        (Direction::Downstream, down_state),
    ] {
        let (src, dst) = match dir {
            Direction::Upstream => (client.try_clone(), server.try_clone()),
            Direction::Downstream => (server.try_clone(), client.try_clone()),
        };
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        };
        let toxics = plan.for_direction(dir).to_vec();
        let state = Arc::clone(state);
        let stats = Arc::clone(stats);
        let shutdown = Arc::clone(shutdown);
        std::thread::spawn(move || pump(src, dst, &toxics, seed, &state, &stats, &shutdown));
    }
}

/// What the schedule decided for one frame.
enum FrameAction {
    Pass,
    Corrupt,
    Truncate,
    Reset,
    Stall,
    PartitionDrop,
}

/// Relays one direction of one connection, applying `toxics` per frame.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    toxics: &[Toxic],
    seed: u64,
    state: &DirState,
    stats: &ChaosStats,
    shutdown: &AtomicBool,
) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    // Once a stall toxic fires, this direction reads and discards
    // forever (half-open): the socket stays up, nothing is forwarded.
    let mut stalled = false;
    loop {
        let n = match src.read(&mut chunk) {
            Ok(0) => {
                // Clean EOF: propagate the half-close and stop.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        if stalled {
            continue;
        }
        pending.extend_from_slice(&chunk[..n]);
        // Deliver every complete newline-terminated frame.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = pending.drain(..=pos).collect();
            match deliver_frame(&frame, &mut src, &mut dst, toxics, seed, state, stats) {
                Delivery::Continue => {}
                Delivery::Stalled => {
                    stalled = true;
                    pending.clear();
                    break;
                }
                Delivery::Closed => return,
            }
        }
        // A frame that never terminates must not balloon memory:
        // flush it as an opaque chunk (no toxic schedule — it is not a
        // protocol frame).
        if pending.len() > MAX_PROXY_FRAME {
            if dst.write_all(&pending).is_err() {
                let _ = src.shutdown(Shutdown::Both);
                return;
            }
            stats
                .bytes_forwarded
                .fetch_add(pending.len() as u64, Ordering::Relaxed);
            pending.clear();
        }
    }
}

/// Outcome of delivering (or not) one frame.
enum Delivery {
    Continue,
    Stalled,
    Closed,
}

fn decide(
    toxics: &[Toxic],
    idx: u64,
) -> (FrameAction, Option<Duration>, Option<(usize, Duration)>) {
    let mut action = FrameAction::Pass;
    let mut delay = None;
    let mut slice = None;
    for toxic in toxics {
        match *toxic {
            Toxic::DelaySpike {
                period,
                width,
                extra,
            } => {
                if period > 0 && idx % period < width {
                    delay = Some(extra);
                }
            }
            Toxic::Throttle { chunk, pause } => slice = Some((chunk.max(1), pause)),
            Toxic::TruncateEvery(k) => {
                if k > 0 && idx % k == k - 1 {
                    action = FrameAction::Truncate;
                }
            }
            Toxic::CorruptEvery(k) => {
                if k > 0 && idx % k == k - 1 {
                    action = FrameAction::Corrupt;
                }
            }
            Toxic::ResetEvery(k) => {
                if k > 0 && idx % k == k - 1 {
                    action = FrameAction::Reset;
                }
            }
            Toxic::StallEvery(k) => {
                if k > 0 && idx % k == k - 1 {
                    action = FrameAction::Stall;
                }
            }
            Toxic::Partition { start, until } => {
                if idx >= start && until.is_none_or(|u| idx < u) {
                    action = FrameAction::PartitionDrop;
                }
            }
        }
    }
    (action, delay, slice)
}

/// Applies the schedule to one complete frame and forwards, mangles, or
/// drops it.
fn deliver_frame(
    frame: &[u8],
    src: &mut TcpStream,
    dst: &mut TcpStream,
    toxics: &[Toxic],
    seed: u64,
    state: &DirState,
    stats: &ChaosStats,
) -> Delivery {
    let idx = state.frames.fetch_add(1, Ordering::Relaxed);
    let (action, delay, slice) = decide(toxics, idx);
    match action {
        FrameAction::PartitionDrop => {
            stats.partition_dropped.fetch_add(1, Ordering::Relaxed);
            stats.note_injection(idx);
            return Delivery::Continue;
        }
        FrameAction::Stall => {
            stats.stalled.fetch_add(1, Ordering::Relaxed);
            stats.note_injection(idx);
            return Delivery::Stalled;
        }
        FrameAction::Reset => {
            stats.resets.fetch_add(1, Ordering::Relaxed);
            stats.note_injection(idx);
            let _ = dst.shutdown(Shutdown::Both);
            let _ = src.shutdown(Shutdown::Both);
            return Delivery::Closed;
        }
        FrameAction::Truncate => {
            stats.truncated.fetch_add(1, Ordering::Relaxed);
            stats.note_injection(idx);
            let torn = &frame[..frame.len() / 2];
            let _ = dst.write_all(torn);
            let _ = dst.shutdown(Shutdown::Both);
            let _ = src.shutdown(Shutdown::Both);
            return Delivery::Closed;
        }
        FrameAction::Corrupt | FrameAction::Pass => {}
    }
    if let Some(extra) = delay {
        stats.spike_delayed.fetch_add(1, Ordering::Relaxed);
        stats.note_injection(idx);
        std::thread::sleep(extra);
    }
    let mut owned;
    let payload: &[u8] = if matches!(action, FrameAction::Corrupt) && frame.len() > 1 {
        owned = frame.to_vec();
        // Never the trailing newline: the framing survives, the body
        // does not. 0x00 is invalid anywhere in a JSON document, so
        // the decoder is guaranteed to see the damage.
        let body_len = owned.len() - 1;
        let pos = (mix64(seed ^ CHAOS_STREAM_SALT ^ idx) % body_len as u64) as usize;
        owned[pos] = 0x00;
        stats.corrupted.fetch_add(1, Ordering::Relaxed);
        stats.note_injection(idx);
        &owned
    } else {
        frame
    };
    let wrote = if let Some((chunk, pause)) = slice {
        let mut ok = true;
        for piece in payload.chunks(chunk) {
            if dst.write_all(piece).is_err() {
                ok = false;
                break;
            }
            stats.throttled_writes.fetch_add(1, Ordering::Relaxed);
            stats.note_injection(idx);
            std::thread::sleep(pause);
        }
        ok
    } else {
        dst.write_all(payload).is_ok()
    };
    if !wrote {
        let _ = src.shutdown(Shutdown::Both);
        return Delivery::Closed;
    }
    stats.frames_forwarded.fetch_add(1, Ordering::Relaxed);
    stats
        .bytes_forwarded
        .fetch_add(payload.len() as u64, Ordering::Relaxed);
    Delivery::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream: answers every received line with
    /// `echo:<line>`.
    fn echo_upstream() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        std::thread::spawn(move || {
                            let Ok(read_half) = stream.try_clone() else {
                                return;
                            };
                            let mut out = stream;
                            for line in BufReader::new(read_half).lines() {
                                let Ok(line) = line else { break };
                                if writeln!(out, "echo:{line}").is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    fn roundtrip_lines(addr: SocketAddr, lines: &[&str]) -> Vec<String> {
        let mut conn = TcpStream::connect(addr).expect("connect proxy");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut got = Vec::new();
        let read_half = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(read_half);
        for line in lines {
            writeln!(conn, "{line}").expect("write");
            let mut answer = String::new();
            reader.read_line(&mut answer).expect("read");
            got.push(answer.trim_end().to_string());
        }
        got
    }

    #[test]
    fn empty_plan_is_a_byte_exact_relay() {
        let (upstream, stop) = echo_upstream();
        let proxy = chaos_proxy(upstream.to_string(), ToxicPlan::none(), 7).expect("proxy");
        let lines = ["alpha", "beta", "{\"k\":1}"];
        let got = roundtrip_lines(proxy.addr(), &lines);
        assert_eq!(got, vec!["echo:alpha", "echo:beta", "echo:{\"k\":1}"]);
        let stats = proxy.stats();
        assert_eq!(stats.injections(), 0, "{stats:?}");
        assert_eq!(stats.first_injection, None);
        assert!(stats.frames_forwarded >= 6, "{stats:?}");
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn schedule_is_deterministic_for_a_fixed_seed_and_sequence() {
        let run = || {
            let (upstream, stop) = echo_upstream();
            let plan = ToxicPlan::none()
                .downstream(Toxic::CorruptEvery(3))
                .downstream(Toxic::DelaySpike {
                    period: 4,
                    width: 1,
                    extra: Duration::from_millis(1),
                });
            let proxy = chaos_proxy(upstream.to_string(), plan, 42).expect("proxy");
            let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
            conn.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let read_half = conn.try_clone().expect("clone");
            let mut reader = BufReader::new(read_half);
            let mut got = Vec::new();
            for i in 0..9 {
                writeln!(conn, "line-{i}").expect("write");
                let mut answer = String::new();
                reader.read_line(&mut answer).expect("read");
                got.push(answer.into_bytes());
            }
            let stats = proxy.stats();
            stop.store(true, Ordering::SeqCst);
            (got, stats)
        };
        let (a_lines, a_stats) = run();
        let (b_lines, b_stats) = run();
        assert_eq!(a_lines, b_lines);
        assert_eq!(a_stats.corrupted, b_stats.corrupted);
        assert_eq!(a_stats.corrupted, 3);
        assert_eq!(a_stats.first_injection, b_stats.first_injection);
        // The corrupted byte really is 0x00 and really is mid-frame.
        let torn: Vec<&Vec<u8>> = a_lines.iter().filter(|l| l.contains(&0)).collect();
        assert_eq!(torn.len(), 3, "every third response carries the byte");
    }

    #[test]
    fn one_way_partition_drops_silently_and_recovers() {
        let (upstream, stop) = echo_upstream();
        // Responses 1 and 2 (0-indexed frames 1..3) vanish; everything
        // else flows. The request direction is untouched.
        let plan = ToxicPlan::none().downstream(Toxic::Partition {
            start: 1,
            until: Some(3),
        });
        let proxy = chaos_proxy(upstream.to_string(), plan, 1).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        let read_half = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(read_half);
        let mut answered = Vec::new();
        for i in 0..5 {
            writeln!(conn, "m{i}").expect("write");
            let mut answer = String::new();
            match reader.read_line(&mut answer) {
                Ok(_) if !answer.is_empty() => answered.push(answer.trim_end().to_string()),
                _ => {} // dropped inside the partition window
            }
        }
        assert_eq!(answered, vec!["echo:m0", "echo:m3", "echo:m4"]);
        let stats = proxy.stats();
        assert_eq!(stats.partition_dropped, 2, "{stats:?}");
        assert_eq!(stats.first_injection, Some(1));
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn reset_severs_and_truncate_tears_mid_frame() {
        let (upstream, stop) = echo_upstream();
        let plan = ToxicPlan::none().downstream(Toxic::ResetEvery(2));
        let proxy = chaos_proxy(upstream.to_string(), plan, 3).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let read_half = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(read_half);
        writeln!(conn, "first").expect("write");
        let mut answer = String::new();
        reader.read_line(&mut answer).expect("read");
        assert_eq!(answer.trim_end(), "echo:first");
        // Second response frame hits the reset: the connection dies
        // without delivering it.
        writeln!(conn, "second").expect("write");
        let mut dead = String::new();
        let got = reader.read_line(&mut dead).unwrap_or(0);
        assert_eq!(got, 0, "reset delivers nothing: {dead:?}");
        assert_eq!(proxy.stats().resets, 1);

        // Truncation: a fresh proxy tearing every response mid-body.
        let plan = ToxicPlan::none().downstream(Toxic::TruncateEvery(1));
        let proxy = chaos_proxy(upstream.to_string(), plan, 3).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        writeln!(conn, "torn-frame-request").expect("write");
        let mut buf = Vec::new();
        let mut r = BufReader::new(conn);
        r.read_to_end(&mut buf).expect("drain");
        let full = b"echo:torn-frame-request\n";
        assert_eq!(buf, full[..full.len() / 2].to_vec());
        assert_eq!(proxy.stats().truncated, 1);
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn stall_goes_half_open_without_closing_the_socket() {
        let (upstream, stop) = echo_upstream();
        let plan = ToxicPlan::none().downstream(Toxic::StallEvery(2));
        let proxy = chaos_proxy(upstream.to_string(), plan, 9).expect("proxy");
        let mut conn = TcpStream::connect(proxy.addr()).expect("connect");
        conn.set_read_timeout(Some(Duration::from_millis(150)))
            .expect("timeout");
        let read_half = conn.try_clone().expect("clone");
        let mut reader = BufReader::new(read_half);
        writeln!(conn, "a").expect("write");
        let mut answer = String::new();
        reader.read_line(&mut answer).expect("read");
        assert_eq!(answer.trim_end(), "echo:a");
        // The next response is swallowed; the socket stays open so the
        // read times out instead of returning EOF.
        writeln!(conn, "b").expect("write");
        let mut silent = String::new();
        let err = reader.read_line(&mut silent).expect_err("stalled");
        assert!(
            err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut,
            "{err:?}"
        );
        assert_eq!(proxy.stats().stalled, 1);
        stop.store(true, Ordering::SeqCst);
    }
}
