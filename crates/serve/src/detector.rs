//! The live failure-detector plane: φ-accrual shard suspicion over real
//! sockets.
//!
//! `ktudc-fd` classifies detectors inside the simulator, where the fault
//! schedule is a data structure. This module runs the *same* φ-accrual
//! math ([`PhiEstimator`], extracted from `ktudc_fd::impls::phi`) against
//! a real cluster: a [`DetectorPlane`] probes every shard on a fixed
//! cadence with the cheap schema-v6 [`Ping`](crate::wire::RequestKind::Ping)
//! request, feeds inter-arrival times (wall-clock milliseconds instead of
//! simulator ticks — φ is scale-free) into one estimator per shard, and
//! drives a three-state suspicion machine per shard:
//!
//! ```text
//!            φ ≥ suspect_threshold                heartbeat resumes
//! Healthy ─────────────────────────▶ Suspected ───────────────────────▶ Probation
//!    ▲                                  ▲                                   │
//!    │          probation window passes │ missed beat during probation      │
//!    └──────────────────────────────────┴───────────────────────────────────┘
//! ```
//!
//! Suspicion is *advisory, never authoritative*: a suspected shard is
//! demoted to the back of the replica order (proactive failover) and a
//! soft-suspected one may be hedged, but no request is ever dropped and
//! no answer is ever invented on the detector's say-so. A wrong
//! suspicion therefore costs latency (a detour through a replica), never
//! correctness — which is exactly the accuracy/completeness trade the
//! paper's detector classes price out, and why
//! `perf --fd-live` can honestly measure which [`EmpiricalClass`]
//! (`ktudc_fd::EmpiricalClass`) the live plane achieves per wire regime
//! without risking the serve plane's zero-wrong-answers contract.
//!
//! The plane is shared by the router (its `Stats` report grows a
//! [`SuspicionStats`] block, its `ClusterHealth` rows grow φ/suspected/
//! probation annotations) and by [`ClusterClient`](crate::cluster::ClusterClient)
//! (routing-time skip + hedged requests).

use crate::client::Client;
use crate::cluster::Membership;
use crate::metrics::SuspicionStats;
use crate::wire::ClusterHealthReport;
use ktudc_fd::PhiEstimator;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// RTT samples retained for the p99-derived hedge delay.
const RTT_RING: usize = 256;

/// Tuning of a [`DetectorPlane`].
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Heartbeat cadence: one `Ping` per shard per period. Also the
    /// probe's socket deadline, so one stalled probe delays the next
    /// beat by at most a period.
    pub probe_period: Duration,
    /// φ at which a shard becomes suspected (and is demoted at routing
    /// time). With a learned mean gap of one probe period, φ ≥ T means a
    /// silence of about `T · ln 10 ≈ 2.3 T` periods.
    pub suspect_threshold: f64,
    /// Soft threshold: a primary whose φ is in
    /// `[hedge_threshold, suspect_threshold)` is not yet skipped, but
    /// requests routed to it are hedged to the next replica after
    /// [`DetectorPlane::hedge_delay`].
    pub hedge_threshold: f64,
    /// How long a readmitted shard stays in probation. During probation
    /// the shard takes traffic again, but a single missed beat
    /// re-suspects it immediately (no φ hysteresis to climb).
    pub probation: Duration,
    /// Sliding gap window of each shard's [`PhiEstimator`].
    pub window: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            probe_period: Duration::from_millis(50),
            suspect_threshold: 4.0,
            hedge_threshold: 1.0,
            probation: Duration::from_millis(400),
            window: 16,
        }
    }
}

impl DetectorConfig {
    /// A faster cadence for tests and soaks (25ms beats, ~250ms probation).
    #[must_use]
    pub fn fast() -> Self {
        DetectorConfig {
            probe_period: Duration::from_millis(25),
            probation: Duration::from_millis(250),
            ..DetectorConfig::default()
        }
    }
}

/// One shard's view in the suspicion state machine.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mood {
    Healthy,
    Suspected,
    /// Readmitted; healthy again once `until_ms` passes without a
    /// missed beat.
    Probation {
        until_ms: f64,
    },
}

/// A point-in-time reading of one shard's suspicion state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardSuspicion {
    /// Current φ (suspicion level).
    pub phi: f64,
    /// Whether the shard is currently suspected (skipped at routing).
    pub suspected: bool,
    /// Whether the shard is readmitted but still inside its probation
    /// window.
    pub probation: bool,
}

struct ShardMonitor {
    estimator: PhiEstimator,
    mood: Mood,
    last_gen: Option<u64>,
}

/// Lock-free counters behind [`SuspicionStats`].
#[derive(Default)]
struct Counters {
    probes_sent: AtomicU64,
    probe_failures: AtomicU64,
    suspects_raised: AtomicU64,
    suspects_cleared: AtomicU64,
    proactive_failovers: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    hedges_wasted: AtomicU64,
}

/// The live failure-detector plane: one probe thread and one
/// [`PhiEstimator`] per shard, suspicion queried at routing time.
///
/// Probes read shard addresses from [`Membership`] at send time, so they
/// follow a restarted worker to its new port exactly like requests do —
/// and experience the same wire faults, because they traverse the same
/// addresses (including any chaos proxies a test interposed).
///
/// Dropping the plane (or calling [`DetectorPlane::stop`]) stops the
/// probe threads.
pub struct DetectorPlane {
    membership: Arc<Membership>,
    config: DetectorConfig,
    /// Epoch of the plane's millisecond clock.
    started: Instant,
    monitors: Vec<Mutex<ShardMonitor>>,
    counters: Counters,
    /// Recent probe round-trips, microseconds, for the hedge delay.
    rtts: Mutex<Vec<u64>>,
    stop: AtomicBool,
    probes: Mutex<Vec<JoinHandle<()>>>,
}

impl DetectorPlane {
    /// Starts a plane over `membership`: one monitor thread per shard,
    /// probing immediately.
    #[must_use]
    pub fn start(membership: Arc<Membership>, config: DetectorConfig) -> Arc<DetectorPlane> {
        let shards = membership.len();
        // The prior mean is one probe period plus slack, in milliseconds
        // — same role as the simulator detector's `period + 3` ticks.
        let prior_ms = (config.probe_period.as_secs_f64() * 1_000.0).max(1.0) * 1.5;
        let plane = Arc::new(DetectorPlane {
            membership,
            config,
            started: Instant::now(),
            monitors: (0..shards)
                .map(|_| {
                    Mutex::new(ShardMonitor {
                        estimator: PhiEstimator::new(prior_ms, config.window),
                        mood: Mood::Healthy,
                        last_gen: None,
                    })
                })
                .collect(),
            counters: Counters::default(),
            rtts: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            probes: Mutex::new(Vec::new()),
        });
        let handles: Vec<JoinHandle<()>> = (0..shards)
            .map(|shard| {
                let plane = Arc::clone(&plane);
                std::thread::spawn(move || plane.probe_loop(shard))
            })
            .collect();
        *plane.probes.lock().expect("probe handles poisoned") = handles;
        plane
    }

    /// The plane's tuning.
    #[must_use]
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Stops the probe threads and waits for them to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handles = std::mem::take(&mut *self.probes.lock().expect("probe handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Milliseconds since the plane started, offset by 1 so the
    /// estimator's "never heard" sentinel (0) stays distinguishable.
    fn now_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1_000.0 + 1.0
    }

    /// One shard's monitor loop: beat, account, assess, sleep.
    fn probe_loop(&self, shard: usize) {
        let mut conn: Option<Client> = None;
        while !self.stop.load(Ordering::SeqCst) {
            let round = Instant::now();
            self.counters.probes_sent.fetch_add(1, Ordering::Relaxed);
            let addr = self.membership.addr(shard);
            let result = (|| -> Result<u64, crate::client::ClientError> {
                if conn.is_none() && !addr.is_empty() {
                    conn = Some(Client::connect_with_timeout(
                        &addr,
                        Some(self.config.probe_period),
                    )?);
                }
                match conn.as_mut() {
                    Some(c) => c.ping(),
                    None => Err(crate::client::ClientError::Protocol(
                        "shard has not announced an address yet".to_string(),
                    )),
                }
            })();
            match result {
                Ok(generation) => {
                    let rtt = u64::try_from(round.elapsed().as_micros()).unwrap_or(u64::MAX);
                    let mut ring = self.rtts.lock().expect("rtt ring poisoned");
                    if ring.len() >= RTT_RING {
                        ring.remove(0);
                    }
                    ring.push(rtt);
                    drop(ring);
                    self.on_beat(shard, generation);
                }
                Err(_) => {
                    // A failed probe is a missed beat: drop the (possibly
                    // desynchronized) connection and let silence raise φ.
                    self.counters.probe_failures.fetch_add(1, Ordering::Relaxed);
                    conn = None;
                }
            }
            self.assess(shard);
            if let Some(remaining) = self.config.probe_period.checked_sub(round.elapsed()) {
                std::thread::sleep(remaining);
            }
        }
    }

    /// Folds a successful probe into the shard's estimator and state
    /// machine. A suspected shard whose heartbeats resume (and whose
    /// generation is thereby observed) is readmitted on probation; a
    /// generation *change* resets the estimator — the restarted worker's
    /// channel distribution starts over.
    fn on_beat(&self, shard: usize, generation: u64) {
        let now = self.now_ms();
        let mut m = self.monitors[shard].lock().expect("monitor lock poisoned");
        if m.last_gen.is_some_and(|g| g != generation) {
            m.estimator.reset();
        }
        m.last_gen = Some(generation);
        m.estimator.observe(now);
        if m.mood == Mood::Suspected {
            m.mood = Mood::Probation {
                until_ms: now + self.config.probation.as_secs_f64() * 1_000.0,
            };
            self.counters
                .suspects_cleared
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Advances one shard's state machine against the current clock.
    /// Called by the probe loop every round *and* by every query, so
    /// suspicion is raised on time even while the shard's probe thread
    /// is blocked inside a stalled read.
    fn assess(&self, shard: usize) -> ShardSuspicion {
        let now = self.now_ms();
        let mut m = self.monitors[shard].lock().expect("monitor lock poisoned");
        let phi = m.estimator.phi(now);
        match m.mood {
            Mood::Healthy => {
                if phi >= self.config.suspect_threshold {
                    m.mood = Mood::Suspected;
                    self.counters
                        .suspects_raised
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Mood::Suspected => {}
            Mood::Probation { until_ms } => {
                // One missed beat re-suspects: 2.5 periods of silence is
                // a beat lost plus scheduling slack, far below the φ
                // threshold's ~2.3·T periods.
                let missed = now - m.estimator.last_arrival()
                    > self.config.probe_period.as_secs_f64() * 1_000.0 * 2.5;
                if missed {
                    m.mood = Mood::Suspected;
                    self.counters
                        .suspects_raised
                        .fetch_add(1, Ordering::Relaxed);
                } else if now >= until_ms {
                    m.mood = Mood::Healthy;
                }
            }
        }
        ShardSuspicion {
            phi,
            suspected: m.mood == Mood::Suspected,
            probation: matches!(m.mood, Mood::Probation { .. }),
        }
    }

    /// The current suspicion reading for `shard`.
    #[must_use]
    pub fn suspicion(&self, shard: usize) -> ShardSuspicion {
        self.assess(shard)
    }

    /// Whether `shard` is currently suspected (skip it at routing time).
    #[must_use]
    pub fn is_suspected(&self, shard: usize) -> bool {
        self.assess(shard).suspected
    }

    /// Whether a request routed to `shard` should be hedged: φ crossed
    /// the soft threshold but the shard is not (yet) suspected.
    #[must_use]
    pub fn should_hedge(&self, shard: usize) -> bool {
        let s = self.assess(shard);
        !s.suspected && s.phi >= self.config.hedge_threshold
    }

    /// Stable-partitions a replica order so unsuspected shards come
    /// first (suspected ones stay as the last resort, never dropped —
    /// suspicion must not be able to make the cluster refuse a request
    /// it could still serve). Returns whether the primary was demoted,
    /// which the caller should count as a proactive failover.
    #[must_use]
    pub fn prefer_unsuspected(&self, order: &mut Vec<usize>) -> bool {
        if order.is_empty() {
            return false;
        }
        let first = order[0];
        let (clear, suspected): (Vec<usize>, Vec<usize>) =
            order.iter().partition(|&&s| !self.is_suspected(s));
        if clear.is_empty() {
            return false;
        }
        *order = clear;
        order.extend(suspected);
        order[0] != first
    }

    /// The hedge delay: wait this long for the primary before firing the
    /// backup. Derived from the recent probe RTT distribution (3× the
    /// p99, clamped to `[2ms, 2 probe periods]`): a healthy primary
    /// answers well within it, a stalled one is hedged long before any
    /// request deadline.
    #[must_use]
    pub fn hedge_delay(&self) -> Duration {
        let ring = self.rtts.lock().expect("rtt ring poisoned");
        let p99 = if ring.is_empty() {
            0
        } else {
            let mut sorted = ring.clone();
            sorted.sort_unstable();
            sorted[(sorted.len() - 1) * 99 / 100]
        };
        drop(ring);
        let floor = Duration::from_millis(2);
        let cap = self.config.probe_period * 2;
        (Duration::from_micros(p99) * 3).clamp(floor, cap.max(floor))
    }

    /// Counts a request routed away from a suspected primary.
    pub fn note_proactive_failover(&self) {
        self.counters
            .proactive_failovers
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hedge fired (backup request sent).
    pub fn note_hedge_fired(&self) {
        self.counters.hedges_fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hedge whose backup won the race.
    pub fn note_hedge_won(&self) {
        self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a hedge whose primary answered first after all.
    pub fn note_hedge_wasted(&self) {
        self.counters.hedges_wasted.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the plane's counters, wire-ready.
    #[must_use]
    pub fn stats(&self) -> SuspicionStats {
        SuspicionStats {
            probes_sent: self.counters.probes_sent.load(Ordering::Relaxed),
            probe_failures: self.counters.probe_failures.load(Ordering::Relaxed),
            suspects_raised: self.counters.suspects_raised.load(Ordering::Relaxed),
            suspects_cleared: self.counters.suspects_cleared.load(Ordering::Relaxed),
            proactive_failovers: self.counters.proactive_failovers.load(Ordering::Relaxed),
            hedges_fired: self.counters.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.counters.hedges_won.load(Ordering::Relaxed),
            hedges_wasted: self.counters.hedges_wasted.load(Ordering::Relaxed),
        }
    }

    /// Stamps the plane's per-shard suspicion readings onto a cluster
    /// health report (rows are matched by shard index) and recomputes
    /// the `suspected_shards` aggregate.
    pub fn annotate(&self, report: &mut ClusterHealthReport) {
        for row in &mut report.shards {
            if row.shard >= self.monitors.len() {
                continue;
            }
            let s = self.assess(row.shard);
            row.phi = Some(s.phi);
            row.suspected = s.suspected;
            row.probation = s.probation;
        }
        report.suspected_shards = report.shards.iter().filter(|r| r.suspected).count();
    }
}

impl Drop for DetectorPlane {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};
    use crate::wire::{ClusterHealthReport, ShardHealth};

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let until = Instant::now() + deadline;
        while Instant::now() < until {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn live_shard_is_never_suspected_and_accrues_beats() {
        let server = serve(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("serve");
        let membership = Arc::new(Membership::new(vec![server.addr().to_string()]));
        // Default cadence: a false suspicion here would need ~460ms of
        // probe silence against a local in-process server.
        let plane = DetectorPlane::start(Arc::clone(&membership), DetectorConfig::default());
        assert!(wait_until(Duration::from_secs(5), || {
            plane.stats().probes_sent >= 8
        }));
        let s = plane.suspicion(0);
        assert!(!s.suspected, "a live shard must not be suspected");
        assert!(!s.probation);
        assert!(
            s.phi < plane.config().suspect_threshold,
            "φ {} at threshold on a healthy channel",
            s.phi
        );
        assert_eq!(plane.stats().suspects_raised, 0);
        assert!(!plane.should_hedge(0), "healthy primary must not hedge");
        plane.stop();
        server.shutdown();
    }

    #[test]
    fn dead_shard_is_suspected_then_readmitted_on_probation_when_it_heals() {
        // Start against a dead address: silence raises φ past the
        // threshold and the shard is suspected.
        let membership = Arc::new(Membership::new(vec!["127.0.0.1:1".to_string()]));
        let plane = DetectorPlane::start(Arc::clone(&membership), DetectorConfig::fast());
        assert!(
            wait_until(Duration::from_secs(10), || plane.is_suspected(0)),
            "a silent shard must be suspected"
        );
        let stats = plane.stats();
        assert!(stats.suspects_raised >= 1);
        assert!(stats.probe_failures >= 1);

        // The shard "recovers" (a fleet supervisor would re-announce it):
        // heartbeats resume, the shard is readmitted on probation, and
        // after a quiet probation window it is healthy again.
        let server = serve(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("serve");
        membership.set_addr(0, server.addr().to_string());
        assert!(
            wait_until(Duration::from_secs(10), || {
                let s = plane.suspicion(0);
                s.probation || !s.suspected
            }),
            "resumed heartbeats must clear the suspicion"
        );
        assert!(plane.stats().suspects_cleared >= 1);
        assert!(
            wait_until(Duration::from_secs(10), || {
                let s = plane.suspicion(0);
                !s.suspected && !s.probation
            }),
            "a quiet probation window must end in healthy"
        );
        plane.stop();
        server.shutdown();
    }

    #[test]
    fn prefer_unsuspected_demotes_but_never_drops() {
        let server = serve(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("serve");
        // Shard 0 dead, shard 1 alive.
        let membership = Arc::new(Membership::new(vec![
            "127.0.0.1:1".to_string(),
            server.addr().to_string(),
        ]));
        let plane = DetectorPlane::start(Arc::clone(&membership), DetectorConfig::fast());
        assert!(wait_until(Duration::from_secs(10), || plane.is_suspected(0)));

        let mut order = vec![0, 1];
        assert!(plane.prefer_unsuspected(&mut order), "primary demoted");
        assert_eq!(order, vec![1, 0], "suspected shard is last, not gone");

        let mut order = vec![1, 0];
        assert!(!plane.prefer_unsuspected(&mut order), "primary kept");
        assert_eq!(order, vec![1, 0]);

        // All suspected: the order is left alone entirely.
        let mut order = vec![0, 0];
        assert!(!plane.prefer_unsuspected(&mut order));
        assert_eq!(order, vec![0, 0]);
        plane.stop();
        server.shutdown();
    }

    #[test]
    fn hedge_delay_is_bounded_and_rtt_derived() {
        let membership = Arc::new(Membership::new(vec!["127.0.0.1:1".to_string()]));
        let plane = DetectorPlane::start(Arc::clone(&membership), DetectorConfig::fast());
        let delay = plane.hedge_delay();
        assert!(delay >= Duration::from_millis(2));
        assert!(delay <= plane.config().probe_period * 2);
        plane.stop();
    }

    #[test]
    fn annotate_stamps_rows_and_recounts_suspects() {
        let membership = Arc::new(Membership::new(vec!["127.0.0.1:1".to_string()]));
        let plane = DetectorPlane::start(Arc::clone(&membership), DetectorConfig::fast());
        assert!(wait_until(Duration::from_secs(10), || plane.is_suspected(0)));
        let mut report = ClusterHealthReport::aggregate(vec![ShardHealth::new(
            0,
            "127.0.0.1:1".to_string(),
            false,
            0,
            None,
        )]);
        assert_eq!(report.suspected_shards, 0);
        plane.annotate(&mut report);
        assert!(report.shards[0].suspected);
        assert!(report.shards[0].phi.is_some());
        assert_eq!(report.suspected_shards, 1);
        plane.stop();
    }
}
