//! A blocking client for the service protocol.
//!
//! [`Client::batch`] is the workhorse: it writes every request line
//! before reading any response (the requests pipeline through the
//! server's worker pool and complete in whatever order they finish),
//! then reads one line per request and reorders the responses by their
//! echoed `id`s. [`Client::request`] is the batch of one.
//!
//! [`HardenedClient`] wraps `Client` with the fault-masking policy of a
//! production caller: per-request socket deadlines, reconnect-and-resend
//! on a broken or torn connection, and bounded exponential backoff with
//! deterministic jitter on [`ErrorCode::Overloaded`]. Resending is safe
//! because the server deduplicates identical in-flight bodies
//! (single-flight) and memoizes results, so a retried request can only
//! observe the one computation.
//!
//! The salvage machinery is soaked against real wire faults — torn
//! frames, corrupted bytes, mid-response resets, half-open stalls,
//! one-way partitions — through the seeded [`crate::chaosnet`] proxy in
//! `tests/serve_chaosnet.rs`, with [`crate::audit::Auditor`] asserting
//! that every salvage produced a byte-identical answer and every
//! give-up a typed error.

use crate::metrics::StatsReport;
use crate::wire::{
    ClusterHealthReport, ErrorCode, HealthReport, Request, RequestKind, RequestOptions, Response,
    ResponseKind, SCHEMA_VERSION,
};
use ktudc_fd::{ClassifySpec, RegimeVerdict};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The server sent something outside the protocol (bad JSON, an
    /// unknown id, a mismatched payload kind).
    Protocol(String),
    /// A [`HardenedClient`] gave up: every attempt either found the
    /// server overloaded or lost the connection.
    RetriesExhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The failure that ended the final attempt.
        last: String,
    },
    /// The [`HardenedClient`]'s circuit breaker is open: the server shed
    /// [`RetryPolicy::circuit_threshold`] consecutive attempts, so the
    /// client fails fast instead of adding retry load to an overloaded
    /// server. Calls succeed again after a half-open probe gets through.
    CircuitOpen {
        /// Milliseconds until the breaker next allows a probe.
        cooldown_ms: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last failure: {last}")
            }
            ClientError::CircuitOpen { cooldown_ms } => {
                write!(
                    f,
                    "circuit breaker is open; next probe allowed in {cooldown_ms}ms"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a `ktudc-serve` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with_timeout(addr, None)
    }

    /// Connects to a daemon with an optional per-request deadline: both
    /// socket halves time out after `timeout`, so a single read or write
    /// can never block longer than that. A timed-out call surfaces as
    /// [`ClientError::Io`] and leaves the connection unusable (a reply
    /// may still arrive and desynchronize the stream) — reconnect, as
    /// [`HardenedClient`] does.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone/configuration failures.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        writer.set_read_timeout(timeout)?;
        writer.set_write_timeout(timeout)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response.
    ///
    /// A typed server-side failure is a *successful* call returning a
    /// [`ResponseKind::Error`] payload; `Err` means the conversation
    /// itself broke.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Protocol`]
    /// on an out-of-protocol reply.
    pub fn request(&mut self, kind: RequestKind) -> Result<Response, ClientError> {
        let mut responses = self.batch(vec![kind])?;
        responses
            .pop()
            .ok_or_else(|| ClientError::Protocol("empty batch response".to_string()))
    }

    /// Pipelines a batch: writes every request line, then collects one
    /// response per request and returns them **in request order**
    /// (matching the out-of-order completions by id).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Protocol`]
    /// if a reply doesn't parse, answers an id outside the batch, or
    /// duplicates an id.
    pub fn batch(&mut self, kinds: Vec<RequestKind>) -> Result<Vec<Response>, ClientError> {
        self.batch_with_options(
            kinds
                .into_iter()
                .map(|kind| (kind, RequestOptions::default()))
                .collect(),
        )
    }

    /// As [`Client::batch`], with per-request [`RequestOptions`]
    /// (deadline, priority, partial acceptance). A deadline-shed request
    /// answers with a typed [`ErrorCode::DeadlineExceeded`] error — still
    /// a *successful* call.
    ///
    /// # Errors
    ///
    /// As [`Client::batch`].
    pub fn batch_with_options(
        &mut self,
        kinds: Vec<(RequestKind, RequestOptions)>,
    ) -> Result<Vec<Response>, ClientError> {
        let count = kinds.len();
        let (got, err) = self.batch_attempt(kinds);
        if let Some(e) = err {
            return Err(e);
        }
        let mut slots: Vec<Option<Response>> = Vec::new();
        slots.resize_with(count, || None);
        for (offset, response) in got {
            slots[offset] = Some(response);
        }
        Ok(slots.into_iter().flatten().collect())
    }

    /// One batch attempt that *salvages*: returns every response read
    /// before the conversation broke (tagged by offset into `kinds`),
    /// plus the breaking error, if any. [`Client::batch`] is the strict
    /// all-or-error wrapper; [`HardenedClient`] uses the salvaged prefix
    /// so a severed connection only costs the responses not yet read.
    pub(crate) fn batch_attempt(
        &mut self,
        kinds: Vec<(RequestKind, RequestOptions)>,
    ) -> (Vec<(usize, Response)>, Option<ClientError>) {
        let first_id = self.next_id;
        let count = kinds.len();
        let mut lines = String::new();
        for (offset, (kind, options)) in kinds.into_iter().enumerate() {
            let request = Request::with_options(first_id + offset as u64, kind, options);
            match serde_json::to_string(&request) {
                Ok(encoded) => {
                    lines.push_str(&encoded);
                    lines.push('\n');
                }
                Err(e) => {
                    return (
                        Vec::new(),
                        Some(ClientError::Protocol(format!(
                            "request failed to encode: {e}"
                        ))),
                    )
                }
            }
        }
        self.next_id += count as u64;
        if let Err(e) = self
            .writer
            .write_all(lines.as_bytes())
            .and_then(|()| self.writer.flush())
        {
            return (Vec::new(), Some(ClientError::Io(e)));
        }

        let mut got: Vec<(usize, Response)> = Vec::new();
        let mut seen = vec![false; count];
        for _ in 0..count {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return (
                        got,
                        Some(ClientError::Protocol(
                            "server closed the connection mid-batch".to_string(),
                        )),
                    )
                }
                Ok(_) => {}
                Err(e) => return (got, Some(ClientError::Io(e))),
            }
            let response: Response = match serde_json::from_str(line.trim_end()) {
                Ok(r) => r,
                Err(e) => {
                    return (
                        got,
                        Some(ClientError::Protocol(format!("unparseable response: {e}"))),
                    )
                }
            };
            if response.schema_version != SCHEMA_VERSION {
                return (
                    got,
                    Some(ClientError::Protocol(format!(
                        "response schema_version {}, expected {SCHEMA_VERSION}",
                        response.schema_version
                    ))),
                );
            }
            let Some(offset) = response
                .id
                .checked_sub(first_id)
                .map(|o| o as usize)
                .filter(|&o| o < count)
            else {
                return (
                    got,
                    Some(ClientError::Protocol(format!(
                        "response for unknown id {}",
                        response.id
                    ))),
                );
            };
            if seen[offset] {
                return (
                    got,
                    Some(ClientError::Protocol(format!(
                        "duplicate response for id {}",
                        response.id
                    ))),
                );
            }
            seen[offset] = true;
            got.push((offset, response));
        }
        (got, None)
    }

    /// Fetches a metrics snapshot.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// server answers with anything but a stats payload.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.request(RequestKind::Stats)?.result {
            ResponseKind::Stats(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a stats payload, got {other:?}"
            ))),
        }
    }

    /// Fetches a durability health snapshot.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// server answers with anything but a health payload.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.request(RequestKind::Health)?.result {
            ResponseKind::Health(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a health payload, got {other:?}"
            ))),
        }
    }

    /// Fetches a cluster health snapshot (per-shard rows + aggregate).
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// server answers with anything but a cluster-health payload.
    pub fn cluster_health(&mut self) -> Result<ClusterHealthReport, ClientError> {
        match self.request(RequestKind::ClusterHealth)?.result {
            ResponseKind::ClusterHealth(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a cluster-health payload, got {other:?}"
            ))),
        }
    }

    /// Classifies an empirical detector against a fault regime.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// server answers with anything but a classification verdict.
    pub fn classify(&mut self, spec: ClassifySpec) -> Result<RegimeVerdict, ClientError> {
        match self.request(RequestKind::Classify(spec))?.result {
            ResponseKind::Classify(verdict) => Ok(verdict),
            other => Err(ClientError::Protocol(format!(
                "expected a classification verdict, got {other:?}"
            ))),
        }
    }

    /// Sends a heartbeat probe (schema v6); returns the server's
    /// generation from the response envelope. Answered inline by the
    /// server, never queued behind compute — this is the detector
    /// plane's liveness signal.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// server answers with anything but a pong.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let response = self.request(RequestKind::Ping)?;
        match response.result {
            ResponseKind::Pong => Ok(response.generation),
            other => Err(ClientError::Protocol(format!(
                "expected a pong, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// As [`Client::stats`], for the shutdown acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Shutdown)?.result {
            ResponseKind::Shutdown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected a shutdown acknowledgement, got {other:?}"
            ))),
        }
    }
}

/// Retry/backoff policy of a [`HardenedClient`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Socket deadline for each read/write (per-request deadline: no
    /// single exchange can hang longer than this).
    pub request_timeout: Duration,
    /// Retries after the initial attempt before giving up with
    /// [`ClientError::RetriesExhausted`]. The budget counts
    /// *consecutive attempts without progress*: an attempt that lands at
    /// least one new response resets it, so a long batch cannot starve
    /// merely because every attempt loses its connection eventually.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Consecutive overload sheds (attempts that made no progress and
    /// saw `Overloaded`) before the circuit breaker opens and calls fail
    /// fast with [`ClientError::CircuitOpen`]. The default is 8 —
    /// deliberately above any single call's retry budget
    /// (`max_retries + 1` attempts), so one shed-out call still fails
    /// with [`ClientError::RetriesExhausted`] as before and only
    /// *persistent* shedding across calls trips the breaker. 0 is an
    /// explicit opt-out that disables the breaker entirely.
    pub circuit_threshold: u32,
    /// How long an open circuit rejects calls before letting one
    /// half-open probe through.
    pub circuit_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            request_timeout: Duration::from_secs(10),
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x6b74_7564_6373_7276,
            circuit_threshold: 8,
            circuit_cooldown: Duration::from_millis(250),
        }
    }
}

/// Whether an error means "reconnect and resend" rather than "give up".
///
/// Retriable: any I/O failure (includes deadline expiry), a connection
/// closed mid-conversation, and a torn/unparseable reply (the signature
/// of a short write). Not retriable: schema-version mismatches and
/// id-accounting violations — those mean the peer is not the protocol
/// partner we think it is, and resending cannot help.
fn retriable(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) => true,
        ClientError::Protocol(msg) => {
            msg.contains("closed the connection")
                || msg.contains("unparseable response")
                || msg.contains("empty batch response")
        }
        ClientError::RetriesExhausted { .. } => false,
        ClientError::CircuitOpen { .. } => false,
    }
}

/// One step of `splitmix64`: the client-side jitter PRNG. Inlined so the
/// crate needs no RNG dependency; deterministic per [`RetryPolicy::jitter_seed`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A noteworthy event observed by a [`HardenedClient`] while masking
/// faults, surfaced so callers can see *why* the masking happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// Responses started arriving from a different server generation:
    /// the daemon restarted between two responses this client read.
    /// Everything the dead process held only in memory — its
    /// single-flight waiter lists, its un-snapshotted cache tail — is
    /// gone with it, so the client re-derives outstanding work by
    /// resending it to the new process instead of trusting any answer
    /// the old one promised.
    ServerRestarted {
        /// Generation of the responses read before the change.
        old_gen: u64,
        /// Generation of the response that revealed the restart.
        new_gen: u64,
    },
}

/// Counters of what a [`HardenedClient`] has masked or observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientMetrics {
    /// Connections established after the first one (reconnections).
    pub reconnects: u64,
    /// Backoff sleeps taken (overload sheds and transport failures).
    pub backoffs: u64,
    /// Server restarts detected via a response generation change.
    pub server_restarts: u64,
    /// Times the circuit breaker opened after consecutive sheds.
    pub circuit_opens: u64,
    /// Backoff sleeps stretched to honor a server `retry_after_ms` hint
    /// larger than the computed backoff.
    pub retry_hints_honored: u64,
}

/// A self-healing client: [`Client`] plus deadlines, reconnection, and
/// bounded jittered backoff.
///
/// Construction never touches the network; the connection is established
/// lazily and re-established whenever an attempt loses it. On a
/// transport failure the *entire outstanding remainder* of a batch is
/// resent on a fresh connection — safe because the server computes each
/// distinct body at most once (single-flight + memoization), so a
/// resend returns the original computation's payload. On
/// [`ErrorCode::Overloaded`] only the shed requests are retried, after a
/// backoff sleep in `[cap/2, cap]` where `cap` doubles per retry up to
/// [`RetryPolicy::max_backoff`].
pub struct HardenedClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    jitter_state: u64,
    ever_connected: bool,
    /// Generation of the last response read; `None` until the first one.
    last_generation: Option<u64>,
    /// Consecutive zero-progress attempts shed with `Overloaded`, for
    /// the circuit breaker.
    consecutive_sheds: u32,
    /// While `Some`, the breaker is open and calls fail fast until the
    /// instant passes (then one half-open probe is allowed).
    circuit_open_until: Option<Instant>,
    metrics: ClientMetrics,
    events: Vec<ClientEvent>,
}

impl HardenedClient {
    /// Creates a client for `addr` (no connection is made yet).
    #[must_use]
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> HardenedClient {
        HardenedClient {
            addr: addr.into(),
            policy,
            conn: None,
            jitter_state: policy.jitter_seed,
            ever_connected: false,
            last_generation: None,
            consecutive_sheds: 0,
            circuit_open_until: None,
            metrics: ClientMetrics::default(),
            events: Vec::new(),
        }
    }

    /// What this client has masked and observed so far.
    #[must_use]
    pub fn metrics(&self) -> ClientMetrics {
        self.metrics
    }

    /// Drains the accumulated [`ClientEvent`]s (oldest first).
    pub fn take_events(&mut self) -> Vec<ClientEvent> {
        std::mem::take(&mut self.events)
    }

    /// The server generation observed on the most recent response.
    #[must_use]
    pub fn last_generation(&self) -> Option<u64> {
        self.last_generation
    }

    /// Tracks the generation stamped on a response; returns `true` when
    /// it reveals a server restart (the generation changed between two
    /// responses this client read).
    fn observe_generation(&mut self, generation: u64) -> bool {
        let restarted = match self.last_generation {
            Some(old) if old != generation => {
                self.metrics.server_restarts += 1;
                self.events.push(ClientEvent::ServerRestarted {
                    old_gen: old,
                    new_gen: generation,
                });
                true
            }
            _ => false,
        };
        self.last_generation = Some(generation);
        restarted
    }

    /// The backoff sleep before retry number `attempt` (1-based): a
    /// deterministic jitter in `[cap/2, cap]`, `cap` doubling from
    /// [`RetryPolicy::base_backoff`] up to [`RetryPolicy::max_backoff`].
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let base = u64::try_from(self.policy.base_backoff.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let max = u64::try_from(self.policy.max_backoff.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let exp = attempt.saturating_sub(1).min(16);
        let cap = base.saturating_mul(1 << exp).min(max);
        let low = cap.div_ceil(2);
        let jitter = splitmix64(&mut self.jitter_state) % (cap - low + 1);
        Duration::from_millis(low + jitter)
    }

    /// Records a failed attempt; returns the terminal error once the
    /// budget is spent, otherwise sleeps the backoff and allows another.
    /// The sleep is stretched to `min_delay` when the server's
    /// `retry_after_ms` hint asks for longer than the computed backoff —
    /// the server knows its queue, the client only knows its schedule.
    fn spend_attempt(
        &mut self,
        attempts: &mut u32,
        last: &str,
        min_delay: Duration,
    ) -> Result<(), ClientError> {
        *attempts += 1;
        if *attempts > self.policy.max_retries {
            return Err(ClientError::RetriesExhausted {
                attempts: *attempts,
                last: last.to_string(),
            });
        }
        self.metrics.backoffs += 1;
        let backoff = self.backoff_delay(*attempts);
        if min_delay > backoff {
            self.metrics.retry_hints_honored += 1;
        }
        std::thread::sleep(backoff.max(min_delay));
        Ok(())
    }

    /// Applies one shed observation to the breaker. Returns the fail-fast
    /// error when this shed opens the circuit (threshold reached).
    fn note_shed(&mut self) -> Result<(), ClientError> {
        self.consecutive_sheds = self.consecutive_sheds.saturating_add(1);
        if self.policy.circuit_threshold > 0
            && self.consecutive_sheds >= self.policy.circuit_threshold
        {
            self.metrics.circuit_opens += 1;
            self.circuit_open_until = Some(Instant::now() + self.policy.circuit_cooldown);
            return Err(ClientError::CircuitOpen {
                cooldown_ms: u64::try_from(self.policy.circuit_cooldown.as_millis())
                    .unwrap_or(u64::MAX),
            });
        }
        Ok(())
    }

    /// As [`Client::batch`], but masking transport faults and overload.
    ///
    /// Returns responses in request order. Typed per-request failures
    /// other than `Overloaded` (e.g. `BadRequest`) are still *successful*
    /// responses, exactly as with the plain client. Responses salvaged
    /// from an attempt that later lost its connection are kept — only
    /// the still-unanswered requests are resent.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when the retry budget runs out;
    /// non-retriable protocol violations pass through unchanged.
    pub fn batch(&mut self, kinds: Vec<RequestKind>) -> Result<Vec<Response>, ClientError> {
        self.batch_with_options(
            kinds
                .into_iter()
                .map(|kind| (kind, RequestOptions::default()))
                .collect(),
        )
    }

    /// As [`HardenedClient::batch`], with per-request [`RequestOptions`].
    ///
    /// Only `Overloaded` sheds are retried. A `DeadlineExceeded` error is
    /// *final* — the request's own time ran out, and a retry would spend
    /// a fresh deadline on work the caller declared stale — and so is a
    /// [`ResponseKind::Aborted`] partial (`accept_partial`): both fill
    /// their slot like any other typed response.
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::batch`], plus [`ClientError::CircuitOpen`]
    /// when the breaker is enabled and open.
    pub fn batch_with_options(
        &mut self,
        kinds: Vec<(RequestKind, RequestOptions)>,
    ) -> Result<Vec<Response>, ClientError> {
        // Fail fast while the breaker is open; once the cooldown passes,
        // this call proceeds as the half-open probe.
        if let Some(until) = self.circuit_open_until {
            let now = Instant::now();
            if now < until {
                return Err(ClientError::CircuitOpen {
                    cooldown_ms: u64::try_from((until - now).as_millis()).unwrap_or(u64::MAX),
                });
            }
        }
        let total = kinds.len();
        let mut slots: Vec<Option<Response>> = Vec::new();
        slots.resize_with(total, || None);
        let mut attempts: u32 = 0;
        loop {
            let outstanding: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
            if outstanding.is_empty() {
                return Ok(slots.into_iter().flatten().collect());
            }
            if self.conn.is_none() {
                match Client::connect_with_timeout(&self.addr, Some(self.policy.request_timeout)) {
                    Ok(conn) => {
                        if self.ever_connected {
                            self.metrics.reconnects += 1;
                        }
                        self.ever_connected = true;
                        self.conn = Some(conn);
                    }
                    Err(e) => {
                        self.spend_attempt(&mut attempts, &e.to_string(), Duration::ZERO)?;
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connection just established");
            // After a zero-progress attempt, narrow to a single request:
            // a periodic server fault can align with a fixed batch size
            // so that the same request is always the one lost, and
            // shrinking the batch breaks that alignment (it also eases
            // the queue pressure behind an overload).
            let selected: Vec<usize> = if attempts > 0 {
                vec![outstanding[0]]
            } else {
                outstanding.clone()
            };
            let resend: Vec<(RequestKind, RequestOptions)> =
                selected.iter().map(|&i| kinds[i].clone()).collect();
            let (got, err) = conn.batch_attempt(resend);
            let mut progress = false;
            let mut shed: Option<(String, u64)> = None;
            let mut restarted = false;
            for (offset, response) in got {
                restarted |= self.observe_generation(response.generation);
                match &response.result {
                    ResponseKind::Error(e) if e.code == ErrorCode::Overloaded => {
                        shed = Some((e.message.clone(), e.retry_after_ms));
                    }
                    _ => {
                        slots[selected[offset]] = Some(response);
                        progress = true;
                    }
                }
            }
            // Progress resets the no-progress budget; so does a detected
            // restart — the process whose overload or in-flight state we
            // were waiting out no longer exists, so stale evidence must
            // not burn retries against its replacement.
            if progress || restarted {
                attempts = 0;
            }
            if progress {
                // The server accepted work: the overload the breaker was
                // counting has lifted (also closes a half-open circuit).
                self.consecutive_sheds = 0;
                self.circuit_open_until = None;
            }
            match err {
                None => {
                    if let Some((message, retry_after_ms)) = shed {
                        if !progress {
                            self.note_shed()?;
                        }
                        self.spend_attempt(
                            &mut attempts,
                            &message,
                            Duration::from_millis(retry_after_ms),
                        )?;
                    }
                }
                Some(e) if retriable(&e) => {
                    self.conn = None;
                    self.spend_attempt(&mut attempts, &e.to_string(), Duration::ZERO)?;
                }
                Some(e) => return Err(e),
            }
        }
    }

    /// Sends one request, masking faults; the batch of one.
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::batch`].
    pub fn request(&mut self, kind: RequestKind) -> Result<Response, ClientError> {
        let mut responses = self.batch(vec![kind])?;
        responses
            .pop()
            .ok_or_else(|| ClientError::Protocol("empty batch response".to_string()))
    }

    /// Sends one request with explicit options, masking faults.
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::batch_with_options`].
    pub fn request_with_options(
        &mut self,
        kind: RequestKind,
        options: RequestOptions,
    ) -> Result<Response, ClientError> {
        let mut responses = self.batch_with_options(vec![(kind, options)])?;
        responses
            .pop()
            .ok_or_else(|| ClientError::Protocol("empty batch response".to_string()))
    }

    /// Fetches a metrics snapshot, masking faults.
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::request`], plus [`ClientError::Protocol`]
    /// when the server answers with anything but a stats payload.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.request(RequestKind::Stats)?.result {
            ResponseKind::Stats(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a stats payload, got {other:?}"
            ))),
        }
    }

    /// Fetches a durability health snapshot, masking faults.
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::request`], plus [`ClientError::Protocol`]
    /// when the server answers with anything but a health payload.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        match self.request(RequestKind::Health)?.result {
            ResponseKind::Health(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a health payload, got {other:?}"
            ))),
        }
    }

    /// Fetches a cluster health snapshot, masking faults.
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::request`], plus [`ClientError::Protocol`]
    /// when the server answers with anything but a cluster-health
    /// payload.
    pub fn cluster_health(&mut self) -> Result<ClusterHealthReport, ClientError> {
        match self.request(RequestKind::ClusterHealth)?.result {
            ResponseKind::ClusterHealth(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a cluster-health payload, got {other:?}"
            ))),
        }
    }

    /// Classifies an empirical detector against a fault regime, masking
    /// faults (classification is deterministic per spec and memoized, so
    /// a resend is harmless).
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::request`], plus [`ClientError::Protocol`]
    /// when the server answers with anything but a classification
    /// verdict.
    pub fn classify(&mut self, spec: ClassifySpec) -> Result<RegimeVerdict, ClientError> {
        match self.request(RequestKind::Classify(spec))?.result {
            ResponseKind::Classify(verdict) => Ok(verdict),
            other => Err(ClientError::Protocol(format!(
                "expected a classification verdict, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit, masking faults (shutdown is
    /// idempotent, so a resend is harmless).
    ///
    /// # Errors
    ///
    /// As [`HardenedClient::stats`], for the shutdown acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Shutdown)?.result {
            ResponseKind::Shutdown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected a shutdown acknowledgement, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(8),
            max_backoff: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let delays: Vec<Duration> = {
            let mut c = HardenedClient::new("unused:0", policy);
            (1..=8).map(|a| c.backoff_delay(a)).collect()
        };
        let again: Vec<Duration> = {
            let mut c = HardenedClient::new("unused:0", policy);
            (1..=8).map(|a| c.backoff_delay(a)).collect()
        };
        assert_eq!(delays, again, "same seed must give the same schedule");
        for (i, d) in delays.iter().enumerate() {
            let attempt = i as u32 + 1;
            let cap = 8u64.saturating_mul(1 << (attempt - 1)).min(100);
            let ms = u64::try_from(d.as_millis()).unwrap();
            assert!(
                ms >= cap.div_ceil(2) && ms <= cap,
                "attempt {attempt}: {ms}ms outside [{}, {cap}]",
                cap.div_ceil(2)
            );
        }
        // The cap binds from attempt 5 on (8 << 4 = 128 > 100).
        assert!(delays[7] <= Duration::from_millis(100));
    }

    #[test]
    fn transport_faults_are_retriable_but_contract_violations_are_not() {
        assert!(retriable(&ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "read deadline expired"
        ))));
        assert!(retriable(&ClientError::Protocol(
            "server closed the connection mid-batch".to_string()
        )));
        assert!(retriable(&ClientError::Protocol(
            "unparseable response: EOF while parsing".to_string()
        )));
        assert!(!retriable(&ClientError::Protocol(
            "response schema_version 9, expected 2".to_string()
        )));
        assert!(!retriable(&ClientError::Protocol(
            "duplicate response for id 3".to_string()
        )));
        assert!(!retriable(&ClientError::RetriesExhausted {
            attempts: 6,
            last: "queue full".to_string()
        }));
        assert!(!retriable(&ClientError::CircuitOpen { cooldown_ms: 250 }));
    }

    #[test]
    fn circuit_breaker_opens_at_threshold_and_closes_on_progress() {
        let mut c = HardenedClient::new(
            "unused:0",
            RetryPolicy {
                circuit_threshold: 3,
                circuit_cooldown: Duration::from_secs(60),
                ..RetryPolicy::default()
            },
        );
        assert!(c.note_shed().is_ok());
        assert!(c.note_shed().is_ok());
        let opened = c.note_shed();
        assert!(matches!(opened, Err(ClientError::CircuitOpen { .. })));
        assert_eq!(c.metrics().circuit_opens, 1);
        assert!(c.circuit_open_until.is_some());
        // While open, calls fail fast without touching the network (the
        // address is unresolvable, so reaching the connect path would
        // error differently).
        let err = c.batch(vec![RequestKind::Stats]).unwrap_err();
        assert!(matches!(err, ClientError::CircuitOpen { .. }));
        // What progress does in batch(): resets the streak and closes
        // the breaker.
        c.consecutive_sheds = 0;
        c.circuit_open_until = None;
        assert!(c.note_shed().is_ok());
    }

    #[test]
    fn disabled_breaker_never_opens() {
        // 0 is the explicit opt-out (the pre-default behavior).
        let mut c = HardenedClient::new(
            "unused:0",
            RetryPolicy {
                circuit_threshold: 0,
                ..RetryPolicy::default()
            },
        );
        for _ in 0..100 {
            assert!(c.note_shed().is_ok());
        }
        assert_eq!(c.metrics().circuit_opens, 0);
        assert!(c.circuit_open_until.is_none());
    }

    #[test]
    fn default_breaker_is_armed_above_one_calls_retry_budget() {
        let policy = RetryPolicy::default();
        assert!(
            policy.circuit_threshold > 0,
            "the breaker must be on by default"
        );
        // A single call sheds at most max_retries + 1 consecutive times
        // before RetriesExhausted; the default threshold must sit above
        // that so one shed-out call never trips the breaker by itself.
        assert!(policy.circuit_threshold > policy.max_retries + 1);
        let mut c = HardenedClient::new("unused:0", policy);
        for _ in 0..policy.max_retries + 1 {
            assert!(c.note_shed().is_ok());
        }
        assert_eq!(c.metrics().circuit_opens, 0);
        // Persistent shedding past the threshold does open it.
        let mut last = c.note_shed();
        while last.is_ok() {
            last = c.note_shed();
        }
        assert!(matches!(last, Err(ClientError::CircuitOpen { .. })));
        assert_eq!(c.metrics().circuit_opens, 1);
    }

    #[test]
    fn retry_hint_stretches_but_never_shortens_the_backoff() {
        let policy = RetryPolicy {
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let mut c = HardenedClient::new("unused:0", policy);
        let mut attempts = 0;
        // A hint above the computed backoff is honored (and counted).
        let before = Instant::now();
        c.spend_attempt(&mut attempts, "shed", Duration::from_millis(20))
            .unwrap();
        assert!(before.elapsed() >= Duration::from_millis(20));
        assert_eq!(c.metrics().retry_hints_honored, 1);
        // A zero hint leaves the (tiny) backoff alone.
        c.spend_attempt(&mut attempts, "shed", Duration::ZERO)
            .unwrap();
        assert_eq!(c.metrics().retry_hints_honored, 1);
        // The budget still runs out as before.
        assert!(matches!(
            c.spend_attempt(&mut attempts, "shed", Duration::ZERO),
            Err(ClientError::RetriesExhausted { attempts: 3, .. })
        ));
    }

    #[test]
    fn generation_changes_surface_as_server_restarted_events() {
        let mut c = HardenedClient::new("unused:0", RetryPolicy::default());
        assert_eq!(c.last_generation(), None);
        // First observation establishes the baseline, no event.
        assert!(!c.observe_generation(3));
        // Same generation: steady state.
        assert!(!c.observe_generation(3));
        assert_eq!(c.metrics().server_restarts, 0);
        assert!(c.take_events().is_empty());
        // A different generation is a restart.
        assert!(c.observe_generation(4));
        assert_eq!(c.metrics().server_restarts, 1);
        assert_eq!(
            c.take_events(),
            vec![ClientEvent::ServerRestarted {
                old_gen: 3,
                new_gen: 4
            }]
        );
        // Events drain; metrics persist.
        assert!(c.take_events().is_empty());
        assert!(c.observe_generation(7));
        assert_eq!(c.metrics().server_restarts, 2);
        assert_eq!(c.last_generation(), Some(7));
    }
}
