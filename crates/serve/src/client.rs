//! A blocking client for the service protocol.
//!
//! [`Client::batch`] is the workhorse: it writes every request line
//! before reading any response (the requests pipeline through the
//! server's worker pool and complete in whatever order they finish),
//! then reads one line per request and reorders the responses by their
//! echoed `id`s. [`Client::request`] is the batch of one.

use crate::metrics::StatsReport;
use crate::wire::{Request, RequestKind, Response, ResponseKind, SCHEMA_VERSION};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(std::io::Error),
    /// The server sent something outside the protocol (bad JSON, an
    /// unknown id, a mismatched payload kind).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection to a `ktudc-serve` daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response.
    ///
    /// A typed server-side failure is a *successful* call returning a
    /// [`ResponseKind::Error`] payload; `Err` means the conversation
    /// itself broke.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Protocol`]
    /// on an out-of-protocol reply.
    pub fn request(&mut self, kind: RequestKind) -> Result<Response, ClientError> {
        let mut responses = self.batch(vec![kind])?;
        responses
            .pop()
            .ok_or_else(|| ClientError::Protocol("empty batch response".to_string()))
    }

    /// Pipelines a batch: writes every request line, then collects one
    /// response per request and returns them **in request order**
    /// (matching the out-of-order completions by id).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Protocol`]
    /// if a reply doesn't parse, answers an id outside the batch, or
    /// duplicates an id.
    pub fn batch(&mut self, kinds: Vec<RequestKind>) -> Result<Vec<Response>, ClientError> {
        let first_id = self.next_id;
        let count = kinds.len();
        let mut lines = String::new();
        for (offset, kind) in kinds.into_iter().enumerate() {
            let request = Request::new(first_id + offset as u64, kind);
            lines
                .push_str(&serde_json::to_string(&request).map_err(|e| {
                    ClientError::Protocol(format!("request failed to encode: {e}"))
                })?);
            lines.push('\n');
        }
        self.next_id += count as u64;
        self.writer.write_all(lines.as_bytes())?;
        self.writer.flush()?;

        let mut slots: Vec<Option<Response>> = vec![None; count];
        for _ in 0..count {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    "server closed the connection mid-batch".to_string(),
                ));
            }
            let response: Response = serde_json::from_str(line.trim_end())
                .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
            if response.schema_version != SCHEMA_VERSION {
                return Err(ClientError::Protocol(format!(
                    "response schema_version {}, expected {SCHEMA_VERSION}",
                    response.schema_version
                )));
            }
            let slot = response
                .id
                .checked_sub(first_id)
                .map(|o| o as usize)
                .filter(|&o| o < count)
                .ok_or_else(|| {
                    ClientError::Protocol(format!("response for unknown id {}", response.id))
                })?;
            if slots[slot].is_some() {
                return Err(ClientError::Protocol(format!(
                    "duplicate response for id {}",
                    response.id
                )));
            }
            slots[slot] = Some(response);
        }
        Ok(slots.into_iter().flatten().collect())
    }

    /// Fetches a metrics snapshot.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::Protocol`] when the
    /// server answers with anything but a stats payload.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.request(RequestKind::Stats)?.result {
            ResponseKind::Stats(report) => Ok(report),
            other => Err(ClientError::Protocol(format!(
                "expected a stats payload, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// As [`Client::stats`], for the shutdown acknowledgement.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Shutdown)?.result {
            ResponseKind::Shutdown => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected a shutdown acknowledgement, got {other:?}"
            ))),
        }
    }
}
