//! Cluster consistency auditor — the uniform invariants, checked on the
//! wire.
//!
//! The paper's *uniformity* requirement is a "zero wrong answers, even
//! at failed or degraded participants" guarantee. On the serve plane
//! that becomes a concrete wire contract, and this module is its
//! referee: an [`Auditor`] is handed the ground truth for every
//! scenario a chaos campaign will exercise (computed directly, with no
//! network in the way), then every response, typed failure, or
//! harness-observed anomaly is recorded against it. [`Auditor::report`]
//! condenses the ledger into an [`AuditReport`] asserting the uniform
//! invariants:
//!
//! * **Byte-identical answers** — every payload equals the direct
//!   computation for its scenario, byte for byte in canonical JSON; a
//!   payload for a scenario with no registered truth is also a wrong
//!   answer (the auditor refuses to be blind).
//! * **Typed-error-only degradation** — every non-payload outcome is a
//!   typed wire error or a typed client error. Panics, hangs, and
//!   silently truncated results are recorded via
//!   [`Auditor::record_untyped`] and any count above zero fails the
//!   audit.
//! * **Exactly-once compute** — the caller feeds the server-side
//!   computed-outcome count ([`Auditor::note_computed`]); it must equal
//!   the number of *unique* scenarios, however many resend storms the
//!   chaos schedule provoked.
//! * **Hedges never double-compute** — with a hedged-request count fed
//!   ([`Auditor::note_hedges`]), firing hedges must not have raised the
//!   compute count above the unique scenarios: a hedge may only win a
//!   race, never buy its answer with duplicate work.
//! * **Per-worker generation monotonicity** — within each answering
//!   shard (or the single server), response generations never regress;
//!   a regression means a stale process answered after its successor.
//! * **Bounded latency** — with a bound armed
//!   ([`Auditor::with_latency_bound_ms`]), every recorded outcome must
//!   have resolved inside it: detection plus failover must be prompt,
//!   not merely eventual.
//! * **Zero stuck connections** — the caller reports the server's
//!   post-campaign watchdog count ([`Auditor::note_stuck_connections`]).
//!
//! The auditor is `Sync` (interior mutex) so a fan-out campaign can
//! record from many client threads at once.

use crate::client::ClientError;
use crate::wire::{RequestKind, Response, ResponseKind};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

/// Canonical key of a scenario: the same canonical JSON string the
/// scenario cache and the hash ring key on.
fn scenario_key(kind: &RequestKind) -> String {
    serde_json::to_string(kind).unwrap_or_default()
}

/// One recorded outcome.
#[derive(Clone, Debug)]
enum Outcome {
    /// A payload response: canonical JSON of its result.
    Payload {
        result: String,
        generation: u64,
        shard: Option<usize>,
    },
    /// A typed wire error (`ResponseKind::Error`), by code name.
    TypedWireError(String),
    /// A typed client error ([`ClientError`]), by variant name.
    TypedClientError(String),
    /// Anything untyped: a panic, a hang the harness had to break, a
    /// silently truncated result a caller accepted. Always a failure.
    Untyped(String),
}

#[derive(Debug, Default)]
struct Ledger {
    expected: HashMap<String, String>,
    rows: Vec<(String, Outcome, u64)>,
    computed: Option<u64>,
    stuck_connections: Option<u64>,
    hedges_fired: u64,
}

/// Records a chaos campaign's every request/response and checks the
/// uniform invariants. See the module docs for the contract.
#[derive(Debug, Default)]
pub struct Auditor {
    latency_bound_ms: Option<u64>,
    ledger: Mutex<Ledger>,
}

impl Auditor {
    /// An empty auditor with no latency bound.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a per-outcome latency bound: any recorded outcome that took
    /// longer than `ms` to resolve counts as a latency violation.
    #[must_use]
    pub fn with_latency_bound_ms(mut self, ms: u64) -> Self {
        self.latency_bound_ms = Some(ms);
        self
    }

    /// Registers the direct-computation ground truth for `kind`.
    /// Payloads recorded for `kind` must match `result` byte-for-byte
    /// in canonical JSON.
    pub fn expect(&self, kind: &RequestKind, result: &ResponseKind) {
        let mut ledger = self.ledger.lock().expect("audit ledger poisoned");
        ledger.expected.insert(
            scenario_key(kind),
            serde_json::to_string(result).unwrap_or_default(),
        );
    }

    /// Number of distinct scenarios with registered ground truth.
    #[must_use]
    pub fn expected_scenarios(&self) -> usize {
        self.ledger
            .lock()
            .expect("audit ledger poisoned")
            .expected
            .len()
    }

    /// Records a response the campaign received for `kind` after
    /// `latency` of wall-clock effort (retries included).
    pub fn record_response(&self, kind: &RequestKind, response: &Response, latency: Duration) {
        let outcome = match &response.result {
            ResponseKind::Error(e) => Outcome::TypedWireError(format!("{:?}", e.code)),
            other => Outcome::Payload {
                result: serde_json::to_string(other).unwrap_or_default(),
                generation: response.generation,
                shard: response.shard,
            },
        };
        self.push(kind, outcome, latency);
    }

    /// Records a typed client-side failure (every [`ClientError`]
    /// variant is typed by construction).
    pub fn record_client_error(&self, kind: &RequestKind, err: &ClientError, latency: Duration) {
        let name = match err {
            ClientError::Io(_) => "Io",
            ClientError::Protocol(_) => "Protocol",
            ClientError::RetriesExhausted { .. } => "RetriesExhausted",
            ClientError::CircuitOpen { .. } => "CircuitOpen",
        };
        self.push(kind, Outcome::TypedClientError(name.to_string()), latency);
    }

    /// Records an untyped failure — a panic, a hang the harness had to
    /// break, anything the typed vocabulary does not cover. Any such
    /// record fails the audit.
    pub fn record_untyped(&self, kind: &RequestKind, what: impl Into<String>, latency: Duration) {
        self.push(kind, Outcome::Untyped(what.into()), latency);
    }

    /// Feeds the server-side count of *computed* (non-cached,
    /// non-error) outcomes, for the exactly-once check.
    pub fn note_computed(&self, computed: u64) {
        let mut ledger = self.ledger.lock().expect("audit ledger poisoned");
        ledger.computed = Some(computed);
    }

    /// Feeds the post-campaign stuck-worker/stuck-connection count from
    /// the server's watchdog.
    pub fn note_stuck_connections(&self, stuck: u64) {
        let mut ledger = self.ledger.lock().expect("audit ledger poisoned");
        ledger.stuck_connections = Some(stuck);
    }

    /// Feeds the campaign's hedged-request count (backup requests fired
    /// by the detector plane). With hedges in play, exactly-once compute
    /// is only guaranteed when the primary never received the request —
    /// `hedges_never_double_compute` asserts that the campaign's hedging
    /// indeed added zero duplicate compute.
    pub fn note_hedges(&self, fired: u64) {
        let mut ledger = self.ledger.lock().expect("audit ledger poisoned");
        ledger.hedges_fired = fired;
    }

    fn push(&self, kind: &RequestKind, outcome: Outcome, latency: Duration) {
        let latency_ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        let mut ledger = self.ledger.lock().expect("audit ledger poisoned");
        ledger.rows.push((scenario_key(kind), outcome, latency_ms));
    }

    /// Condenses the ledger into the invariant verdicts.
    #[must_use]
    pub fn report(&self) -> AuditReport {
        let ledger = self.ledger.lock().expect("audit ledger poisoned");
        let mut report = AuditReport {
            latency_bound_ms: self.latency_bound_ms,
            unique_scenarios: ledger.expected.len() as u64,
            computed: ledger.computed,
            stuck_connections: ledger.stuck_connections.unwrap_or(0),
            hedges_fired: ledger.hedges_fired,
            ..AuditReport::default()
        };
        // Generation monotonicity is judged per answering shard, in
        // recorded order; `None` (a direct single-process answer) is
        // its own lane.
        let mut last_gen: HashMap<Option<usize>, u64> = HashMap::new();
        let mut breakdown: BTreeMap<String, u64> = BTreeMap::new();
        for (key, outcome, latency_ms) in &ledger.rows {
            report.requests += 1;
            report.max_latency_ms = report.max_latency_ms.max(*latency_ms);
            if let Some(bound) = self.latency_bound_ms {
                if *latency_ms > bound {
                    report.latency_violations += 1;
                }
            }
            match outcome {
                Outcome::Payload {
                    result,
                    generation,
                    shard,
                } => {
                    report.payloads += 1;
                    match ledger.expected.get(key) {
                        Some(expected) if expected == result => {}
                        Some(_) | None => report.wrong_answers += 1,
                    }
                    let last = last_gen.entry(*shard).or_insert(*generation);
                    if *generation < *last {
                        report.generation_regressions += 1;
                    } else {
                        *last = *generation;
                    }
                }
                Outcome::TypedWireError(code) => {
                    report.typed_wire_errors += 1;
                    *breakdown.entry(format!("wire:{code}")).or_insert(0) += 1;
                }
                Outcome::TypedClientError(name) => {
                    report.typed_client_errors += 1;
                    *breakdown.entry(format!("client:{name}")).or_insert(0) += 1;
                }
                Outcome::Untyped(what) => {
                    report.untyped_failures += 1;
                    *breakdown.entry(format!("untyped:{what}")).or_insert(0) += 1;
                }
            }
        }
        report.failure_breakdown = breakdown
            .into_iter()
            .map(|(label, count)| FailureCount { label, count })
            .collect();
        report.exactly_once = report
            .computed
            .map(|computed| computed == report.unique_scenarios);
        // Vacuously true with no hedges; with hedges fired, true exactly
        // when the compute count still matched the unique scenarios —
        // i.e. no hedge leg caused a second computation of its scenario.
        report.hedges_never_double_compute = report
            .computed
            .map(|computed| report.hedges_fired == 0 || computed == report.unique_scenarios);
        report.zero_wrong_answers = report.wrong_answers == 0;
        report.no_untyped_failures = report.untyped_failures == 0;
        report.latency_within_bound = report.latency_violations == 0;
        report.passed = report.zero_wrong_answers
            && report.no_untyped_failures
            && report.generation_regressions == 0
            && report.stuck_connections == 0
            && report.latency_within_bound
            && report.exactly_once != Some(false)
            && report.hedges_never_double_compute != Some(false);
        report
    }
}

/// The condensed verdicts of a chaos campaign. `passed` is the
/// conjunction of every uniform invariant the ledger could check.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct AuditReport {
    /// Outcomes recorded.
    pub requests: u64,
    /// Payload responses among them.
    pub payloads: u64,
    /// Typed wire errors (`ResponseKind::Error`).
    pub typed_wire_errors: u64,
    /// Typed client errors ([`ClientError`]).
    pub typed_client_errors: u64,
    /// Untyped failures (panics, hangs, silent truncation). Must be 0.
    pub untyped_failures: u64,
    /// Payloads differing from (or missing) their ground truth. Must
    /// be 0.
    pub wrong_answers: u64,
    /// Responses whose generation regressed within their shard lane.
    pub generation_regressions: u64,
    /// Distinct scenarios with registered ground truth.
    pub unique_scenarios: u64,
    /// Server-side computed-outcome count, when the caller fed one.
    pub computed: Option<u64>,
    /// `computed == unique_scenarios`; `None` when not fed.
    pub exactly_once: Option<bool>,
    /// Hedged backup requests the campaign fired
    /// ([`Auditor::note_hedges`]).
    pub hedges_fired: u64,
    /// With hedges fired, whether compute still matched the unique
    /// scenario count (no hedge leg computed its scenario twice);
    /// vacuously `Some(true)` with zero hedges, `None` when no compute
    /// count was fed.
    pub hedges_never_double_compute: Option<bool>,
    /// Post-campaign stuck-worker count. Must be 0.
    pub stuck_connections: u64,
    /// Slowest recorded outcome, milliseconds.
    pub max_latency_ms: u64,
    /// The armed bound, if any.
    pub latency_bound_ms: Option<u64>,
    /// Outcomes that resolved over the bound.
    pub latency_violations: u64,
    /// `wrong_answers == 0`.
    pub zero_wrong_answers: bool,
    /// `untyped_failures == 0`.
    pub no_untyped_failures: bool,
    /// `latency_violations == 0`.
    pub latency_within_bound: bool,
    /// Every invariant held.
    pub passed: bool,
    /// Non-payload outcomes tallied by label (`wire:<code>`,
    /// `client:<variant>`, `untyped:<description>`), sorted by label.
    pub failure_breakdown: Vec<FailureCount>,
}

/// One labelled tally in [`AuditReport::failure_breakdown`].
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct FailureCount {
    /// `wire:<code>`, `client:<variant>`, or `untyped:<description>`.
    pub label: String,
    /// Outcomes recorded under the label.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ErrorCode;
    use ktudc_core::harness::{CellOutcome, CellSpec, FdChoice, ProtocolChoice};

    fn kind(i: u64) -> RequestKind {
        RequestKind::Cell(
            CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(1)
                .horizon(40 + i),
        )
    }

    fn outcome(satisfied: u64) -> ResponseKind {
        ResponseKind::Cell(CellOutcome {
            satisfied,
            violated_permanent: 0,
            unsatisfied_pending: 0,
            mean_messages: 1.0,
        })
    }

    fn payload(id: u64, generation: u64, shard: Option<usize>, result: ResponseKind) -> Response {
        let mut r = Response::new(id, false, 10, result);
        r.generation = generation;
        r.shard = shard;
        r
    }

    #[test]
    fn clean_campaign_passes_every_invariant() {
        let audit = Auditor::new().with_latency_bound_ms(5_000);
        for i in 0..3 {
            audit.expect(&kind(i), &outcome(1));
        }
        for i in 0..3 {
            // Resend storm: the same scenario answered twice is fine —
            // exactly-once is about *compute*, not responses.
            for _ in 0..2 {
                audit.record_response(
                    &kind(i),
                    &payload(i, 4, Some(0), outcome(1)),
                    Duration::from_millis(12),
                );
            }
        }
        audit.note_computed(3);
        audit.note_stuck_connections(0);
        let report = audit.report();
        assert_eq!(report.requests, 6);
        assert_eq!(report.payloads, 6);
        assert_eq!(report.wrong_answers, 0);
        assert_eq!(report.exactly_once, Some(true));
        assert!(report.zero_wrong_answers);
        assert!(report.no_untyped_failures);
        assert!(report.passed, "{report:?}");
    }

    #[test]
    fn wrong_and_unknown_payloads_fail_the_audit() {
        let audit = Auditor::new();
        audit.expect(&kind(0), &outcome(1));
        // Wrong bytes for a known scenario.
        audit.record_response(
            &kind(0),
            &payload(0, 0, None, outcome(0)),
            Duration::from_millis(1),
        );
        // A payload for a scenario the auditor was never told about.
        audit.record_response(
            &kind(9),
            &payload(9, 0, None, outcome(1)),
            Duration::from_millis(1),
        );
        let report = audit.report();
        assert_eq!(report.wrong_answers, 2);
        assert!(!report.zero_wrong_answers);
        assert!(!report.passed);
    }

    #[test]
    fn typed_degradation_is_accepted_untyped_is_not() {
        let audit = Auditor::new();
        audit.expect(&kind(0), &outcome(1));
        let shed = Response::error(1, ErrorCode::Overloaded, "queue full");
        audit.record_response(&kind(0), &shed, Duration::from_millis(1));
        audit.record_client_error(
            &kind(0),
            &ClientError::RetriesExhausted {
                attempts: 3,
                last: "overloaded".to_string(),
            },
            Duration::from_millis(2),
        );
        assert!(audit.report().passed);
        audit.record_untyped(&kind(0), "worker panicked", Duration::from_millis(1));
        let report = audit.report();
        assert_eq!(report.untyped_failures, 1);
        assert!(!report.no_untyped_failures);
        assert!(!report.passed);
        let labels: Vec<&str> = report
            .failure_breakdown
            .iter()
            .map(|f| f.label.as_str())
            .collect();
        assert_eq!(
            labels,
            vec![
                "client:RetriesExhausted",
                "untyped:worker panicked",
                "wire:Overloaded"
            ]
        );
    }

    #[test]
    fn generation_regression_is_caught_per_shard() {
        let audit = Auditor::new();
        audit.expect(&kind(0), &outcome(1));
        // Shard 0 moves 3 -> 4 (a restart: fine), shard 1 stays at 7.
        audit.record_response(
            &kind(0),
            &payload(0, 3, Some(0), outcome(1)),
            Duration::from_millis(1),
        );
        audit.record_response(
            &kind(0),
            &payload(0, 4, Some(0), outcome(1)),
            Duration::from_millis(1),
        );
        audit.record_response(
            &kind(0),
            &payload(0, 7, Some(1), outcome(1)),
            Duration::from_millis(1),
        );
        assert_eq!(audit.report().generation_regressions, 0);
        // Shard 0 answering with generation 2 after 4 is a regression.
        audit.record_response(
            &kind(0),
            &payload(0, 2, Some(0), outcome(1)),
            Duration::from_millis(1),
        );
        let report = audit.report();
        assert_eq!(report.generation_regressions, 1);
        assert!(!report.passed);
    }

    #[test]
    fn hedges_must_not_double_compute() {
        let audit = Auditor::new();
        audit.expect(&kind(0), &outcome(1));
        audit.record_response(
            &kind(0),
            &payload(0, 0, Some(1), outcome(1)),
            Duration::from_millis(1),
        );
        // Hedges fired but compute stayed at the unique-scenario count:
        // the backup legs landed on shards that never duplicated work.
        audit.note_computed(1);
        audit.note_hedges(5);
        let report = audit.report();
        assert_eq!(report.hedges_fired, 5);
        assert_eq!(report.hedges_never_double_compute, Some(true));
        assert!(report.passed, "{report:?}");
        // One extra computation with hedges in play fails the audit.
        audit.note_computed(2);
        let report = audit.report();
        assert_eq!(report.hedges_never_double_compute, Some(false));
        assert!(!report.passed);
    }

    #[test]
    fn exactly_once_and_latency_bounds_are_enforced() {
        let audit = Auditor::new().with_latency_bound_ms(10);
        audit.expect(&kind(0), &outcome(1));
        audit.record_response(
            &kind(0),
            &payload(0, 0, None, outcome(1)),
            Duration::from_millis(25),
        );
        audit.note_computed(2); // duplicate compute: single-flight failed
        let report = audit.report();
        assert_eq!(report.exactly_once, Some(false));
        assert_eq!(report.latency_violations, 1);
        assert_eq!(report.max_latency_ms, 25);
        assert!(!report.latency_within_bound);
        assert!(!report.passed);
    }
}
