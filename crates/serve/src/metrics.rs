//! Per-endpoint service metrics.
//!
//! Counters are lock-free atomics bumped on every completed request;
//! latencies go into a fixed-size ring of recent samples per endpoint
//! (a mutex-guarded overwrite buffer — the lock is held for an index
//! increment and a store, never across work). Percentiles are computed
//! on demand from whatever the ring currently holds, so they are
//! *recent* p50/p99, not all-time: exactly what you want when deciding
//! whether the daemon is currently keeping up.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Samples retained per endpoint for percentile estimates.
const RING_CAPACITY: usize = 4096;

/// The metrics endpoints, one per [`RequestKind`](crate::wire::RequestKind)
/// variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Endpoint {
    /// Table-1 cell runs.
    Cell,
    /// Epistemic checks.
    Check,
    /// Explorations.
    Explore,
    /// Empirical detector classifications. Deterministic per spec, so it
    /// sits inside the cacheable leading prefix of [`Endpoint::ALL`].
    Classify,
    /// Metrics snapshots.
    Stats,
    /// Shutdown requests.
    Shutdown,
    /// Durability health snapshots. Appended after `Shutdown` so the
    /// cacheable endpoints stay the leading prefix of [`Endpoint::ALL`]
    /// (the hit-rate fold depends on that ordering).
    Health,
    /// Cluster health snapshots (schema v5). Appended at the end for the
    /// same leading-prefix reason as `Health`.
    ClusterHealth,
    /// Detector-plane heartbeat probes (schema v6). Answered inline,
    /// never queued or cached; appended at the end for the same
    /// leading-prefix reason as `Health`.
    Ping,
}

impl Endpoint {
    /// Every endpoint, in report order (cacheable endpoints first).
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Cell,
        Endpoint::Check,
        Endpoint::Explore,
        Endpoint::Classify,
        Endpoint::Stats,
        Endpoint::Shutdown,
        Endpoint::Health,
        Endpoint::ClusterHealth,
        Endpoint::Ping,
    ];

    /// The wire name of the endpoint.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Cell => "cell",
            Endpoint::Check => "check",
            Endpoint::Explore => "explore",
            Endpoint::Classify => "classify",
            Endpoint::Stats => "stats",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Health => "health",
            Endpoint::ClusterHealth => "cluster_health",
            Endpoint::Ping => "ping",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Cell => 0,
            Endpoint::Check => 1,
            Endpoint::Explore => 2,
            Endpoint::Classify => 3,
            Endpoint::Stats => 4,
            Endpoint::Shutdown => 5,
            Endpoint::Health => 6,
            Endpoint::ClusterHealth => 7,
            Endpoint::Ping => 8,
        }
    }
}

struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRing {
    fn new() -> Self {
        LatencyRing {
            samples: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, micros: u64) {
        if self.samples.len() < RING_CAPACITY {
            self.samples.push(micros);
        } else {
            let at = self.next;
            self.samples[at] = micros;
        }
        self.next = (self.next + 1) % RING_CAPACITY;
    }
}

struct EndpointMetrics {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    errors: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl EndpointMetrics {
    fn new() -> Self {
        EndpointMetrics {
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing::new()),
        }
    }
}

/// Server-lifetime metrics, shared across workers and connections.
pub struct Metrics {
    started: Instant,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    idle_reaped: AtomicU64,
    oversized_rejected: AtomicU64,
    malformed_lines: AtomicU64,
    per: [EndpointMetrics; 9],
    /// Time admitted compute requests spent between acceptance and a
    /// worker picking them up. Global (not per-endpoint): the queue is
    /// shared, so its wait distribution is a property of the server.
    queue_wait: Mutex<LatencyRing>,
    /// Pure compute time of admitted requests (worker pickup to result),
    /// excluding queue wait. The p50 of this ring feeds the admission
    /// controller's wait estimate.
    compute: Mutex<LatencyRing>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics; the uptime clock starts now.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            overloaded: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            oversized_rejected: AtomicU64::new(0),
            malformed_lines: AtomicU64::new(0),
            per: std::array::from_fn(|_| EndpointMetrics::new()),
            queue_wait: Mutex::new(LatencyRing::new()),
            compute: Mutex::new(LatencyRing::new()),
        }
    }

    /// Microseconds since the metrics (and hence the server) started.
    #[must_use]
    pub fn uptime_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Records a served request: latency sample plus hit accounting.
    pub fn record(&self, endpoint: Endpoint, micros: u64, cache_hit: bool) {
        let m = &self.per[endpoint.index()];
        m.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            m.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        m.latencies
            .lock()
            .expect("metrics lock poisoned")
            .push(micros);
    }

    /// Records how long an admitted compute request sat in the queue
    /// before a worker picked it up.
    pub fn record_queue_wait(&self, micros: u64) {
        self.queue_wait
            .lock()
            .expect("metrics lock poisoned")
            .push(micros);
    }

    /// Records the pure compute time (queue wait excluded) of an admitted
    /// request.
    pub fn record_compute(&self, micros: u64) {
        self.compute
            .lock()
            .expect("metrics lock poisoned")
            .push(micros);
    }

    /// Recent median compute time, in microseconds; 0 with no samples.
    /// The admission controller multiplies this by queue occupancy to
    /// estimate a new request's wait.
    #[must_use]
    pub fn compute_p50_micros(&self) -> u64 {
        let ring = self.compute.lock().expect("metrics lock poisoned");
        percentiles(&ring.samples).0
    }

    /// Records a request that failed (no latency sample).
    pub fn record_error(&self, endpoint: Endpoint) {
        let m = &self.per[endpoint.index()];
        m.requests.fetch_add(1, Ordering::Relaxed);
        m.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by backpressure (also counts as an error on
    /// its endpoint).
    pub fn record_overload(&self, endpoint: Endpoint) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
        self.record_error(endpoint);
    }

    /// Records a request shed (or aborted without a partial) because its
    /// deadline could not be met. Distinct from [`Metrics::record_overload`]:
    /// the server had capacity, the request ran out of time.
    pub fn record_shed_deadline(&self, endpoint: Endpoint) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        self.record_error(endpoint);
    }

    /// Records a connection reaped by the idle read deadline: a
    /// half-open (or merely silent) peer whose thread was reclaimed
    /// instead of pinned forever.
    pub fn record_idle_reap(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request line rejected for exceeding
    /// [`MAX_REQUEST_LINE_BYTES`](crate::wire::MAX_REQUEST_LINE_BYTES)
    /// before a newline arrived.
    pub fn record_oversized(&self) {
        self.oversized_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request line that was not valid JSON (answered with a
    /// typed `BadRequest`, never a panic or a stall).
    pub fn record_malformed(&self) {
        self.malformed_lines.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots everything into a wire-serializable report. Queue and
    /// cache occupancy plus the pool's steal counters are passed in by
    /// the server, which owns them.
    #[must_use]
    pub fn report(
        &self,
        pool: PoolCounters,
        cache_entries: usize,
        cache_capacity: usize,
    ) -> StatsReport {
        let PoolCounters {
            workers,
            queue_depth,
            queue_capacity,
            steals,
            deepest_queue,
        } = pool;
        let endpoints: Vec<EndpointStats> = Endpoint::ALL
            .iter()
            .map(|&ep| {
                let m = &self.per[ep.index()];
                let (p50, p99) = {
                    let ring = m.latencies.lock().expect("metrics lock poisoned");
                    percentiles(&ring.samples)
                };
                EndpointStats {
                    endpoint: ep.name().to_string(),
                    requests: m.requests.load(Ordering::Relaxed),
                    cache_hits: m.cache_hits.load(Ordering::Relaxed),
                    errors: m.errors.load(Ordering::Relaxed),
                    p50_micros: p50,
                    p99_micros: p99,
                }
            })
            .collect();
        let (cacheable_requests, cacheable_hits) = endpoints
            .iter()
            .take(4) // cell, check, explore, classify
            .fold((0u64, 0u64), |(r, h), e| (r + e.requests, h + e.cache_hits));
        let (queue_wait_p50, queue_wait_p99) = {
            let ring = self.queue_wait.lock().expect("metrics lock poisoned");
            percentiles(&ring.samples)
        };
        let (compute_p50, compute_p99) = {
            let ring = self.compute.lock().expect("metrics lock poisoned");
            percentiles(&ring.samples)
        };
        StatsReport {
            uptime_micros: self.started.elapsed().as_micros() as u64,
            workers,
            queue_depth,
            queue_capacity,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            oversized_rejected: self.oversized_rejected.load(Ordering::Relaxed),
            malformed_lines: self.malformed_lines.load(Ordering::Relaxed),
            queue_wait_p50_micros: queue_wait_p50,
            queue_wait_p99_micros: queue_wait_p99,
            compute_p50_micros: compute_p50,
            compute_p99_micros: compute_p99,
            cache_entries,
            cache_capacity,
            steals,
            deepest_queue,
            cache_hit_rate: if cacheable_requests == 0 {
                0.0
            } else {
                cacheable_hits as f64 / cacheable_requests as f64
            },
            endpoints,
            suspicion: None,
        }
    }
}

/// (p50, p99) of a sample set; (0, 0) when empty.
fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: usize| sorted[(sorted.len() - 1) * q / 100];
    (rank(50), rank(99))
}

/// Wire form of the detector plane's counters (schema v6): what the
/// φ-accrual suspicion machinery has done since the process hosting it
/// (router or cluster client) started. Attached to [`StatsReport`] only
/// by processes that actually run a detector plane — a plain worker's
/// stats report omits it entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspicionStats {
    /// Heartbeat probes sent across all monitored shards.
    pub probes_sent: u64,
    /// Probes that failed outright (connect/write/read error) — each
    /// counts as a missed beat for its shard.
    pub probe_failures: u64,
    /// Transitions into suspicion (φ crossed the suspect threshold, or a
    /// probationary shard missed a beat).
    pub suspects_raised: u64,
    /// Transitions out of suspicion (heartbeats resumed and the shard
    /// entered probation).
    pub suspects_cleared: u64,
    /// Requests routed *away* from a suspected primary at routing time —
    /// failovers that happened before any request had to fail.
    pub proactive_failovers: u64,
    /// Hedged requests fired (primary's φ crossed the soft hedge
    /// threshold mid-request, a backup was sent to the next replica).
    pub hedges_fired: u64,
    /// Hedges whose backup produced the winning response.
    pub hedges_won: u64,
    /// Hedges whose primary answered first after all (the backup's
    /// response was discarded).
    pub hedges_wasted: u64,
}

/// Wire form of one endpoint's counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EndpointStats {
    /// Endpoint name (`cell`, `check`, `explore`, `classify`, `stats`,
    /// `shutdown`, `health`, `cluster_health`, `ping`).
    pub endpoint: String,
    /// Requests handled (served + failed).
    pub requests: u64,
    /// Requests answered from the scenario cache.
    pub cache_hits: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Median service latency over the recent sample ring.
    pub p50_micros: u64,
    /// 99th-percentile service latency over the recent sample ring.
    pub p99_micros: u64,
}

/// Scheduler-side occupancy the server reads off its worker pool and
/// feeds into [`Metrics::report`]; the metrics registry itself never
/// touches the pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs queued (accepted, not yet started) at snapshot time.
    pub queue_depth: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// Jobs stolen across worker deques since the pool started.
    pub steals: u64,
    /// Depth of the deepest per-worker deque at snapshot time.
    pub deepest_queue: usize,
}

/// Wire form of a full metrics snapshot (the `Stats` response body).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// Microseconds since the server started.
    pub uptime_micros: u64,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs queued (accepted, not yet started) at snapshot time.
    pub queue_depth: usize,
    /// The bounded queue's capacity.
    pub queue_capacity: usize,
    /// Requests shed with `Overloaded` since start.
    pub overloaded: u64,
    /// Requests shed (or aborted without a partial) with
    /// `DeadlineExceeded` since start.
    pub deadline_exceeded: u64,
    /// Connections reaped by the idle read deadline (half-open or
    /// silent peers) since start.
    pub idle_reaped: u64,
    /// Request lines rejected for exceeding the frame-size cap before a
    /// newline arrived.
    pub oversized_rejected: u64,
    /// Request lines rejected as non-JSON with a typed `BadRequest`.
    pub malformed_lines: u64,
    /// Median queue wait of admitted compute requests (recent ring).
    pub queue_wait_p50_micros: u64,
    /// 99th-percentile queue wait of admitted compute requests.
    pub queue_wait_p99_micros: u64,
    /// Median pure compute time of admitted requests (recent ring).
    pub compute_p50_micros: u64,
    /// 99th-percentile pure compute time of admitted requests.
    pub compute_p99_micros: u64,
    /// Outcomes currently cached.
    pub cache_entries: usize,
    /// The cache's capacity.
    pub cache_capacity: usize,
    /// Jobs stolen across worker deques since the pool started. A
    /// nonzero count means the work-stealing scheduler rebalanced
    /// uneven job sizes; on a single worker it stays 0.
    pub steals: u64,
    /// Depth of the deepest per-worker deque at snapshot time — the
    /// imbalance the next steal would relieve.
    pub deepest_queue: usize,
    /// Cache hits / requests over the cacheable endpoints (cell, check,
    /// explore, classify); 0 when none have been served.
    pub cache_hit_rate: f64,
    /// Per-endpoint counters, in [`Endpoint::ALL`] order.
    pub endpoints: Vec<EndpointStats>,
    /// Detector-plane counters (schema v6). `None` — and omitted from
    /// the encoding, so a v5 stats line is a valid v6 stats line — on
    /// processes without a detector plane.
    pub suspicion: Option<SuspicionStats>,
}

// Hand-encoded like the envelope types in `wire`: the v6 `suspicion`
// field is omitted when `None` and defaulted when missing, keeping v5
// and v6 stats lines mutually parseable.
impl Serialize for StatsReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("uptime_micros".to_string(), self.uptime_micros.to_value()),
            ("workers".to_string(), self.workers.to_value()),
            ("queue_depth".to_string(), self.queue_depth.to_value()),
            ("queue_capacity".to_string(), self.queue_capacity.to_value()),
            ("overloaded".to_string(), self.overloaded.to_value()),
            (
                "deadline_exceeded".to_string(),
                self.deadline_exceeded.to_value(),
            ),
            ("idle_reaped".to_string(), self.idle_reaped.to_value()),
            (
                "oversized_rejected".to_string(),
                self.oversized_rejected.to_value(),
            ),
            (
                "malformed_lines".to_string(),
                self.malformed_lines.to_value(),
            ),
            (
                "queue_wait_p50_micros".to_string(),
                self.queue_wait_p50_micros.to_value(),
            ),
            (
                "queue_wait_p99_micros".to_string(),
                self.queue_wait_p99_micros.to_value(),
            ),
            (
                "compute_p50_micros".to_string(),
                self.compute_p50_micros.to_value(),
            ),
            (
                "compute_p99_micros".to_string(),
                self.compute_p99_micros.to_value(),
            ),
            ("cache_entries".to_string(), self.cache_entries.to_value()),
            ("cache_capacity".to_string(), self.cache_capacity.to_value()),
            ("steals".to_string(), self.steals.to_value()),
            ("deepest_queue".to_string(), self.deepest_queue.to_value()),
            ("cache_hit_rate".to_string(), self.cache_hit_rate.to_value()),
            ("endpoints".to_string(), self.endpoints.to_value()),
        ];
        if let Some(suspicion) = &self.suspicion {
            fields.push(("suspicion".to_string(), suspicion.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for StatsReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError(format!("stats report is missing `{name}`")))
        };
        Ok(StatsReport {
            uptime_micros: u64::from_value(required("uptime_micros")?)?,
            workers: usize::from_value(required("workers")?)?,
            queue_depth: usize::from_value(required("queue_depth")?)?,
            queue_capacity: usize::from_value(required("queue_capacity")?)?,
            overloaded: u64::from_value(required("overloaded")?)?,
            deadline_exceeded: u64::from_value(required("deadline_exceeded")?)?,
            idle_reaped: u64::from_value(required("idle_reaped")?)?,
            oversized_rejected: u64::from_value(required("oversized_rejected")?)?,
            malformed_lines: u64::from_value(required("malformed_lines")?)?,
            queue_wait_p50_micros: u64::from_value(required("queue_wait_p50_micros")?)?,
            queue_wait_p99_micros: u64::from_value(required("queue_wait_p99_micros")?)?,
            compute_p50_micros: u64::from_value(required("compute_p50_micros")?)?,
            compute_p99_micros: u64::from_value(required("compute_p99_micros")?)?,
            cache_entries: usize::from_value(required("cache_entries")?)?,
            cache_capacity: usize::from_value(required("cache_capacity")?)?,
            steals: u64::from_value(required("steals")?)?,
            deepest_queue: usize::from_value(required("deepest_queue")?)?,
            cache_hit_rate: f64::from_value(required("cache_hit_rate")?)?,
            endpoints: Vec::<EndpointStats>::from_value(required("endpoints")?)?,
            suspicion: match v.get("suspicion") {
                None => None,
                Some(s) => Some(SuspicionStats::from_value(s)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_report() {
        let m = Metrics::new();
        m.record(Endpoint::Cell, 100, false);
        m.record(Endpoint::Cell, 300, true);
        m.record(Endpoint::Explore, 50, false);
        m.record_error(Endpoint::Check);
        m.record_overload(Endpoint::Cell);

        let report = m.report(
            PoolCounters {
                workers: 4,
                queue_depth: 2,
                queue_capacity: 64,
                steals: 7,
                deepest_queue: 3,
            },
            1,
            256,
        );
        assert_eq!(report.workers, 4);
        assert_eq!(report.queue_depth, 2);
        assert_eq!(report.steals, 7);
        assert_eq!(report.deepest_queue, 3);
        assert_eq!(report.overloaded, 1);
        let cell = &report.endpoints[0];
        assert_eq!(cell.endpoint, "cell");
        assert_eq!(cell.requests, 3); // 2 served + 1 shed
        assert_eq!(cell.cache_hits, 1);
        assert_eq!(cell.errors, 1);
        assert_eq!(cell.p50_micros, 100);
        let check = &report.endpoints[1];
        assert_eq!(check.errors, 1);
        assert_eq!(check.p50_micros, 0);
        // 5 cacheable-endpoint requests total (3 cell + 1 check + 1
        // explore), 1 hit.
        assert!((report.cache_hit_rate - 0.2).abs() < 1e-12);
    }

    #[test]
    fn queue_wait_and_compute_histograms_are_separate() {
        let m = Metrics::new();
        // Fast compute, slow queue: the two distributions must not blend.
        for _ in 0..10 {
            m.record_queue_wait(5_000);
            m.record_compute(100);
        }
        let report = m.report(PoolCounters::default(), 0, 0);
        assert_eq!(report.queue_wait_p50_micros, 5_000);
        assert_eq!(report.queue_wait_p99_micros, 5_000);
        assert_eq!(report.compute_p50_micros, 100);
        assert_eq!(report.compute_p99_micros, 100);
        assert_eq!(m.compute_p50_micros(), 100);
    }

    #[test]
    fn connection_error_counters_reach_the_report() {
        let m = Metrics::new();
        m.record_idle_reap();
        m.record_idle_reap();
        m.record_oversized();
        m.record_malformed();
        m.record_malformed();
        m.record_malformed();
        let report = m.report(PoolCounters::default(), 0, 0);
        assert_eq!(report.idle_reaped, 2);
        assert_eq!(report.oversized_rejected, 1);
        assert_eq!(report.malformed_lines, 3);
    }

    #[test]
    fn deadline_sheds_are_counted_apart_from_overload() {
        let m = Metrics::new();
        m.record_overload(Endpoint::Cell);
        m.record_shed_deadline(Endpoint::Cell);
        m.record_shed_deadline(Endpoint::Explore);
        let report = m.report(PoolCounters::default(), 0, 0);
        assert_eq!(report.overloaded, 1);
        assert_eq!(report.deadline_exceeded, 2);
        // Both shed kinds count as errors on their endpoint.
        assert_eq!(report.endpoints[0].errors, 2);
        assert_eq!(report.endpoints[2].errors, 1);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_when_idle() {
        let m = Metrics::new();
        m.record(Endpoint::Stats, 10, false);
        let report = m.report(PoolCounters::default(), 0, 0);
        assert_eq!(report.cache_hit_rate, 0.0);
        // The report must serialize (a NaN would be unencodable).
        assert!(serde_json::to_string(&report).is_ok());
    }

    #[test]
    fn suspicion_counters_are_additive_on_the_wire() {
        // A plain worker's report has no detector plane: no `suspicion`
        // key, byte-compatible with a v5 stats line.
        let m = Metrics::new();
        let mut report = m.report(PoolCounters::default(), 0, 0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(!json.contains("suspicion"));
        assert_eq!(serde_json::from_str::<StatsReport>(&json).unwrap(), report);

        // A router overlays its detector plane's counters; they round-trip.
        report.suspicion = Some(SuspicionStats {
            probes_sent: 120,
            probe_failures: 4,
            suspects_raised: 1,
            suspects_cleared: 1,
            proactive_failovers: 9,
            hedges_fired: 3,
            hedges_won: 2,
            hedges_wasted: 1,
        });
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains(r#""suspicion":{"probes_sent":120"#));
        assert_eq!(serde_json::from_str::<StatsReport>(&json).unwrap(), report);
    }

    #[test]
    fn ping_endpoint_is_counted_apart() {
        let m = Metrics::new();
        m.record(Endpoint::Ping, 50, false);
        m.record(Endpoint::Ping, 70, false);
        let report = m.report(PoolCounters::default(), 0, 0);
        let ping = &report.endpoints[8];
        assert_eq!(ping.endpoint, "ping");
        assert_eq!(ping.requests, 2);
        // Pings are never cacheable, so they must not perturb the
        // cacheable-prefix hit-rate fold.
        assert_eq!(report.cache_hit_rate, 0.0);
    }

    #[test]
    fn percentile_ranks() {
        let samples: Vec<u64> = (1..=100).collect();
        let (p50, p99) = percentiles(&samples);
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
        assert_eq!(percentiles(&[]), (0, 0));
        assert_eq!(percentiles(&[7]), (7, 7));
    }

    #[test]
    fn latency_ring_overwrites_oldest() {
        let m = Metrics::new();
        for _ in 0..RING_CAPACITY {
            m.record(Endpoint::Cell, 1_000_000, false);
        }
        // A full ring of slow samples, then a full ring of fast ones:
        // the slow ones must be gone from the percentile window.
        for _ in 0..RING_CAPACITY {
            m.record(Endpoint::Cell, 10, false);
        }
        let report = m.report(PoolCounters::default(), 0, 0);
        assert_eq!(report.endpoints[0].p99_micros, 10);
    }
}
