//! Deadline-aware admission control and stuck-worker detection.
//!
//! Two pieces, both passive data structures driven by the server:
//!
//! * [`AimdController`] — an additive-increase / multiplicative-decrease
//!   concurrency limit. The server feeds it observed end-to-end
//!   latencies; whenever a window of samples fills, the controller
//!   compares the window's p99 against its target and either halves the
//!   limit (overloaded — shed harder) or raises it by one (headroom —
//!   admit more). Admission checks compare current *occupancy* (queued
//!   plus in-flight jobs) against the limit, so the bound adapts to how
//!   slow the work actually is rather than to a static queue capacity.
//! * [`JobRegistry`] — the watchdog's view of running jobs. Every
//!   compute job registers its budget's heartbeat counter; a watchdog
//!   thread calls [`JobRegistry::scan`] on a fixed tick and counts jobs
//!   whose heartbeat has not advanced for `stuck_after` consecutive
//!   ticks. Those are *stuck workers*: wedged in a non-cooperative
//!   region where the budget is never polled, invisible to queue-depth
//!   metrics but fatal to capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning for the [`AimdController`].
#[derive(Clone, Copy, Debug)]
pub struct AimdConfig {
    /// Latency target: when a window's p99 exceeds this, the limit is
    /// halved. 0 disables adaptation — the limit stays pinned at
    /// `max_limit`.
    pub target_p99_micros: u64,
    /// The limit never drops below this (the server must always admit
    /// *some* work or it can never observe recovery).
    pub min_limit: usize,
    /// The limit never grows beyond this (typically queue capacity +
    /// workers).
    pub max_limit: usize,
    /// Samples per adjustment decision.
    pub window: usize,
}

struct AimdState {
    limit: usize,
    window: Vec<u64>,
}

/// An AIMD concurrency limiter: halve on overload, creep up on headroom.
pub struct AimdController {
    config: AimdConfig,
    state: Mutex<AimdState>,
}

impl AimdController {
    /// A controller starting wide open at `max_limit`.
    #[must_use]
    pub fn new(config: AimdConfig) -> Self {
        let config = AimdConfig {
            min_limit: config.min_limit.max(1),
            max_limit: config.max_limit.max(config.min_limit.max(1)),
            window: config.window.max(1),
            ..config
        };
        AimdController {
            state: Mutex::new(AimdState {
                limit: config.max_limit,
                window: Vec::with_capacity(config.window),
            }),
            config,
        }
    }

    /// The current concurrency limit.
    #[must_use]
    pub fn limit(&self) -> usize {
        self.state.lock().expect("aimd lock poisoned").limit
    }

    /// Should a request be admitted at the given occupancy (queued +
    /// in-flight jobs)? Each priority level buys one extra slot of
    /// headroom, so urgent requests still get in when the limit has
    /// clamped down — without letting priority bypass overload entirely.
    #[must_use]
    pub fn try_admit(&self, occupancy: usize, priority: u8) -> bool {
        let limit = self.limit().saturating_add(priority as usize);
        occupancy < limit
    }

    /// Feeds one observed end-to-end latency. On every `window`-th
    /// sample the limit adjusts: p99 over target halves it (floored at
    /// `min_limit`), otherwise it rises by one (capped at `max_limit`).
    pub fn observe(&self, latency_micros: u64) {
        if self.config.target_p99_micros == 0 {
            return;
        }
        let mut state = self.state.lock().expect("aimd lock poisoned");
        state.window.push(latency_micros);
        if state.window.len() < self.config.window {
            return;
        }
        state.window.sort_unstable();
        let p99 = state.window[(state.window.len() - 1) * 99 / 100];
        state.window.clear();
        if p99 > self.config.target_p99_micros {
            state.limit = (state.limit / 2).max(self.config.min_limit);
        } else {
            state.limit = (state.limit + 1).min(self.config.max_limit);
        }
    }
}

/// The server's estimate of how long a newly admitted request would
/// wait for a worker: everything ahead of it, costed at the recent
/// median compute time, divided across the workers. 0 when nothing is
/// ahead or no compute samples exist yet.
#[must_use]
pub fn estimated_wait_micros(occupancy: usize, workers: usize, compute_p50_micros: u64) -> u64 {
    (occupancy as u64).saturating_mul(compute_p50_micros) / workers.max(1) as u64
}

struct JobEntry {
    heartbeat: Arc<AtomicU64>,
    /// Heartbeat value at the last scan.
    last_seen: u64,
    /// Consecutive scans without heartbeat movement.
    stale_ticks: u64,
}

/// Running compute jobs, keyed by a registration token, with the
/// watchdog's staleness bookkeeping.
pub struct JobRegistry {
    jobs: Mutex<HashMap<u64, JobEntry>>,
    next_token: AtomicU64,
    /// Stuck count as of the latest scan, readable without the lock.
    stuck: AtomicU64,
}

impl Default for JobRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl JobRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        JobRegistry {
            jobs: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            stuck: AtomicU64::new(0),
        }
    }

    /// Registers a job's heartbeat for watchdog sampling; the returned
    /// token must be passed to [`JobRegistry::unregister`] when the job
    /// finishes (on every path, including panics caught downstream).
    pub fn register(&self, heartbeat: Arc<AtomicU64>) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let entry = JobEntry {
            last_seen: heartbeat.load(Ordering::Relaxed),
            heartbeat,
            stale_ticks: 0,
        };
        self.jobs
            .lock()
            .expect("registry lock poisoned")
            .insert(token, entry);
        token
    }

    /// Removes a finished job. Unknown tokens are ignored (the job may
    /// have been registered before a restart's registry was rebuilt).
    pub fn unregister(&self, token: u64) {
        self.jobs
            .lock()
            .expect("registry lock poisoned")
            .remove(&token);
    }

    /// Jobs currently registered.
    #[must_use]
    pub fn active(&self) -> usize {
        self.jobs.lock().expect("registry lock poisoned").len()
    }

    /// One watchdog tick: samples every registered heartbeat, bumps the
    /// staleness of those that have not moved, and returns how many have
    /// been stale for at least `stuck_after` consecutive ticks. The
    /// result is also latched for [`JobRegistry::stuck_workers`].
    pub fn scan(&self, stuck_after: u64) -> u64 {
        let stuck_after = stuck_after.max(1);
        let mut jobs = self.jobs.lock().expect("registry lock poisoned");
        let mut stuck = 0;
        for entry in jobs.values_mut() {
            let now = entry.heartbeat.load(Ordering::Relaxed);
            if now == entry.last_seen {
                entry.stale_ticks += 1;
            } else {
                entry.last_seen = now;
                entry.stale_ticks = 0;
            }
            if entry.stale_ticks >= stuck_after {
                stuck += 1;
            }
        }
        drop(jobs);
        self.stuck.store(stuck, Ordering::Relaxed);
        stuck
    }

    /// The stuck count latched by the most recent scan.
    #[must_use]
    pub fn stuck_workers(&self) -> u64 {
        self.stuck.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(target: u64) -> AimdConfig {
        AimdConfig {
            target_p99_micros: target,
            min_limit: 2,
            max_limit: 16,
            window: 4,
        }
    }

    #[test]
    fn starts_wide_open_and_halves_on_slow_windows() {
        let c = AimdController::new(config(1_000));
        assert_eq!(c.limit(), 16);
        for _ in 0..4 {
            c.observe(5_000);
        }
        assert_eq!(c.limit(), 8);
        for _ in 0..4 {
            c.observe(5_000);
        }
        assert_eq!(c.limit(), 4);
        // The floor holds no matter how bad the latencies get.
        for _ in 0..40 {
            c.observe(1_000_000);
        }
        assert_eq!(c.limit(), 2);
    }

    #[test]
    fn recovers_additively_on_fast_windows() {
        let c = AimdController::new(config(1_000));
        for _ in 0..8 {
            c.observe(5_000); // two windows: 16 -> 8 -> 4
        }
        assert_eq!(c.limit(), 4);
        for _ in 0..8 {
            c.observe(10); // two fast windows: +1 each
        }
        assert_eq!(c.limit(), 6);
        // The cap holds: many fast windows never exceed max_limit.
        for _ in 0..200 {
            c.observe(10);
        }
        assert_eq!(c.limit(), 16);
    }

    #[test]
    fn zero_target_disables_adaptation() {
        let c = AimdController::new(config(0));
        for _ in 0..100 {
            c.observe(u64::MAX);
        }
        assert_eq!(c.limit(), 16);
        assert!(c.try_admit(15, 0));
        assert!(!c.try_admit(16, 0));
    }

    #[test]
    fn priority_buys_bounded_headroom() {
        let c = AimdController::new(config(1_000));
        for _ in 0..40 {
            c.observe(1_000_000); // clamp to min_limit = 2
        }
        assert_eq!(c.limit(), 2);
        assert!(!c.try_admit(2, 0));
        assert!(c.try_admit(2, 1)); // one level, one extra slot
        assert!(!c.try_admit(3, 1));
        assert!(c.try_admit(4, 3));
        assert!(!c.try_admit(5, 3));
    }

    #[test]
    fn wait_estimate_scales_with_occupancy_and_workers() {
        assert_eq!(estimated_wait_micros(0, 4, 1_000), 0);
        assert_eq!(estimated_wait_micros(8, 4, 1_000), 2_000);
        assert_eq!(estimated_wait_micros(8, 1, 1_000), 8_000);
        // No samples yet: no estimate, never a divide-by-zero.
        assert_eq!(estimated_wait_micros(8, 0, 0), 0);
    }

    #[test]
    fn registry_counts_stale_heartbeats_only_after_k_ticks() {
        let reg = JobRegistry::new();
        let live = Arc::new(AtomicU64::new(0));
        let wedged = Arc::new(AtomicU64::new(0));
        let _t1 = reg.register(Arc::clone(&live));
        let t2 = reg.register(Arc::clone(&wedged));
        assert_eq!(reg.active(), 2);

        // Tick 1 and 2: the live job advances, the wedged one doesn't.
        live.fetch_add(1, Ordering::Relaxed);
        assert_eq!(reg.scan(3), 0);
        live.fetch_add(1, Ordering::Relaxed);
        assert_eq!(reg.scan(3), 0);
        // Tick 3: the wedged job crosses the threshold.
        live.fetch_add(1, Ordering::Relaxed);
        assert_eq!(reg.scan(3), 1);
        assert_eq!(reg.stuck_workers(), 1);

        // A wedged job that resumes polling is no longer stuck.
        wedged.fetch_add(1, Ordering::Relaxed);
        assert_eq!(reg.scan(3), 0);
        assert_eq!(reg.stuck_workers(), 0);

        // Unregistered jobs drop out of the scan entirely.
        reg.unregister(t2);
        assert_eq!(reg.active(), 1);
        for _ in 0..10 {
            live.fetch_add(1, Ordering::Relaxed);
            assert_eq!(reg.scan(3), 0);
        }
    }

    #[test]
    fn a_finished_job_never_reads_as_stuck() {
        let reg = JobRegistry::new();
        let hb = Arc::new(AtomicU64::new(7));
        let token = reg.register(hb);
        reg.unregister(token);
        for _ in 0..5 {
            assert_eq!(reg.scan(1), 0);
        }
        // Double-unregister is harmless.
        reg.unregister(token);
        assert_eq!(reg.active(), 0);
    }
}
