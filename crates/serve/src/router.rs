//! The cluster router: a front-end process that consistent-hashes
//! requests onto worker shards.
//!
//! The router speaks the same newline-JSON protocol as a worker, so any
//! existing client (plain, hardened, `ctl`) can point at it unchanged.
//! Per request it computes the canonical-JSON cache key, walks the
//! [`HashRing`]'s replica order, and forwards over a per-shard pool of
//! [`HardenedClient`] connections — multiple checkouts per shard, so a
//! pipelined batch fans out across shards *and* keeps each worker's own
//! pool busy instead of serializing behind one connection.
//!
//! Failover matches [`ClusterClient`](crate::cluster::ClusterClient):
//! a transport failure, exhausted retries, or an open breaker moves to
//! the next replica, as does a typed `Overloaded`/`DeadlineExceeded`
//! shed (kept as the answer of last resort so a saturated cluster still
//! answers with its own typed shed, never an invented error). Forwarded
//! responses keep the *worker's* generation and gain a `shard` stamp,
//! so clients track restarts per worker rather than per connection.
//!
//! What the router answers itself: `Stats` (its own forwarding
//! metrics, plus live [`SuspicionStats`](crate::metrics::SuspicionStats)
//! when the detector plane is on), `Health` (its own non-durable
//! report), `ClusterHealth` (live per-shard probes + aggregate,
//! annotated with per-shard φ and suspicion), `Ping` (inline liveness,
//! never queued behind forwarding), and `Shutdown` (drains the router;
//! workers are *not* shut down — they belong to their supervisor, and a
//! router bounce must not take the fleet down).
//!
//! With a [`DetectorConfig`] (the default), the router also runs the
//! live failure-detector plane ([`crate::detector`]): suspected shards
//! are demoted to the back of the replica order at forward time, so a
//! dead shard's keys stop paying its connection timeout as soon as φ
//! crosses the threshold. The router deliberately does *not* hedge —
//! hedging is the client-side latency policy
//! ([`ClusterClient`](crate::cluster::ClusterClient)); a fan-in point
//! duplicating every soft-suspect request would multiply fleet load
//! exactly when the fleet is struggling.

use crate::client::{ClientError, HardenedClient, RetryPolicy};
use crate::cluster::{ClusterClient, Membership};
use crate::detector::{DetectorConfig, DetectorPlane};
use crate::metrics::{Metrics, PoolCounters};
use crate::ring::HashRing;
use crate::server::{BoundedLineReader, LineEvent};
use crate::wire::{
    ClusterHealthReport, ErrorCode, HealthReport, Request, RequestKind, RequestOptions, Response,
    ResponseKind, ShardHealth, MAX_REQUEST_LINE_BYTES, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
use ktudc_par::{Pool, SubmitError};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Idle connections kept per shard. Checkouts beyond this are created
/// fresh and dropped at checkin once the pool is full, so a burst can
/// still fan out while steady state stays at a bounded socket count.
const POOL_PER_SHARD: usize = 8;

/// Sentinel for "no generation observed yet" in the per-shard table
/// (real generations start at 0 for non-durable workers).
const GEN_UNSEEN: u64 = u64::MAX;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Bind address; port 0 for an ephemeral port (resolved address on
    /// [`RouterHandle::addr`]).
    pub addr: String,
    /// Retry/backoff policy for each forwarding connection. One
    /// worker-side exchange per forwarded request rides on this.
    pub policy: RetryPolicy,
    /// Forwarding threads: how many requests the router relays
    /// concurrently. 0 means one per available core.
    pub workers: usize,
    /// Forwarding jobs queued beyond the active ones before the router
    /// sheds with `Overloaded` (its own backpressure, in front of the
    /// workers' per-shard admission control).
    pub queue_capacity: usize,
    /// Per-connection idle read deadline on the client side, in
    /// milliseconds; 0 disables it. Same semantics as
    /// [`ServeConfig::idle_timeout_ms`](crate::server::ServeConfig::idle_timeout_ms).
    pub idle_timeout_ms: u64,
    /// Live failure-detector plane tuning; `None` disables the plane
    /// (no heartbeats, reactive failover only). On by default: suspected
    /// shards are demoted at forward time before any request has to eat
    /// their timeout.
    pub detector: Option<DetectorConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            policy: RetryPolicy::default(),
            workers: 0,
            queue_capacity: 128,
            idle_timeout_ms: 60_000,
            detector: Some(DetectorConfig::default()),
        }
    }
}

/// One pooled forwarding connection; discarded when membership moves
/// its shard to a different address.
struct PooledConn {
    addr: String,
    client: HardenedClient,
}

struct RouterShared {
    membership: Arc<Membership>,
    ring: HashRing,
    policy: RetryPolicy,
    /// `None` once shutdown has taken the pool for draining.
    pool: Mutex<Option<Pool>>,
    /// Idle forwarding connections, per shard.
    conns: Vec<Mutex<Vec<PooledConn>>>,
    /// Last generation observed per shard ([`GEN_UNSEEN`] until the
    /// first forwarded response), for the health view and restart
    /// accounting.
    last_gen: Vec<AtomicU64>,
    /// Worker restarts observed across all shards (generation changes).
    restarts_observed: AtomicU64,
    /// Requests answered by a replica other than their owner shard.
    failovers: AtomicU64,
    metrics: Metrics,
    workers: usize,
    queue_capacity: usize,
    /// Per-connection idle read deadline; `None` disables reaping.
    idle_timeout: Option<Duration>,
    /// Live suspicion plane; probes every shard in the background.
    detector: Option<Arc<DetectorPlane>>,
    shutdown: AtomicBool,
}

impl RouterShared {
    /// Takes a forwarding connection for `shard`, discarding pooled ones
    /// that predate a membership change.
    fn checkout(&self, shard: usize) -> PooledConn {
        let current = self.membership.addr(shard);
        let mut pool = self.conns[shard].lock().expect("conn pool lock poisoned");
        while let Some(conn) = pool.pop() {
            if conn.addr == current {
                return conn;
            }
            // Stale address: the worker moved; drop the dead connection.
        }
        drop(pool);
        PooledConn {
            client: HardenedClient::new(current.clone(), self.policy),
            addr: current,
        }
    }

    /// Returns a healthy connection to the shard's pool (bounded; extras
    /// from a burst are simply dropped).
    fn checkin(&self, shard: usize, conn: PooledConn) {
        let mut pool = self.conns[shard].lock().expect("conn pool lock poisoned");
        if pool.len() < POOL_PER_SHARD && conn.addr == self.membership.addr(shard) {
            pool.push(conn);
        }
    }

    /// Folds a forwarded response's generation into the per-shard table;
    /// counts a restart when it changed.
    fn observe_generation(&self, shard: usize, generation: u64) {
        let old = self.last_gen[shard].swap(generation, Ordering::SeqCst);
        if old != GEN_UNSEEN && old != generation {
            self.restarts_observed.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Forwards `kind` through the ring's replica order. Returns the
    /// worker's response (shard-stamped) or the final error once every
    /// replica failed. Mirrors `ClusterClient::try_order`: typed
    /// `Overloaded`/`DeadlineExceeded` sheds advance to the next replica
    /// but are kept as the answer of last resort.
    fn forward(
        &self,
        kind: &RequestKind,
        options: RequestOptions,
    ) -> Result<Response, ClientError> {
        let key = ClusterClient::shard_key(kind);
        let mut order = self.ring.replicas(key);
        if let Some(plane) = &self.detector {
            if plane.prefer_unsuspected(&mut order) {
                // The owner is suspected: this request is served by a
                // replica, so it counts under the existing failover
                // meaning — it just pays no timeout to learn it.
                plane.note_proactive_failover();
                self.failovers.fetch_add(1, Ordering::SeqCst);
            }
        }
        let mut last_err: Option<ClientError> = None;
        let mut last_shed: Option<Response> = None;
        for (attempt, shard) in order.into_iter().enumerate() {
            if attempt > 0 {
                self.failovers.fetch_add(1, Ordering::SeqCst);
            }
            let mut conn = self.checkout(shard);
            match conn.client.request_with_options(kind.clone(), options) {
                Ok(mut resp) => {
                    self.observe_generation(shard, resp.generation);
                    self.checkin(shard, conn);
                    if resp.shard.is_none() {
                        resp.shard = Some(shard);
                    }
                    let shed = matches!(
                        &resp.result,
                        ResponseKind::Error(e)
                            if matches!(e.code, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
                    );
                    if shed {
                        last_shed = Some(resp);
                    } else {
                        return Ok(resp);
                    }
                }
                // The connection may be desynchronized; drop it rather
                // than pool it.
                Err(e) => last_err = Some(e),
            }
        }
        match last_shed {
            Some(resp) => Ok(resp),
            None => Err(last_err
                .unwrap_or_else(|| ClientError::Protocol("cluster has no shards".to_string()))),
        }
    }

    /// Live per-shard health probes, aggregated. Probes run on scoped
    /// threads so one dead shard's timeout does not stack onto the rest.
    fn cluster_health(&self) -> ClusterHealthReport {
        let rows: Vec<ShardHealth> = std::thread::scope(|scope| {
            let probes: Vec<_> = (0..self.ring.shards())
                .map(|shard| {
                    scope.spawn(move || {
                        let addr = self.membership.addr(shard);
                        let mut conn = self.checkout(shard);
                        match conn.client.health() {
                            Ok(report) => {
                                self.observe_generation(shard, report.generation);
                                self.checkin(shard, conn);
                                ShardHealth::new(shard, addr, true, report.generation, Some(report))
                            }
                            Err(_) => {
                                let last = self.last_gen[shard].load(Ordering::SeqCst);
                                ShardHealth::new(
                                    shard,
                                    addr,
                                    false,
                                    if last == GEN_UNSEEN { 0 } else { last },
                                    None,
                                )
                            }
                        }
                    })
                })
                .collect();
            probes
                .into_iter()
                .enumerate()
                .map(|(shard, p)| {
                    // A panicking probe must not take the whole report
                    // down with it: report that shard as unreachable.
                    p.join().unwrap_or_else(|_| {
                        let last = self.last_gen[shard].load(Ordering::SeqCst);
                        ShardHealth::new(
                            shard,
                            self.membership.addr(shard),
                            false,
                            if last == GEN_UNSEEN { 0 } else { last },
                            None,
                        )
                    })
                })
                .collect()
        });
        let mut report = ClusterHealthReport::aggregate(rows);
        if let Some(plane) = &self.detector {
            plane.annotate(&mut report);
        }
        report
    }

    /// The router's own (non-durable) health report: its forwarding
    /// queue, plus the restart count it has observed fleet-wide in the
    /// `steals`-adjacent observability slots it doesn't use.
    fn health_report(&self) -> HealthReport {
        let (queue_depth, in_flight) = self
            .pool
            .lock()
            .expect("pool lock poisoned")
            .as_ref()
            .map_or((0, 0), |p| (p.queue_depth(), p.in_flight()));
        HealthReport {
            generation: 0,
            durable: false,
            recovered_cache_entries: 0,
            corrupt_snapshots_skipped: 0,
            store_corrupt_candidates: 0,
            snapshots_written: 0,
            cache_entries: 0,
            queue_depth,
            in_flight,
            stuck_workers: 0,
            steals: 0,
            deepest_queue: 0,
            uptime_micros: self.metrics.uptime_micros(),
        }
    }
}

/// A handle to a running router.
///
/// Dropping the handle shuts the router down (and drains in-flight
/// forwards) if it is still running. Workers are never shut down by the
/// router — they belong to their supervisor or operator.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown: stop accepting, drain forwards, exit. Returns
    /// immediately; use [`RouterHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (locally or by a client).
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests answered by a replica other than their owner shard.
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::SeqCst)
    }

    /// Worker restarts the router has observed via generation changes.
    #[must_use]
    pub fn restarts_observed(&self) -> u64 {
        self.shared.restarts_observed.load(Ordering::SeqCst)
    }

    /// The router's live suspicion counters; `None` when the detector
    /// plane is disabled.
    #[must_use]
    pub fn suspicion_stats(&self) -> Option<crate::metrics::SuspicionStats> {
        self.shared.detector.as_ref().map(|p| p.stats())
    }

    /// Blocks until the router has stopped accepting and drained every
    /// in-flight forward. Waits for a shutdown request if none was made.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("router accept thread panicked");
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.shutdown();
            let _ = accept.join();
        }
    }
}

/// Binds and starts a router over `membership`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_router(
    config: &RouterConfig,
    membership: Arc<Membership>,
) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = if config.workers == 0 {
        ktudc_par::thread_count()
    } else {
        config.workers
    };
    let shards = membership.len();
    let shared = Arc::new(RouterShared {
        ring: HashRing::new(shards),
        policy: config.policy,
        pool: Mutex::new(Some(Pool::new(workers, config.queue_capacity))),
        conns: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        last_gen: (0..shards).map(|_| AtomicU64::new(GEN_UNSEEN)).collect(),
        restarts_observed: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        metrics: Metrics::new(),
        workers,
        queue_capacity: config.queue_capacity,
        idle_timeout: (config.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(config.idle_timeout_ms)),
        detector: config
            .detector
            .map(|cfg| DetectorPlane::start(Arc::clone(&membership), cfg)),
        shutdown: AtomicBool::new(false),
        membership,
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let shared = Arc::clone(shared);
                std::thread::spawn(move || connection_loop(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain: take the pool so late submitters see ShuttingDown, then let
    // every accepted forward finish and answer before returning.
    let pool = shared.pool.lock().expect("pool lock poisoned").take();
    if let Some(pool) = pool {
        pool.shutdown();
    }
    if let Some(plane) = &shared.detector {
        plane.stop();
    }
}

fn connection_loop(shared: &Arc<RouterShared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    let Ok(mut reader) =
        BoundedLineReader::new(read_half, shared.idle_timeout, MAX_REQUEST_LINE_BYTES)
    else {
        return;
    };
    loop {
        match reader.next_line() {
            LineEvent::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(shared, &line, &out);
            }
            LineEvent::Oversized => {
                shared.metrics.record_oversized();
                write_response(
                    &out,
                    SCHEMA_VERSION,
                    Response::error(
                        0,
                        ErrorCode::BadRequest,
                        format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                    ),
                );
                break;
            }
            LineEvent::IdleTimeout => {
                if !shared.shutdown.load(Ordering::SeqCst) {
                    shared.metrics.record_idle_reap();
                }
                break;
            }
            LineEvent::Eof => break,
        }
    }
}

fn handle_line(shared: &Arc<RouterShared>, line: &str, out: &Arc<Mutex<TcpStream>>) {
    let request: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.record_malformed();
            write_response(
                out,
                SCHEMA_VERSION,
                Response::error(0, ErrorCode::BadRequest, e.to_string()),
            );
            return;
        }
    };
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&request.schema_version) {
        write_response(
            out,
            SCHEMA_VERSION,
            Response::error(
                request.id,
                ErrorCode::UnsupportedVersion,
                format!(
                    "request schema_version {} but this router speaks \
                     {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}",
                    request.schema_version
                ),
            ),
        );
        return;
    }
    let version = request.schema_version;
    let endpoint = request.kind.endpoint();
    let start = Instant::now();
    match request.kind {
        RequestKind::Stats => {
            let (queue_depth, steals, deepest_queue) = shared
                .pool
                .lock()
                .expect("pool lock poisoned")
                .as_ref()
                .map_or((0, 0, 0), |p| {
                    let s = p.stats();
                    (p.queue_depth(), s.steals, s.deepest_queue)
                });
            let mut report = shared.metrics.report(
                PoolCounters {
                    workers: shared.workers,
                    queue_depth,
                    queue_capacity: shared.queue_capacity,
                    steals,
                    deepest_queue,
                },
                0,
                0,
            );
            if let Some(plane) = &shared.detector {
                report.suspicion = Some(plane.stats());
            }
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Stats(report)),
            );
        }
        RequestKind::Health => {
            let report = shared.health_report();
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Health(report)),
            );
        }
        RequestKind::ClusterHealth => {
            let report = shared.cluster_health();
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                out,
                version,
                Response::new(
                    request.id,
                    false,
                    micros,
                    ResponseKind::ClusterHealth(report),
                ),
            );
        }
        RequestKind::Ping => {
            // The router proves its own liveness: answered inline, never
            // queued behind forwarding (a saturated router still pongs).
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Pong),
            );
        }
        RequestKind::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            let micros = elapsed_micros(start);
            shared.metrics.record(endpoint, micros, false);
            write_response(
                out,
                version,
                Response::new(request.id, false, micros, ResponseKind::Shutdown),
            );
        }
        kind @ (RequestKind::Cell(_)
        | RequestKind::Check(_)
        | RequestKind::Explore(_)
        | RequestKind::Classify(_)) => {
            dispatch_forward(
                shared,
                request.id,
                version,
                kind,
                request.options,
                start,
                out,
            );
        }
    }
}

/// Queues one forwarding job on the router's bounded pool, shedding
/// typed `Overloaded` when it is full — the router's own backpressure,
/// in front of each worker's admission control.
fn dispatch_forward(
    shared: &Arc<RouterShared>,
    id: u64,
    version: u32,
    kind: RequestKind,
    options: RequestOptions,
    start: Instant,
    out: &Arc<Mutex<TcpStream>>,
) {
    let endpoint = kind.endpoint();
    let job = {
        let shared = Arc::clone(shared);
        let out = Arc::clone(out);
        move || {
            let response = match shared.forward(&kind, options) {
                Ok(mut resp) => {
                    resp.id = id;
                    shared
                        .metrics
                        .record(endpoint, elapsed_micros(start), resp.cached);
                    resp
                }
                Err(e) => {
                    shared.metrics.record_error(endpoint);
                    Response::error(
                        id,
                        ErrorCode::Internal,
                        format!("every replica failed: {e}"),
                    )
                }
            };
            write_response(&out, version, response);
        }
    };
    let submitted = {
        let pool = shared.pool.lock().expect("pool lock poisoned");
        match pool.as_ref() {
            Some(pool) => pool.try_execute(job),
            None => Err(SubmitError::Closed),
        }
    };
    match submitted {
        Ok(()) => {}
        Err(SubmitError::Full) => {
            shared.metrics.record_overload(endpoint);
            write_response(
                out,
                version,
                Response::error_with_retry(
                    id,
                    ErrorCode::Overloaded,
                    "router forwarding queue is full",
                    1,
                ),
            );
        }
        Err(SubmitError::Closed) => {
            shared.metrics.record_error(endpoint);
            write_response(
                out,
                version,
                Response::error(id, ErrorCode::ShuttingDown, "router is draining"),
            );
        }
    }
}

/// Writes one response line. Unlike the worker's writer this never
/// overwrites `generation` — a forwarded response carries the answering
/// *worker's* generation, which is the whole point of per-shard restart
/// tracking. The version is rewritten to the one the requester spoke.
fn write_response(out: &Mutex<TcpStream>, version: u32, mut response: Response) {
    response.schema_version = version;
    let Ok(mut line) = serde_json::to_string(&response) else {
        return;
    };
    line.push('\n');
    let mut stream = out.lock().expect("stream lock poisoned");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.flush();
}

fn elapsed_micros(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::server::{serve, ServeConfig};
    use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        }
    }

    fn start_workers(n: usize) -> (Vec<crate::server::ServerHandle>, Arc<Membership>) {
        let servers: Vec<_> = (0..n)
            .map(|_| {
                serve(&ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                })
                .expect("serve worker")
            })
            .collect();
        let membership = Arc::new(Membership::new(
            servers.iter().map(|s| s.addr().to_string()).collect(),
        ));
        (servers, membership)
    }

    #[test]
    fn router_answers_are_identical_to_direct_computation() {
        let (workers, membership) = start_workers(2);
        let router = serve_router(
            &RouterConfig {
                policy: quick_policy(),
                workers: 4,
                ..RouterConfig::default()
            },
            membership,
        )
        .expect("router");

        let mut client = Client::connect(router.addr()).expect("connect");
        for i in 0..4u64 {
            let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(1)
                .horizon(40 + i);
            let resp = client
                .request(RequestKind::Cell(spec.clone()))
                .expect("routed cell");
            let ResponseKind::Cell(outcome) = resp.result else {
                panic!("expected a cell payload, got {:?}", resp.result);
            };
            assert_eq!(outcome, run_cell(&spec), "routed answer must equal direct");
            assert!(resp.shard.is_some(), "router must stamp the shard");
        }
        // A repeated spec hits the owning worker's cache through the
        // router (same key -> same shard).
        let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(1)
            .horizon(40);
        let resp = client
            .request(RequestKind::Cell(spec))
            .expect("warm routed cell");
        assert!(resp.cached, "resent spec must be a shard cache hit");
        drop(client);
        router.shutdown();
        for w in workers {
            w.shutdown();
        }
    }

    #[test]
    fn router_fails_over_when_a_shard_is_down_and_reports_cluster_health() {
        let (workers, membership) = start_workers(2);
        // Kill shard 1 by pointing it at a dead address.
        membership.set_addr(1, "127.0.0.1:1");
        let router = serve_router(
            &RouterConfig {
                policy: quick_policy(),
                workers: 2,
                ..RouterConfig::default()
            },
            Arc::clone(&membership),
        )
        .expect("router");

        let mut client = Client::connect(router.addr()).expect("connect");
        for i in 0..8u64 {
            let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(1)
                .horizon(40 + i);
            let resp = client
                .request(RequestKind::Cell(spec.clone()))
                .expect("routed cell");
            let ResponseKind::Cell(outcome) = resp.result else {
                panic!("expected a cell payload, got {:?}", resp.result);
            };
            assert_eq!(outcome, run_cell(&spec), "failover must not change answers");
            assert_eq!(resp.shard, Some(0), "only shard 0 is alive");
        }
        assert!(
            router.failovers() > 0,
            "some keys belonged to the dead shard"
        );

        let report = client.cluster_health().expect("cluster health");
        assert_eq!(report.shards.len(), 2);
        assert_eq!(report.reachable_shards, 1);
        assert!(report.shards[0].reachable);
        assert!(!report.shards[1].reachable);
        drop(client);
        router.shutdown();
        for w in workers {
            w.shutdown();
        }
    }

    #[test]
    fn router_serves_its_own_stats_and_health() {
        let (workers, membership) = start_workers(1);
        let router = serve_router(
            &RouterConfig {
                policy: quick_policy(),
                workers: 2,
                queue_capacity: 16,
                ..RouterConfig::default()
            },
            membership,
        )
        .expect("router");
        let mut client = Client::connect(router.addr()).expect("connect");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.queue_capacity, 16);
        let health = client.health().expect("health");
        assert!(!health.durable);
        assert_eq!(health.generation, 0);
        // A ClusterClient pointed at the router alone sees the fleet
        // view, not one row about the router: `ctl --cluster <router>`
        // must report every worker.
        let through_router = ClusterClient::new(
            Arc::new(Membership::new(vec![router.addr().to_string()])),
            quick_policy(),
        );
        let report = through_router.cluster_health();
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.reachable_shards, 1);
        assert_eq!(report.shards[0].addr, workers[0].addr().to_string());
        // Shutdown over the wire drains the router, not the workers.
        client.shutdown_server().expect("shutdown ack");
        router.join();
        let mut direct = Client::connect(workers[0].addr()).expect("worker still up");
        assert!(direct.health().is_ok());
        for w in workers {
            w.shutdown();
        }
    }
}
