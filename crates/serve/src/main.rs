//! The `ktudc-serve` daemon binary.
//!
//! ```text
//! ktudc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//!             [--data-dir PATH] [--snapshot-every N] [--target-p99-ms N]
//!             [--watchdog-tick-ms N] [--stuck-after-ticks N] [--supervise]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound, then runs
//! until a client sends a `Shutdown` request or the process receives
//! SIGTERM/SIGINT (ctrl-c), either of which drains every accepted
//! request before exiting.
//!
//! `--data-dir` makes the daemon durable: the scenario cache is
//! snapshotted there (atomically, checksummed) every `--snapshot-every`
//! computed outcomes and warm-loaded on the next boot, which claims a
//! fresh generation. `--supervise` runs the daemon as a supervised
//! child: the parent re-execs itself without the flag and restarts the
//! child on abnormal exits with crash-loop backoff.

use ktudc_serve::{serve, supervise, ServeConfig, SupervisorPolicy};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Signal handling without a runtime: `std` exposes no signal API, so on
/// Unix we register a C handler through libc's `signal` (in scope for a
/// daemon: this is the one place the workspace steps outside safe Rust,
/// and the handler only stores to an atomic — async-signal-safe). On
/// other platforms termination is request-driven only.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the C standard library's registration call;
        // the handler is a plain `extern "C"` fn that only stores to a
        // static atomic, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn received() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ktudc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] \
         [--data-dir PATH] [--snapshot-every N] [--target-p99-ms N] [--watchdog-tick-ms N] \
         [--stuck-after-ticks N] [--supervise]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServeConfig, bool) {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7199".to_string(),
        ..ServeConfig::default()
    };
    let mut supervised = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-cap" => {
                config.queue_capacity = parse_num(&value("--queue-cap"), "--queue-cap")
            }
            "--cache-cap" => {
                config.cache_capacity = parse_num(&value("--cache-cap"), "--cache-cap")
            }
            "--data-dir" => config.data_dir = Some(value("--data-dir").into()),
            "--snapshot-every" => {
                config.snapshot_every =
                    parse_num(&value("--snapshot-every"), "--snapshot-every") as u64
            }
            "--target-p99-ms" => {
                config.target_p99_ms =
                    parse_num(&value("--target-p99-ms"), "--target-p99-ms") as u64
            }
            "--watchdog-tick-ms" => {
                config.watchdog_tick_ms =
                    parse_num(&value("--watchdog-tick-ms"), "--watchdog-tick-ms") as u64
            }
            "--stuck-after-ticks" => {
                config.stuck_after_ticks =
                    parse_num(&value("--stuck-after-ticks"), "--stuck-after-ticks") as u64
            }
            "--supervise" => supervised = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    (config, supervised)
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s}");
        usage()
    })
}

fn main() {
    let (config, supervised) = parse_args();
    signals::install();
    if supervised {
        supervised_main();
    }
    let handle = match serve(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ktudc-serve: failed to start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let recovery = handle.recovery();
    if config.data_dir.is_some() {
        println!(
            "ktudc-serve: generation {} ({} cache entries recovered, {} corrupt snapshots skipped, ready in {} µs)",
            recovery.generation,
            recovery.recovered_cache_entries,
            recovery.corrupt_snapshots_skipped,
            recovery.restart_to_ready_micros
        );
    }
    println!("listening on {}", handle.addr());
    while !handle.is_shutdown() && !signals::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    handle.join();
    println!("ktudc-serve: drained and stopped");
}

/// The `--supervise` parent: spawn the daemon as a child (same flags
/// minus `--supervise`), restart it on abnormal exits with crash-loop
/// backoff, and kill it when the operator signals the supervisor. A
/// durable child recovers its cache from the last snapshot on every
/// restart, so a crash here costs warm-up time, never correctness.
fn supervised_main() -> ! {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("ktudc-serve: cannot find own executable: {e}");
        std::process::exit(1);
    });
    let child_args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--supervise")
        .collect();
    static STOP: AtomicBool = AtomicBool::new(false);
    // Bridge the signal flag into the supervisor's stop flag from a
    // watcher thread (the C handler can only store to its own static).
    std::thread::spawn(|| loop {
        if signals::received() {
            STOP.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    match supervise(
        move || {
            let child = std::process::Command::new(&exe).args(&child_args).spawn()?;
            println!("ktudc-serve: supervising pid {}", child.id());
            Ok(child)
        },
        SupervisorPolicy::default(),
        &STOP,
    ) {
        Ok(report) => {
            if report.gave_up {
                eprintln!(
                    "ktudc-serve: giving up after {} restarts (crash loop)",
                    report.restarts
                );
                std::process::exit(1);
            }
            println!(
                "ktudc-serve: supervision ended ({} restarts)",
                report.restarts
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("ktudc-serve: supervision failed: {e}");
            std::process::exit(1);
        }
    }
}
