//! The `ktudc-serve` daemon binary.
//!
//! ```text
//! ktudc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound, then runs
//! until a client sends a `Shutdown` request or the process receives
//! SIGTERM/SIGINT (ctrl-c), either of which drains every accepted
//! request before exiting.

use ktudc_serve::{serve, ServeConfig};
use std::time::Duration;

/// Signal handling without a runtime: `std` exposes no signal API, so on
/// Unix we register a C handler through libc's `signal` (in scope for a
/// daemon: this is the one place the workspace steps outside safe Rust,
/// and the handler only stores to an atomic — async-signal-safe). On
/// other platforms termination is request-driven only.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the C standard library's registration call;
        // the handler is a plain `extern "C"` fn that only stores to a
        // static atomic, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn received() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ktudc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]"
    );
    std::process::exit(2);
}

fn parse_args() -> ServeConfig {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7199".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-cap" => {
                config.queue_capacity = parse_num(&value("--queue-cap"), "--queue-cap")
            }
            "--cache-cap" => {
                config.cache_capacity = parse_num(&value("--cache-cap"), "--cache-cap")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    config
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s}");
        usage()
    })
}

fn main() {
    let config = parse_args();
    signals::install();
    let handle = match serve(&config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ktudc-serve: failed to bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    while !handle.is_shutdown() && !signals::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    handle.join();
    println!("ktudc-serve: drained and stopped");
}
