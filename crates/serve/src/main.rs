//! The `ktudc-serve` daemon binary.
//!
//! ```text
//! ktudc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//!             [--data-dir PATH] [--snapshot-every N] [--target-p99-ms N]
//!             [--watchdog-tick-ms N] [--stuck-after-ticks N]
//!             [--idle-timeout-ms N] [--supervise]
//! ktudc-serve --router --shards HOST:P1,HOST:P2,... [--addr HOST:PORT]
//!             [--workers N] [--queue-cap N] [--probe-ms N]
//! ktudc-serve --router --fleet N [--addr HOST:PORT] [--workers N]
//!             [--queue-cap N] [--data-dir PATH] [--probe-ms N] [worker flags...]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound, then runs
//! until a client sends a `Shutdown` request or the process receives
//! SIGTERM/SIGINT (ctrl-c), either of which drains every accepted
//! request before exiting.
//!
//! `--data-dir` makes the daemon durable: the scenario cache is
//! snapshotted there (atomically, checksummed) every `--snapshot-every`
//! computed outcomes and warm-loaded on the next boot, which claims a
//! fresh generation. `--supervise` runs the daemon as a supervised
//! child: the parent re-execs itself without the flag and restarts the
//! child on abnormal exits with crash-loop backoff.
//!
//! `--router` runs the cluster front-end instead of a worker: requests
//! are consistent-hashed by cache key onto the shards and failed over
//! to replicas when a shard is down or shedding. `--shards` points the
//! router at externally managed workers; `--fleet N` makes it launch
//! and supervise `N` workers itself (on ephemeral ports, each with its
//! own `shard-<i>` subdirectory of `--data-dir` when one is given, so
//! the per-shard caches snapshot independently). In router mode
//! `--workers`/`--queue-cap` size the router's own forwarding pool;
//! the remaining worker flags are passed through to a `--fleet`. The
//! live failure-detector plane heartbeats every shard (on by default);
//! `--probe-ms N` overrides its cadence and `--probe-ms 0` disables it.

use ktudc_serve::{
    launch_fleet, serve, serve_router, supervise, DetectorConfig, Fleet, Membership, RetryPolicy,
    RouterConfig, ServeConfig, SupervisorPolicy,
};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Signal handling without a runtime: `std` exposes no signal API, so on
/// Unix we register a C handler through libc's `signal` (in scope for a
/// daemon: this is the one place the workspace steps outside safe Rust,
/// and the handler only stores to an atomic — async-signal-safe). On
/// other platforms termination is request-driven only.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the C standard library's registration call;
        // the handler is a plain `extern "C"` fn that only stores to a
        // static atomic, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn received() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod signals {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ktudc-serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] \
         [--data-dir PATH] [--snapshot-every N] [--target-p99-ms N] [--watchdog-tick-ms N] \
         [--stuck-after-ticks N] [--idle-timeout-ms N] [--supervise]\n       \
         ktudc-serve --router (--shards HOST:P1,HOST:P2,... | --fleet N) [--addr HOST:PORT] \
         [--workers N] [--queue-cap N] [--data-dir PATH] [--probe-ms N] [worker flags...]"
    );
    std::process::exit(2);
}

/// How this process should run, decided entirely by flag validation
/// before any socket or child process exists.
enum Mode {
    /// A single worker daemon (the pre-cluster behavior).
    Server { supervised: bool },
    /// The cluster front-end over externally managed workers.
    RouterOverShards { members: Vec<String> },
    /// The cluster front-end launching and supervising its own workers.
    RouterOverFleet { shards: usize },
}

fn parse_args() -> (ServeConfig, Mode, Option<DetectorConfig>) {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7199".to_string(),
        ..ServeConfig::default()
    };
    let mut supervised = false;
    let mut router = false;
    let mut shards: Option<String> = None;
    let mut fleet: Option<usize> = None;
    let mut probe_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-cap" => {
                config.queue_capacity = parse_num(&value("--queue-cap"), "--queue-cap")
            }
            "--cache-cap" => {
                config.cache_capacity = parse_num(&value("--cache-cap"), "--cache-cap")
            }
            "--data-dir" => config.data_dir = Some(value("--data-dir").into()),
            "--snapshot-every" => {
                config.snapshot_every =
                    parse_num(&value("--snapshot-every"), "--snapshot-every") as u64
            }
            "--target-p99-ms" => {
                config.target_p99_ms =
                    parse_num(&value("--target-p99-ms"), "--target-p99-ms") as u64
            }
            "--watchdog-tick-ms" => {
                config.watchdog_tick_ms =
                    parse_num(&value("--watchdog-tick-ms"), "--watchdog-tick-ms") as u64
            }
            "--stuck-after-ticks" => {
                config.stuck_after_ticks =
                    parse_num(&value("--stuck-after-ticks"), "--stuck-after-ticks") as u64
            }
            "--idle-timeout-ms" => {
                config.idle_timeout_ms =
                    parse_num(&value("--idle-timeout-ms"), "--idle-timeout-ms") as u64
            }
            "--probe-ms" => probe_ms = Some(parse_num(&value("--probe-ms"), "--probe-ms") as u64),
            "--supervise" => supervised = true,
            "--router" => router = true,
            "--shards" => shards = Some(value("--shards")),
            "--fleet" => fleet = Some(parse_num(&value("--fleet"), "--fleet")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    // Flag-combination contract, checked before any I/O.
    if (shards.is_some() || fleet.is_some()) && !router {
        eprintln!("--shards/--fleet require --router");
        usage();
    }
    if probe_ms.is_some() && !router {
        eprintln!("--probe-ms tunes the router's failure-detector plane; it requires --router");
        usage();
    }
    // The plane is on by default in router mode; `--probe-ms 0` disables
    // it, any other value overrides the heartbeat cadence.
    let detector = match probe_ms {
        Some(0) => None,
        Some(ms) => Some(DetectorConfig {
            probe_period: Duration::from_millis(ms),
            ..DetectorConfig::default()
        }),
        None => Some(DetectorConfig::default()),
    };
    if !router {
        return (config, Mode::Server { supervised }, detector);
    }
    if supervised {
        eprintln!("--supervise cannot be combined with --router (a --fleet already supervises)");
        usage();
    }
    let mode = match (shards, fleet) {
        (Some(_), Some(_)) => {
            eprintln!("--shards and --fleet are mutually exclusive");
            usage();
        }
        (None, None) => {
            eprintln!("--router needs a cluster: --shards HOST:P1,... or --fleet N");
            usage();
        }
        (Some(list), None) => {
            if config.data_dir.is_some() {
                eprintln!("--data-dir belongs to the workers; with --shards they are not ours");
                usage();
            }
            let members: Vec<String> = list
                .split(',')
                .map(|m| m.trim().to_string())
                .filter(|m| !m.is_empty())
                .collect();
            if members.is_empty() {
                eprintln!("--shards needs at least one HOST:PORT member");
                usage();
            }
            for member in &members {
                if !member_is_plausible(member) {
                    eprintln!("--shards member {member:?} is not HOST:PORT");
                    usage();
                }
            }
            Mode::RouterOverShards { members }
        }
        (None, Some(n)) => {
            if n == 0 {
                eprintln!("--fleet needs at least one worker");
                usage();
            }
            Mode::RouterOverFleet { shards: n }
        }
    };
    (config, mode, detector)
}

/// Syntactic HOST:PORT check (no DNS, no connection): a non-empty host
/// before the last `:` and a `u16` after it.
fn member_is_plausible(member: &str) -> bool {
    match member.rsplit_once(':') {
        Some((host, port)) => !host.is_empty() && port.parse::<u16>().is_ok(),
        None => false,
    }
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s}");
        usage()
    })
}

fn main() {
    let (config, mode, detector) = parse_args();
    signals::install();
    match mode {
        Mode::Server { supervised: true } => supervised_main(),
        Mode::Server { supervised: false } => server_main(&config),
        Mode::RouterOverShards { members } => {
            router_main(&config, Arc::new(Membership::new(members)), None, detector)
        }
        Mode::RouterOverFleet { shards } => {
            let fleet = spawn_fleet(&config, shards);
            if !fleet.wait_ready(Duration::from_secs(30)) {
                eprintln!("ktudc-serve: fleet did not become ready in 30s");
                fleet.stop_and_join();
                std::process::exit(1);
            }
            let membership = fleet.membership();
            router_main(&config, membership, Some(fleet), detector);
        }
    }
}

fn server_main(config: &ServeConfig) {
    let handle = match serve(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ktudc-serve: failed to start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let recovery = handle.recovery();
    if config.data_dir.is_some() {
        println!(
            "ktudc-serve: generation {} ({} cache entries recovered, {} corrupt snapshots skipped, ready in {} µs)",
            recovery.generation,
            recovery.recovered_cache_entries,
            recovery.corrupt_snapshots_skipped,
            recovery.restart_to_ready_micros
        );
    }
    println!("listening on {}", handle.addr());
    while !handle.is_shutdown() && !signals::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    handle.join();
    println!("ktudc-serve: drained and stopped");
}

/// Launches `shards` supervised worker children: this same binary minus
/// the cluster flags, each on an ephemeral port and (when `--data-dir`
/// is set) with its own `shard-<i>` snapshot directory, so restarts
/// recover warm per-shard caches.
fn spawn_fleet(config: &ServeConfig, shards: usize) -> Fleet {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("ktudc-serve: cannot find own executable: {e}");
        std::process::exit(1);
    });
    let config = config.clone();
    launch_fleet(shards, SupervisorPolicy::default(), move |shard| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--addr").arg("127.0.0.1:0");
        cmd.arg("--cache-cap")
            .arg(config.cache_capacity.to_string());
        cmd.arg("--snapshot-every")
            .arg(config.snapshot_every.to_string());
        cmd.arg("--target-p99-ms")
            .arg(config.target_p99_ms.to_string());
        cmd.arg("--watchdog-tick-ms")
            .arg(config.watchdog_tick_ms.to_string());
        cmd.arg("--stuck-after-ticks")
            .arg(config.stuck_after_ticks.to_string());
        cmd.arg("--idle-timeout-ms")
            .arg(config.idle_timeout_ms.to_string());
        if let Some(base) = &config.data_dir {
            let dir = ktudc_store::shard_data_dir(base, shard);
            std::fs::create_dir_all(&dir)?;
            cmd.arg("--data-dir").arg(dir);
        }
        cmd.stdout(std::process::Stdio::piped());
        cmd.spawn()
    })
}

/// Runs the router until shutdown, then drains it and (for a
/// `--fleet`) stops the supervised workers.
fn router_main(
    config: &ServeConfig,
    membership: Arc<Membership>,
    fleet: Option<Fleet>,
    detector: Option<DetectorConfig>,
) {
    let router_config = RouterConfig {
        addr: config.addr.clone(),
        policy: RetryPolicy::default(),
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        idle_timeout_ms: config.idle_timeout_ms,
        detector,
    };
    let handle = match serve_router(&router_config, membership) {
        Ok(h) => h,
        Err(e) => {
            eprintln!(
                "ktudc-serve: failed to start router on {}: {e}",
                config.addr
            );
            if let Some(fleet) = fleet {
                fleet.stop_and_join();
            }
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    while !handle.is_shutdown() && !signals::received() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.shutdown();
    handle.join();
    if let Some(fleet) = fleet {
        for (shard, report) in fleet.stop_and_join().into_iter().enumerate() {
            match report {
                Ok(r) if r.gave_up => {
                    eprintln!(
                        "ktudc-serve: shard {shard} gave up after {} restarts",
                        r.restarts
                    )
                }
                Ok(r) => println!(
                    "ktudc-serve: shard {shard} stopped ({} restarts)",
                    r.restarts
                ),
                Err(e) => eprintln!("ktudc-serve: shard {shard} supervision failed: {e}"),
            }
        }
    }
    println!("ktudc-serve: router drained and stopped");
}

/// The `--supervise` parent: spawn the daemon as a child (same flags
/// minus `--supervise`), restart it on abnormal exits with crash-loop
/// backoff, and kill it when the operator signals the supervisor. A
/// durable child recovers its cache from the last snapshot on every
/// restart, so a crash here costs warm-up time, never correctness.
fn supervised_main() -> ! {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("ktudc-serve: cannot find own executable: {e}");
        std::process::exit(1);
    });
    let child_args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--supervise")
        .collect();
    static STOP: AtomicBool = AtomicBool::new(false);
    // Bridge the signal flag into the supervisor's stop flag from a
    // watcher thread (the C handler can only store to its own static).
    std::thread::spawn(|| loop {
        if signals::received() {
            STOP.store(true, std::sync::atomic::Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });
    match supervise(
        move || {
            let child = std::process::Command::new(&exe).args(&child_args).spawn()?;
            println!("ktudc-serve: supervising pid {}", child.id());
            Ok(child)
        },
        SupervisorPolicy::default(),
        &STOP,
    ) {
        Ok(report) => {
            if report.gave_up {
                eprintln!(
                    "ktudc-serve: giving up after {} restarts (crash loop)",
                    report.restarts
                );
                std::process::exit(1);
            }
            println!(
                "ktudc-serve: supervision ended ({} restarts)",
                report.restarts
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("ktudc-serve: supervision failed: {e}");
            std::process::exit(1);
        }
    }
}
