//! Consistent hashing of cache keys onto cluster shards.
//!
//! The cluster routes each cacheable request by the same 64-bit digest
//! the scenario cache keys on ([`LruCache::key_of`](crate::cache::LruCache::key_of)
//! over the canonical JSON body), so a request's owner shard is a pure
//! function of its body: identical specs always land on the same worker,
//! the per-worker caches partition the key space with no duplicate
//! compute, and a warm sweep re-hits the same shards it warmed.
//!
//! The ring places [`VNODES`] virtual points per shard on a `u64` circle
//! and assigns a key to the shard owning the first point at or after it
//! (wrapping). Virtual points give two properties a plain
//! `key % shards` would not have:
//!
//! - **balance** — each shard owns many small arcs instead of one big
//!   one, so loads even out;
//! - **stability** — removing a shard reassigns *only the keys it
//!   owned*; every other key keeps its shard, so a failover does not
//!   invalidate the surviving shards' caches.
//!
//! [`HashRing::replicas`] orders the remaining shards by ring distance,
//! which makes failover deterministic: the first fallback for a key is
//! exactly the shard that would own it if the owner left the ring
//! (pinned by a unit test below).

/// Virtual points each shard contributes to the ring. 64 keeps the
/// per-shard load spread within a few percent for small clusters while
/// the full ring (shards × 64 points) stays trivially searchable.
const VNODES: usize = 64;

/// Stateless 64-bit mixer (the splitmix64 finalizer) — the ring's hash
/// function over (shard, vnode) pairs. Deterministic across processes,
/// which the router/client/worker trio relies on: they never exchange
/// ring state, they just compute the same one.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over shard indices `0..shards`.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` shards (at least 1; a zero-shard cluster is
    /// nonsense and is clamped up rather than made panicky downstream).
    #[must_use]
    pub fn new(shards: usize) -> HashRing {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                // Mix the pair through two rounds so shard and vnode
                // both diffuse into every output bit.
                let point = mix64(mix64(shard as u64) ^ (vnode as u64).wrapping_mul(0x9e39));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// How many shards the ring spans.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the shard of the first ring point at or
    /// after `key`, wrapping past the top of the `u64` circle.
    #[must_use]
    pub fn shard_for(&self, key: u64) -> usize {
        let at = self.points.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.points[at % self.points.len()];
        shard
    }

    /// Every shard in failover order for `key`: the owner first, then
    /// each remaining shard by first appearance walking the ring from
    /// `key`. Deterministic, so router and cluster client agree on where
    /// a request goes when its owner is down without exchanging state.
    #[must_use]
    pub fn replicas(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        let start = self.points.partition_point(|&(p, _)| p < key);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }

    /// The ring with `shard`'s points removed (the cluster as a failover
    /// sees it). Shard indices keep their original meaning.
    #[must_use]
    pub fn without(&self, shard: usize) -> HashRing {
        HashRing {
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(_, s)| s != shard)
                .collect(),
            shards: self.shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let ring = HashRing::new(3);
        let again = HashRing::new(3);
        for key in (0..10_000u64).map(mix64) {
            let shard = ring.shard_for(key);
            assert!(shard < 3);
            assert_eq!(shard, again.shard_for(key), "rings must agree");
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for key in (0..40_000u64).map(mix64) {
            counts[ring.shard_for(key)] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            // Perfect balance is 10_000; vnode placement keeps every
            // shard within a factor of two of it.
            assert!(
                (5_000..=20_000).contains(&count),
                "shard {shard} owns {count} of 40000 keys"
            );
        }
    }

    #[test]
    fn replicas_start_with_the_owner_and_cover_every_shard() {
        let ring = HashRing::new(5);
        for key in (0..1_000u64).map(mix64) {
            let order = ring.replicas(key);
            assert_eq!(order.len(), 5);
            assert_eq!(order[0], ring.shard_for(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "a permutation of all shards");
        }
    }

    #[test]
    fn first_fallback_is_the_owner_of_the_shrunken_ring() {
        // The failover contract: replicas()[1] is exactly where the key
        // goes if its owner leaves the ring. This is what makes "retry on
        // another replica" consistent between a client that failed over
        // and a router that saw the shard die.
        let ring = HashRing::new(4);
        for key in (0..2_000u64).map(mix64) {
            let order = ring.replicas(key);
            let owner = order[0];
            assert_eq!(order[1], ring.without(owner).shard_for(key));
        }
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys() {
        let ring = HashRing::new(4);
        let shrunk = ring.without(2);
        let mut moved = 0usize;
        let total = 10_000usize;
        for key in (0..total as u64).map(mix64) {
            let before = ring.shard_for(key);
            let after = shrunk.shard_for(key);
            if before == 2 {
                assert_ne!(after, 2, "dead shard must not be routed to");
                moved += 1;
            } else {
                assert_eq!(before, after, "surviving shards keep their keys");
            }
        }
        // Shard 2 owned roughly a quarter of the space.
        assert!(moved > total / 8, "only {moved} of {total} keys moved");
    }

    #[test]
    fn vnode_balance_holds_across_cluster_sizes() {
        // Statistical balance pin for every cluster size the serve plane
        // actually runs (3..=8 shards): the max/min key-share ratio
        // across shards stays under a fixed bound. The ring is fully
        // deterministic, so this is a regression tripwire on vnode
        // placement — fewer points or a weaker mixer blows it up.
        let total = 60_000u64;
        for shards in 3..=8usize {
            let ring = HashRing::new(shards);
            let mut counts = vec![0u64; shards];
            for key in (0..total).map(mix64) {
                counts[ring.shard_for(key)] += 1;
            }
            let max = *counts.iter().max().expect("non-empty");
            let min = *counts.iter().min().expect("non-empty");
            assert!(min > 0, "{shards} shards: a shard owns no keys");
            // Measured today: 1.33 (3 shards) up to 1.71 (8 shards).
            let ratio = max as f64 / min as f64;
            assert!(
                ratio <= 1.8,
                "{shards} shards: max/min key share {ratio:.3} ({counts:?})"
            );
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_shard_zero() {
        let ring = HashRing::new(1);
        for key in (0..100u64).map(mix64) {
            assert_eq!(ring.shard_for(key), 0);
            assert_eq!(ring.replicas(key), vec![0]);
        }
        // Zero clamps up instead of panicking downstream.
        assert_eq!(HashRing::new(0).shards(), 1);
    }
}
