//! A std-only TCP service layer over the ktudc workspace.
//!
//! `ktudc-serve` turns the Table-1 achievability harness
//! ([`ktudc_core::harness`]), the exhaustive explorer
//! ([`ktudc_sim::wire`]) and the epistemic model checker
//! ([`ktudc_epistemic`]) into a long-lived daemon speaking
//! newline-delimited JSON: one [`wire::Request`] per line in, one
//! [`wire::Response`] per line out, in whatever order the work finishes
//! (responses carry the request `id`, so clients pipeline freely).
//!
//! The daemon is deliberately boring infrastructure, built only on `std`
//! and the workspace's own crates:
//!
//! * **Bounded concurrency** — requests dispatch onto a
//!   [`ktudc_par::Pool`] with a hard queue capacity. When the queue is
//!   full the server *refuses* with a typed
//!   [`wire::ErrorCode::Overloaded`] response instead of buffering
//!   without bound; clients decide whether to retry.
//! * **Scenario cache** — outcomes are memoized in an LRU keyed by the
//!   canonical JSON of the request body ([`cache::LruCache`]), hashed
//!   with the platform-pinned
//!   [`StableHasher`](ktudc_model::hashing::StableHasher). Identical
//!   sweeps are answered from memory, byte-identically.
//! * **Observability** — per-endpoint request counts, cache hit rates
//!   and p50/p99 latencies ([`metrics::Metrics`]) are served by the
//!   `Stats` endpoint.
//! * **Graceful shutdown** — a `Shutdown` request (or, in the binary,
//!   SIGTERM/ctrl-c) stops accepting work, drains everything already
//!   queued or in flight, answers it, and only then exits.
//! * **Exactly-once compute under faults** — identical request bodies
//!   that race share one computation (single-flight dedup in
//!   [`server`]), so the [`client::HardenedClient`]'s
//!   reconnect-and-resend strategy never causes duplicate work; a
//!   test-only [`server::ServerFaults`] hook injects delayed, severed
//!   and short-write responses to prove it.
//! * **Crash-restart durability** — with a data directory configured
//!   ([`server::ServeConfig::data_dir`]), the scenario cache is
//!   periodically snapshotted through [`ktudc_store::SnapshotStore`]
//!   (atomic rename, checksummed, generation-stamped) and warm-loaded
//!   at boot; every response carries the server's restart *generation*,
//!   the `Health` endpoint reports it alongside recovery counters, and
//!   the [`client::HardenedClient`] turns a mid-conversation generation
//!   change into a typed [`client::ClientEvent::ServerRestarted`] while
//!   re-deriving outstanding work on the new process. The [`supervisor`]
//!   module restarts a crashing daemon with crash-loop backoff.
//! * **Wire-plane chaos** — [`chaosnet`] is a deterministic, seeded TCP
//!   fault proxy (toxiproxy-style) interposable on any hop: latency
//!   spikes, throttled writes, truncated frames, corrupted bytes,
//!   resets, half-open stalls, one-way partitions. [`audit`] records a
//!   whole campaign and asserts the uniform invariants end to end —
//!   byte-identical answers, exactly-once compute, generation
//!   monotonicity, typed-error-only degradation, bounded latency.
//! * **Live failure detection** — [`detector`] runs the paper's
//!   φ-accrual suspicion math ([`ktudc_fd::PhiEstimator`]) against the
//!   real cluster: a [`detector::DetectorPlane`] heartbeats every shard
//!   with the cheap `Ping` request, suspected shards are demoted at
//!   routing time (proactive failover), soft-suspected primaries are
//!   hedged to the next replica, and recovered shards are readmitted
//!   through a probation window. Suspicion is advisory only — it
//!   reorders replicas, it never drops requests or invents answers, so
//!   a wrong suspicion costs latency, never correctness.
//!
//! The companion binaries are `ktudc-serve` (the daemon) and `ctl` (a
//! client that submits the Table-1 UDC sweep as one pipelined batch and
//! prints the assembled table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod audit;
pub mod cache;
pub mod chaosnet;
pub mod client;
pub mod cluster;
pub mod detector;
pub mod metrics;
pub mod ring;
pub mod router;
pub mod server;
pub mod supervisor;
pub mod wire;

pub use admission::{AimdConfig, AimdController, JobRegistry};
pub use audit::{AuditReport, Auditor, FailureCount};
pub use chaosnet::{chaos_proxy, ChaosProxy, ChaosStatsSnapshot, Direction, Toxic, ToxicPlan};
pub use client::{Client, ClientError, ClientEvent, ClientMetrics, HardenedClient, RetryPolicy};
pub use cluster::{launch_fleet, ClusterClient, ClusterEvent, ClusterMetrics, Fleet, Membership};
pub use detector::{DetectorConfig, DetectorPlane, ShardSuspicion};
pub use metrics::{Endpoint, StatsReport, SuspicionStats};
pub use ring::HashRing;
pub use router::{serve_router, RouterConfig, RouterHandle};
pub use server::{serve, RecoveryReport, ServeConfig, ServerFaults, ServerHandle};
pub use supervisor::{supervise, CrashLoopBackoff, SupervisorPolicy, SupervisorReport};
pub use wire::{
    AbortedOutcome, CheckOutcome, CheckSpec, ClusterHealthReport, ErrorCode, HealthReport,
    PartialCell, PartialOutcome, Request, RequestKind, RequestOptions, Response, ResponseKind,
    ShardHealth, WireError, MAX_REQUEST_LINE_BYTES, MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
