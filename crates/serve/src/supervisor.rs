//! Crash-loop supervision: restart a dying daemon, with backoff, until
//! it is either stable or evidently hopeless.
//!
//! The policy logic ([`CrashLoopBackoff`]) is pure and unit-tested: each
//! child exit is classified by its uptime. A *rapid* exit (the child died
//! before [`SupervisorPolicy::stable_after`]) lengthens a doubling,
//! capped backoff and counts toward a give-up budget; an exit after a
//! stable run resets both, because a long-lived process that eventually
//! crashed is a failure to recover from, not a crash loop. The process
//! loop ([`supervise`]) wraps that policy around `std::process` children
//! and a caller-owned stop flag, so the binary's `--supervise` mode and
//! the kill-9 test harness share one implementation.
//!
//! Crucially, supervision composes with the durable server: every
//! restart recovers the scenario cache from the newest valid snapshot
//! and claims a fresh generation, so a supervised daemon converges to a
//! warm cache instead of recomputing the world after every crash.

use std::process::{Child, ExitStatus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// How often [`supervise`] polls the child and the stop flag.
const WAIT_POLL: Duration = Duration::from_millis(20);

/// Restart policy of a [`CrashLoopBackoff`].
#[derive(Clone, Copy, Debug)]
pub struct SupervisorPolicy {
    /// A child that lived at least this long before dying is considered
    /// to have been stable: its exit resets the crash streak.
    pub stable_after: Duration,
    /// Consecutive rapid crashes tolerated before giving up. The child
    /// is restarted after each of these, so the total spawn count before
    /// giving up is `max_rapid_crashes + 1`.
    pub max_rapid_crashes: u32,
    /// Backoff before the first restart of a streak; doubles per rapid
    /// crash.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            stable_after: Duration::from_secs(5),
            max_rapid_crashes: 5,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
        }
    }
}

/// The pure restart-decision core: feed it child uptimes, get restart
/// delays (or the verdict to give up).
#[derive(Clone, Copy, Debug)]
pub struct CrashLoopBackoff {
    policy: SupervisorPolicy,
    rapid_crashes: u32,
}

impl CrashLoopBackoff {
    /// A fresh streak under `policy`.
    #[must_use]
    pub fn new(policy: SupervisorPolicy) -> Self {
        CrashLoopBackoff {
            policy,
            rapid_crashes: 0,
        }
    }

    /// Classifies a child exit by its uptime: `Some(delay)` restarts
    /// after that backoff, `None` declares a crash loop and gives up.
    pub fn after_exit(&mut self, uptime: Duration) -> Option<Duration> {
        if uptime >= self.policy.stable_after {
            self.rapid_crashes = 0;
            return Some(self.policy.base_backoff.min(self.policy.max_backoff));
        }
        self.rapid_crashes += 1;
        if self.rapid_crashes > self.policy.max_rapid_crashes {
            return None;
        }
        let exp = (self.rapid_crashes - 1).min(16);
        let base = u64::try_from(self.policy.base_backoff.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let max = u64::try_from(self.policy.max_backoff.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        Some(Duration::from_millis(
            base.saturating_mul(1 << exp).min(max),
        ))
    }

    /// Rapid crashes in the current streak.
    #[must_use]
    pub fn rapid_crashes(&self) -> u32 {
        self.rapid_crashes
    }
}

/// What a [`supervise`] run did.
#[derive(Debug)]
pub struct SupervisorReport {
    /// Times the child was restarted (spawns minus one).
    pub restarts: u32,
    /// `true` when supervision ended because the crash-loop budget ran
    /// out rather than a clean child exit or a stop request.
    pub gave_up: bool,
    /// Exit status of the last child to exit, if any did.
    pub last_status: Option<ExitStatus>,
}

/// Runs `spawn`ed children until one exits cleanly (status 0), the
/// caller raises `stop`, or the crash-loop budget is spent.
///
/// When `stop` is raised the current child is killed and reaped before
/// returning — the supervisor never leaks a running child. A child that
/// exits with status 0 ends supervision: a clean exit means the daemon
/// was asked to shut down, which is not a failure to mask.
///
/// # Errors
///
/// Propagates spawn and wait failures (a child that cannot even be
/// spawned is not a crash to back off from, it is a configuration
/// error).
pub fn supervise<S>(
    mut spawn: S,
    policy: SupervisorPolicy,
    stop: &AtomicBool,
) -> std::io::Result<SupervisorReport>
where
    S: FnMut() -> std::io::Result<Child>,
{
    let mut backoff = CrashLoopBackoff::new(policy);
    let mut report = SupervisorReport {
        restarts: 0,
        gave_up: false,
        last_status: None,
    };
    loop {
        let started = Instant::now();
        let mut child = spawn()?;
        let status = loop {
            if let Some(status) = child.try_wait()? {
                break Some(status);
            }
            if stop.load(Ordering::SeqCst) {
                let _ = child.kill();
                let _ = child.wait();
                break None;
            }
            std::thread::sleep(WAIT_POLL);
        };
        let Some(status) = status else {
            return Ok(report); // stopped by the caller
        };
        report.last_status = Some(status);
        if status.success() {
            return Ok(report);
        }
        match backoff.after_exit(started.elapsed()) {
            Some(delay) => {
                sleep_unless_stopped(delay, stop);
                if stop.load(Ordering::SeqCst) {
                    return Ok(report);
                }
                report.restarts += 1;
            }
            None => {
                report.gave_up = true;
                return Ok(report);
            }
        }
    }
}

/// Sleeps up to `total`, waking early if `stop` is raised.
fn sleep_unless_stopped(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
        std::thread::sleep(WAIT_POLL.min(deadline.saturating_duration_since(Instant::now())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SupervisorPolicy {
        SupervisorPolicy {
            stable_after: Duration::from_secs(1),
            max_rapid_crashes: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
        }
    }

    #[test]
    fn rapid_crashes_escalate_then_give_up() {
        let mut b = CrashLoopBackoff::new(policy());
        let fast = Duration::from_millis(5);
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(10)));
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(20)));
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(40)));
        assert_eq!(b.rapid_crashes(), 3);
        // Budget spent: the fourth rapid crash is a crash loop.
        assert_eq!(b.after_exit(fast), None);
    }

    #[test]
    fn a_stable_run_resets_the_streak() {
        let mut b = CrashLoopBackoff::new(policy());
        let fast = Duration::from_millis(5);
        assert!(b.after_exit(fast).is_some());
        assert!(b.after_exit(fast).is_some());
        // The child then ran well past stable_after before dying.
        assert_eq!(
            b.after_exit(Duration::from_secs(2)),
            Some(Duration::from_millis(10))
        );
        assert_eq!(b.rapid_crashes(), 0);
        // The full rapid budget is available again.
        assert!(b.after_exit(fast).is_some());
        assert!(b.after_exit(fast).is_some());
        assert!(b.after_exit(fast).is_some());
        assert_eq!(b.after_exit(fast), None);
    }

    #[test]
    fn an_uptime_of_exactly_stable_after_counts_as_stable() {
        // The boundary is inclusive: `uptime >= stable_after` resets.
        let mut b = CrashLoopBackoff::new(policy());
        let fast = Duration::from_millis(5);
        assert!(b.after_exit(fast).is_some());
        assert!(b.after_exit(fast).is_some());
        assert_eq!(b.rapid_crashes(), 2);
        assert_eq!(
            b.after_exit(policy().stable_after),
            Some(Duration::from_millis(10))
        );
        assert_eq!(b.rapid_crashes(), 0);
    }

    #[test]
    fn an_uptime_just_under_stable_after_is_still_rapid() {
        let mut b = CrashLoopBackoff::new(policy());
        let almost = policy().stable_after - Duration::from_nanos(1);
        assert!(b.after_exit(almost).is_some());
        assert_eq!(b.rapid_crashes(), 1);
    }

    #[test]
    fn zero_rapid_budget_gives_up_on_the_first_rapid_crash() {
        // max_rapid_crashes is the number of *tolerated* rapid crashes,
        // so zero means the very first one is already a crash loop …
        let mut b = CrashLoopBackoff::new(SupervisorPolicy {
            max_rapid_crashes: 0,
            ..policy()
        });
        assert_eq!(b.after_exit(Duration::from_millis(5)), None);

        // … while a stable exit still restarts (it is not a crash loop).
        let mut b = CrashLoopBackoff::new(SupervisorPolicy {
            max_rapid_crashes: 0,
            ..policy()
        });
        assert!(b.after_exit(Duration::from_secs(2)).is_some());
    }

    #[test]
    fn the_backoff_that_lands_exactly_on_the_cap_is_not_clamped_early() {
        // base 10ms doubles to 20 then 40 = max_backoff exactly; the
        // third rapid crash must yield the full 40ms, and a fourth (with
        // budget left) must stay pinned there rather than overflow past.
        let mut b = CrashLoopBackoff::new(SupervisorPolicy {
            max_rapid_crashes: 10,
            ..policy()
        });
        let fast = Duration::from_millis(1);
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(10)));
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(20)));
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(40)));
        assert_eq!(b.after_exit(fast), Some(Duration::from_millis(40)));
    }

    #[test]
    fn a_stable_exit_backoff_respects_the_cap_too() {
        // Degenerate but legal: base_backoff above max_backoff. The
        // stable-exit restart path must clamp like the rapid path does.
        let mut b = CrashLoopBackoff::new(SupervisorPolicy {
            base_backoff: Duration::from_millis(500),
            max_backoff: Duration::from_millis(40),
            ..policy()
        });
        assert_eq!(
            b.after_exit(Duration::from_secs(2)),
            Some(Duration::from_millis(40))
        );
    }

    #[test]
    fn the_give_up_budget_is_spent_exactly_at_max_plus_one() {
        // With a budget of k, exactly k rapid crashes restart and the
        // (k+1)-th gives up — no off-by-one in either direction.
        for budget in [1u32, 2, 5] {
            let mut b = CrashLoopBackoff::new(SupervisorPolicy {
                max_rapid_crashes: budget,
                ..policy()
            });
            let fast = Duration::from_millis(1);
            for i in 0..budget {
                assert!(b.after_exit(fast).is_some(), "crash {i} of budget {budget}");
            }
            assert_eq!(b.after_exit(fast), None, "budget {budget}");
        }
    }

    #[test]
    fn backoff_is_capped() {
        let mut b = CrashLoopBackoff::new(SupervisorPolicy {
            max_rapid_crashes: 10,
            ..policy()
        });
        let fast = Duration::from_millis(1);
        let mut last = Duration::ZERO;
        for _ in 0..8 {
            last = b.after_exit(fast).unwrap();
        }
        assert_eq!(last, Duration::from_millis(40));
    }

    #[cfg(unix)]
    #[test]
    fn supervise_restarts_crashing_children_and_honors_clean_exit() {
        use std::process::Command;
        use std::sync::atomic::AtomicU32;

        // The child fails twice, then exits cleanly; supervision must
        // restart exactly twice and stop on the clean exit.
        let spawns = AtomicU32::new(0);
        let stop = AtomicBool::new(false);
        let report = supervise(
            || {
                let n = spawns.fetch_add(1, Ordering::SeqCst);
                let code = if n < 2 { 1 } else { 0 };
                Command::new("sh")
                    .arg("-c")
                    .arg(format!("exit {code}"))
                    .spawn()
            },
            SupervisorPolicy {
                stable_after: Duration::from_secs(60), // every exit is "rapid"
                max_rapid_crashes: 5,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            &stop,
        )
        .unwrap();
        assert_eq!(report.restarts, 2);
        assert!(!report.gave_up);
        assert!(report.last_status.unwrap().success());
    }

    #[cfg(unix)]
    #[test]
    fn supervise_gives_up_on_a_crash_loop() {
        use std::process::Command;

        let stop = AtomicBool::new(false);
        let report = supervise(
            || Command::new("sh").arg("-c").arg("exit 7").spawn(),
            SupervisorPolicy {
                stable_after: Duration::from_secs(60),
                max_rapid_crashes: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
            &stop,
        )
        .unwrap();
        assert!(report.gave_up);
        assert_eq!(report.restarts, 2);
        assert_eq!(report.last_status.unwrap().code(), Some(7));
    }
}
