//! The request/response envelope of the service protocol.
//!
//! Transport framing is one JSON object per `\n`-terminated line. The
//! *bodies* — [`CellSpec`]/[`CellOutcome`], [`ExploreSpec`]/
//! [`ExploreOutcome`], [`Formula`] — are the wire types the library
//! crates already pin in their own unit tests; this module adds the
//! envelope around them: a schema version, a client-chosen request `id`
//! (echoed back so pipelined responses can be matched out of order), and
//! a typed error vocabulary.
//!
//! Compatibility contract: [`SCHEMA_VERSION`] names the encoding of
//! *everything* on the wire. Any change to the envelope or to a pinned
//! body encoding must bump it; the server refuses mismatched versions
//! with [`ErrorCode::UnsupportedVersion`] rather than guessing.

use crate::metrics::{Endpoint, StatsReport};
use ktudc_core::harness::{CellOutcome, CellSpec};
use ktudc_epistemic::Formula;
use ktudc_fd::{ClassifySpec, RegimeVerdict};
use ktudc_model::{AbortReason, Point};
use ktudc_sim::wire::WireMsg;
use ktudc_sim::{ExploreOutcome, ExploreSpec};
use serde::{Deserialize, Serialize};

/// Version of the wire encoding (envelope + all body types).
///
/// History: 1 — original envelope; 2 — responses carry the server
/// `generation` (restart counter) and the `Health` endpoint exists;
/// 3 — requests may carry a deadline/priority/accept-partial triple
/// (omitted when default, so a v2 request line is also a valid v3
/// request line), responses carry `queue_wait_ms`/`compute_ms`, errors
/// carry a `retry_after_ms` hint, and `DeadlineExceeded` and
/// [`ResponseKind::Aborted`] exist; 4 — the `Classify` endpoint
/// (empirical detector classification:
/// [`RequestKind::Classify`]/[`ResponseKind::Classify`]), the `classify`
/// row in stats reports, and the derived-detector `FdChoice` variants in
/// cell specs; 5 — the cluster layer: the `ClusterHealth` endpoint
/// ([`RequestKind::ClusterHealth`]/[`ResponseKind::ClusterHealth`],
/// aggregating per-shard [`HealthReport`]s into a
/// [`ClusterHealthReport`]) and an optional `shard` field on responses
/// (omitted when absent, stamped by a router with the index of the
/// worker shard that answered); 6 — the detector plane: the cheap
/// [`RequestKind::Ping`] heartbeat probe (answered inline, never
/// queued), per-shard suspicion fields on [`ShardHealth`] (`phi`,
/// `suspected`, `probation` — omitted when absent/false, so a healthy
/// v6 row is byte-identical to a v5 row), a `suspected_shards`
/// aggregate on [`ClusterHealthReport`], and the suspicion counters in
/// stats reports. All additive, so v2–v5 request lines still parse.
/// Servers accept [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`] and stamp
/// each response with the version its request spoke.
pub const SCHEMA_VERSION: u32 = 6;

/// Oldest request schema the server still accepts. v2 request lines are
/// a strict subset of v3 ones (every v3 envelope addition is optional on
/// requests and additive on responses), so upgrading the server never
/// strands a deployed client.
pub const MIN_SCHEMA_VERSION: u32 = 2;

/// Hard cap on an inbound request line, in bytes. A connection that
/// accumulates this much without a newline is answered with a typed
/// [`ErrorCode::BadRequest`] and closed — no legitimate request body
/// comes anywhere near it, and an unbounded line would otherwise let a
/// single peer grow server memory without limit.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// Per-request quality-of-service options (schema v3). All fields are
/// optional on the wire; a request that omits them behaves exactly like
/// a v2 request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Soft deadline in milliseconds from server receipt. The server
    /// sheds the request with [`ErrorCode::DeadlineExceeded`] when its
    /// queue-wait estimate already exceeds it, and otherwise runs the
    /// computation under a budget that aborts at the deadline.
    pub deadline_ms: Option<u64>,
    /// Admission priority: 0 is normal; higher values get admission
    /// headroom when the adaptive concurrency limit is contended.
    pub priority: u8,
    /// When the budget aborts the computation, answer with the typed
    /// [`ResponseKind::Aborted`] partial result instead of a
    /// [`ErrorCode::DeadlineExceeded`] error.
    pub accept_partial: bool,
}

impl RequestOptions {
    /// Whether every field is at its default (the v2-compatible shape).
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == RequestOptions::default()
    }
}

/// One request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Must be within [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Client-chosen correlation id, echoed in the [`Response`].
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
    /// Deadline/priority/partial-acceptance options (schema v3; encoded
    /// only when not default, so default-option request lines are
    /// byte-compatible with v2 apart from the version number).
    pub options: RequestOptions,
}

impl Request {
    /// A current-version request with default options.
    #[must_use]
    pub fn new(id: u64, kind: RequestKind) -> Self {
        Request::with_options(id, kind, RequestOptions::default())
    }

    /// A current-version request with explicit options.
    #[must_use]
    pub fn with_options(id: u64, kind: RequestKind, options: RequestOptions) -> Self {
        Request {
            schema_version: SCHEMA_VERSION,
            id,
            kind,
            options,
        }
    }
}

// The envelope is hand-encoded (not derived) so the v3 option fields can
// be *omitted* when default and *defaulted* when absent — the derive has
// no attribute support, and a derived decoder would reject every v2
// request line for missing keys.
impl Serialize for Request {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("id".to_string(), self.id.to_value()),
            ("kind".to_string(), self.kind.to_value()),
        ];
        if let Some(deadline_ms) = self.options.deadline_ms {
            fields.push(("deadline_ms".to_string(), deadline_ms.to_value()));
        }
        if self.options.priority != 0 {
            fields.push(("priority".to_string(), self.options.priority.to_value()));
        }
        if self.options.accept_partial {
            fields.push(("accept_partial".to_string(), true.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for Request {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError(format!("request is missing `{name}`")))
        };
        Ok(Request {
            schema_version: u32::from_value(required("schema_version")?)?,
            id: u64::from_value(required("id")?)?,
            kind: RequestKind::from_value(required("kind")?)?,
            options: RequestOptions {
                deadline_ms: match v.get("deadline_ms") {
                    None => None,
                    Some(d) => Option::<u64>::from_value(d)?,
                },
                priority: match v.get("priority") {
                    None => 0,
                    Some(p) => u8::from_value(p)?,
                },
                accept_partial: match v.get("accept_partial") {
                    None => false,
                    Some(a) => bool::from_value(a)?,
                },
            },
        })
    }
}

/// The service endpoints.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Run a Table-1 cell (seeded trials; deterministic tally).
    Cell(CellSpec),
    /// Exhaustively explore a scenario and model-check a formula over it.
    Check(CheckSpec),
    /// Exhaustively explore a scenario and return its summary + digest.
    Explore(ExploreSpec),
    /// Classify an empirical detector against a fault regime: which paper
    /// class its suspicion histories actually satisfy there.
    Classify(ClassifySpec),
    /// Report server metrics.
    Stats,
    /// Report durability health: generation plus recovery counters.
    Health,
    /// Report cluster health: per-shard [`HealthReport`]s plus an
    /// aggregate view. A single-process server answers with a one-shard
    /// cluster consisting of itself; a router polls every worker.
    ClusterHealth,
    /// A heartbeat probe (schema v6). Answered inline with
    /// [`ResponseKind::Pong`] — never queued, never cached, never
    /// forwarded — so its inter-arrival time measures the *wire and
    /// accept path*, which is exactly what the φ-accrual detector plane
    /// wants to learn. The response's `generation` doubles as the
    /// restart signal readmission listens for.
    Ping,
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

impl RequestKind {
    /// The metrics endpoint this request counts against.
    #[must_use]
    pub fn endpoint(&self) -> Endpoint {
        match self {
            RequestKind::Cell(_) => Endpoint::Cell,
            RequestKind::Check(_) => Endpoint::Check,
            RequestKind::Explore(_) => Endpoint::Explore,
            RequestKind::Classify(_) => Endpoint::Classify,
            RequestKind::Stats => Endpoint::Stats,
            RequestKind::Health => Endpoint::Health,
            RequestKind::ClusterHealth => Endpoint::ClusterHealth,
            RequestKind::Ping => Endpoint::Ping,
            RequestKind::Shutdown => Endpoint::Shutdown,
        }
    }

    /// Whether the outcome is a pure function of the body (and therefore
    /// cacheable). `Stats`, `Health` and `Shutdown` are not.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            RequestKind::Cell(_)
                | RequestKind::Check(_)
                | RequestKind::Explore(_)
                | RequestKind::Classify(_)
        )
    }
}

/// An epistemic check: explore `scenario`, then ask whether `formula` is
/// valid (true at every point) in the generated system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckSpec {
    /// The system to generate.
    pub scenario: ExploreSpec,
    /// The formula to check over it (message alphabet is the wire
    /// protocols' [`WireMsg`]).
    pub formula: Formula<WireMsg>,
}

/// Result of a [`CheckSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// Whether the formula held at every point of the generated system.
    pub valid: bool,
    /// On failure, the earliest falsifying point (run index, time).
    pub counterexample: Option<Point>,
    /// Number of runs explored.
    pub runs: usize,
    /// Whether the enumeration finished under the spec's run cap. When
    /// `false`, `valid: true` is only a verdict about the explored
    /// prefix of the system.
    pub complete: bool,
    /// [`system_digest`](ktudc_sim::system_digest) of the explored
    /// system, for certifying against a local exploration.
    pub digest: u64,
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The schema version the request spoke (so v2 clients keep parsing
    /// responses from a v3 server).
    pub schema_version: u32,
    /// The request's `id` (0 when the request line didn't parse far
    /// enough to recover one).
    pub id: u64,
    /// Whether the result was answered from the scenario cache.
    pub cached: bool,
    /// Service latency in microseconds as observed by the server
    /// (submission to completion, queue wait included).
    pub micros: u64,
    /// Milliseconds the request sat in the bounded queue before a worker
    /// picked it up (0 for inline answers: cache hits, stats, errors).
    pub queue_wait_ms: f64,
    /// Milliseconds the computation itself ran (0 for inline answers).
    pub compute_ms: f64,
    /// The answering server's generation — a counter that strictly
    /// increases across daemon restarts (persisted via the snapshot
    /// store when the daemon is durable, constant 0 otherwise). A client
    /// seeing this change mid-conversation knows the process it was
    /// talking to is gone, along with all its in-flight single-flight
    /// state. Stamped centrally at the write boundary.
    pub generation: u64,
    /// Which cluster shard answered (schema v5). `None` — and omitted
    /// from the encoding — for a direct single-process answer; a router
    /// stamps the index of the worker it routed to. `generation` then
    /// counts restarts of *that shard*, so per-shard restart tracking
    /// needs both fields together.
    pub shard: Option<usize>,
    /// The payload.
    pub result: ResponseKind,
}

impl Response {
    /// A current-version response (generation 0 until the server stamps
    /// it at the write boundary; queue/compute timings 0 until the
    /// worker path stamps them).
    #[must_use]
    pub fn new(id: u64, cached: bool, micros: u64, result: ResponseKind) -> Self {
        Response {
            schema_version: SCHEMA_VERSION,
            id,
            cached,
            micros,
            queue_wait_ms: 0.0,
            compute_ms: 0.0,
            generation: 0,
            shard: None,
            result,
        }
    }

    /// A current-version error response.
    #[must_use]
    pub fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Response::error_with_retry(id, code, message, 0)
    }

    /// A current-version error response carrying a retry-after hint.
    #[must_use]
    pub fn error_with_retry(
        id: u64,
        code: ErrorCode,
        message: impl Into<String>,
        retry_after_ms: u64,
    ) -> Self {
        Response::new(
            id,
            false,
            0,
            ResponseKind::Error(WireError {
                code,
                message: message.into(),
                retry_after_ms,
            }),
        )
    }
}

// Hand-encoded like `Request`: the v5 `shard` field is *omitted* when
// `None` and *defaulted* when absent, so a v4 response line is a valid
// v5 response line and v4 parsers never see the key at all.
impl Serialize for Response {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema_version".to_string(), self.schema_version.to_value()),
            ("id".to_string(), self.id.to_value()),
            ("cached".to_string(), self.cached.to_value()),
            ("micros".to_string(), self.micros.to_value()),
            ("queue_wait_ms".to_string(), self.queue_wait_ms.to_value()),
            ("compute_ms".to_string(), self.compute_ms.to_value()),
            ("generation".to_string(), self.generation.to_value()),
        ];
        if let Some(shard) = self.shard {
            fields.push(("shard".to_string(), shard.to_value()));
        }
        fields.push(("result".to_string(), self.result.to_value()));
        serde::Value::Object(fields)
    }
}

impl Deserialize for Response {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError(format!("response is missing `{name}`")))
        };
        Ok(Response {
            schema_version: u32::from_value(required("schema_version")?)?,
            id: u64::from_value(required("id")?)?,
            cached: bool::from_value(required("cached")?)?,
            micros: u64::from_value(required("micros")?)?,
            queue_wait_ms: f64::from_value(required("queue_wait_ms")?)?,
            compute_ms: f64::from_value(required("compute_ms")?)?,
            generation: u64::from_value(required("generation")?)?,
            shard: match v.get("shard") {
                None => None,
                Some(s) => Option::<usize>::from_value(s)?,
            },
            result: ResponseKind::from_value(required("result")?)?,
        })
    }
}

/// Response payloads, one per endpoint plus the error arm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ResponseKind {
    /// Tally of a [`RequestKind::Cell`].
    Cell(CellOutcome),
    /// Verdict of a [`RequestKind::Check`].
    Check(CheckOutcome),
    /// Summary of a [`RequestKind::Explore`].
    Explore(ExploreOutcome),
    /// Verdict of a [`RequestKind::Classify`].
    Classify(RegimeVerdict),
    /// Metrics snapshot.
    Stats(StatsReport),
    /// Durability health snapshot.
    Health(HealthReport),
    /// Cluster health snapshot (per-shard rows plus aggregate).
    ClusterHealth(ClusterHealthReport),
    /// Heartbeat acknowledgement for a [`RequestKind::Ping`] (schema
    /// v6). Deliberately empty: everything a probe wants (arrival time,
    /// `generation`) is in the envelope.
    Pong,
    /// Shutdown acknowledged; the server drains and exits.
    Shutdown,
    /// The computation's budget tripped and the requester opted into
    /// partial results ([`RequestOptions::accept_partial`]).
    Aborted(AbortedOutcome),
    /// The request was not served.
    Error(WireError),
}

/// What a budget-aborted computation still managed to produce.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AbortedOutcome {
    /// Why the budget tripped (deadline, cancellation, step or memory
    /// cap).
    pub reason: AbortReason,
    /// The partial result, if the computation got far enough to have
    /// one.
    pub partial: PartialOutcome,
}

/// The partial payload of an [`AbortedOutcome`], by endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PartialOutcome {
    /// The explored prefix of the run space (`complete` is `false`).
    Explore(ExploreOutcome),
    /// The tally over the trials that completed before the trip.
    Cell(PartialCell),
    /// Nothing usable survived the abort.
    None,
}

/// A cell tally cut short by its budget.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartialCell {
    /// Tally over the completed trials only.
    pub outcome: CellOutcome,
    /// How many of the spec's trials completed before the trip.
    pub trials_completed: u64,
}

/// The `Health` response body: the server's restart generation plus what
/// its boot-time recovery found on disk. A non-durable server (no data
/// directory) reports generation 0 and zeroed recovery counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The server's generation (strictly increasing across restarts of a
    /// durable server; 0 when running without a data directory).
    pub generation: u64,
    /// Whether the server has a data directory (snapshots + recovery).
    pub durable: bool,
    /// Cache outcomes warm-loaded from the newest valid snapshot at boot.
    pub recovered_cache_entries: usize,
    /// Snapshot files that failed validation (bad magic, generation or
    /// checksum) and were skipped — never loaded — during recovery.
    pub corrupt_snapshots_skipped: u64,
    /// The snapshot store's *live* corrupt-candidate counter: every
    /// corrupt candidate it has skipped over its lifetime, boot-time
    /// recovery included. Diverges from `corrupt_snapshots_skipped` if
    /// corruption appears after boot.
    pub store_corrupt_candidates: u64,
    /// Cache snapshots written since boot (including the boot snapshot
    /// that claims the generation).
    pub snapshots_written: u64,
    /// Outcomes currently in the scenario cache.
    pub cache_entries: usize,
    /// Requests queued (accepted, not yet started) at snapshot time.
    pub queue_depth: usize,
    /// Requests a worker is actively computing at snapshot time.
    pub in_flight: usize,
    /// Workers the watchdog currently considers stuck: their job's
    /// budget heartbeat has not advanced for the configured number of
    /// watchdog ticks.
    pub stuck_workers: u64,
    /// Jobs stolen across worker deques since the pool started (0 on a
    /// single worker).
    pub steals: u64,
    /// Depth of the deepest per-worker deque at snapshot time.
    pub deepest_queue: usize,
    /// Microseconds since the server started.
    pub uptime_micros: u64,
}

/// One shard's row in a [`ClusterHealthReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardHealth {
    /// The shard's index on the hash ring.
    pub shard: usize,
    /// The shard's current address (`host:port`). After a worker restart
    /// under a fleet supervisor this may differ from the boot-time
    /// address (respawned workers bind ephemeral ports).
    pub addr: String,
    /// Whether the shard answered the health probe. A `false` row keeps
    /// the last known `generation` and has no `report`.
    pub reachable: bool,
    /// The shard's generation (strictly increasing across restarts of a
    /// durable worker; last observed value when unreachable).
    pub generation: u64,
    /// The shard's own [`HealthReport`] when it answered.
    pub report: Option<HealthReport>,
    /// The detector plane's current φ (suspicion level) for this shard
    /// (schema v6). `None` — and omitted from the encoding — when no
    /// detector plane is monitoring the shard.
    pub phi: Option<f64>,
    /// Whether the detector plane currently suspects this shard (schema
    /// v6; omitted when `false`). A suspected shard is skipped at
    /// routing time and served by its ring replicas.
    pub suspected: bool,
    /// Whether the shard is readmitted but still inside its probation
    /// window after a suspicion cleared (schema v6; omitted when
    /// `false`). A probationary shard takes traffic again but one missed
    /// heartbeat re-suspects it immediately.
    pub probation: bool,
}

impl ShardHealth {
    /// A row with no detector-plane annotations (the v5 shape).
    #[must_use]
    pub fn new(
        shard: usize,
        addr: String,
        reachable: bool,
        generation: u64,
        report: Option<HealthReport>,
    ) -> Self {
        ShardHealth {
            shard,
            addr,
            reachable,
            generation,
            report,
            phi: None,
            suspected: false,
            probation: false,
        }
    }
}

// Hand-encoded like `Response`: the v6 suspicion fields are *omitted*
// when absent/false and *defaulted* when missing, so a v5 row is a valid
// v6 row and a healthy v6 row is byte-identical to its v5 encoding.
impl Serialize for ShardHealth {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("shard".to_string(), self.shard.to_value()),
            ("addr".to_string(), self.addr.to_value()),
            ("reachable".to_string(), self.reachable.to_value()),
            ("generation".to_string(), self.generation.to_value()),
            ("report".to_string(), self.report.to_value()),
        ];
        if let Some(phi) = self.phi {
            fields.push(("phi".to_string(), phi.to_value()));
        }
        if self.suspected {
            fields.push(("suspected".to_string(), true.to_value()));
        }
        if self.probation {
            fields.push(("probation".to_string(), true.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ShardHealth {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError(format!("shard health is missing `{name}`")))
        };
        Ok(ShardHealth {
            shard: usize::from_value(required("shard")?)?,
            addr: String::from_value(required("addr")?)?,
            reachable: bool::from_value(required("reachable")?)?,
            generation: u64::from_value(required("generation")?)?,
            report: Option::<HealthReport>::from_value(required("report")?)?,
            phi: match v.get("phi") {
                None => None,
                Some(p) => Option::<f64>::from_value(p)?,
            },
            suspected: match v.get("suspected") {
                None => false,
                Some(s) => bool::from_value(s)?,
            },
            probation: match v.get("probation") {
                None => false,
                Some(p) => bool::from_value(p)?,
            },
        })
    }
}

/// The `ClusterHealth` response body: per-shard health rows plus the
/// aggregates a dashboard wants first. A single-process server answers
/// with a one-shard cluster consisting of itself.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterHealthReport {
    /// Per-shard rows, indexed by ring position.
    pub shards: Vec<ShardHealth>,
    /// How many shards answered the probe.
    pub reachable_shards: usize,
    /// Scenario-cache entries summed over reachable shards.
    pub total_cache_entries: usize,
    /// Queued requests summed over reachable shards.
    pub total_queue_depth: usize,
    /// In-flight computations summed over reachable shards.
    pub total_in_flight: usize,
    /// Stuck workers summed over reachable shards.
    pub total_stuck_workers: u64,
    /// The highest generation seen across shards (a fleet-wide restart
    /// counter floor).
    pub max_generation: u64,
    /// Shards the detector plane currently suspects (schema v6; omitted
    /// from the encoding when 0, so a v5 report is a valid v6 report).
    pub suspected_shards: usize,
}

impl ClusterHealthReport {
    /// Aggregate per-shard rows into the cluster view. The totals sum
    /// only over reachable shards; unreachable rows still contribute
    /// their last known generation to `max_generation`.
    #[must_use]
    pub fn aggregate(shards: Vec<ShardHealth>) -> Self {
        let mut report = ClusterHealthReport {
            shards: Vec::new(),
            reachable_shards: 0,
            total_cache_entries: 0,
            total_queue_depth: 0,
            total_in_flight: 0,
            total_stuck_workers: 0,
            max_generation: 0,
            suspected_shards: 0,
        };
        for row in &shards {
            report.max_generation = report.max_generation.max(row.generation);
            if row.suspected {
                report.suspected_shards += 1;
            }
            if !row.reachable {
                continue;
            }
            report.reachable_shards += 1;
            if let Some(health) = &row.report {
                report.total_cache_entries += health.cache_entries;
                report.total_queue_depth += health.queue_depth;
                report.total_in_flight += health.in_flight;
                report.total_stuck_workers += health.stuck_workers;
            }
        }
        report.shards = shards;
        report
    }
}

// Hand-encoded for the same reason as `ShardHealth`: `suspected_shards`
// is omitted when 0 and defaulted when missing.
impl Serialize for ClusterHealthReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("shards".to_string(), self.shards.to_value()),
            (
                "reachable_shards".to_string(),
                self.reachable_shards.to_value(),
            ),
            (
                "total_cache_entries".to_string(),
                self.total_cache_entries.to_value(),
            ),
            (
                "total_queue_depth".to_string(),
                self.total_queue_depth.to_value(),
            ),
            (
                "total_in_flight".to_string(),
                self.total_in_flight.to_value(),
            ),
            (
                "total_stuck_workers".to_string(),
                self.total_stuck_workers.to_value(),
            ),
            ("max_generation".to_string(), self.max_generation.to_value()),
        ];
        if self.suspected_shards != 0 {
            fields.push((
                "suspected_shards".to_string(),
                self.suspected_shards.to_value(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ClusterHealthReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError(format!("cluster health is missing `{name}`")))
        };
        Ok(ClusterHealthReport {
            shards: Vec::<ShardHealth>::from_value(required("shards")?)?,
            reachable_shards: usize::from_value(required("reachable_shards")?)?,
            total_cache_entries: usize::from_value(required("total_cache_entries")?)?,
            total_queue_depth: usize::from_value(required("total_queue_depth")?)?,
            total_in_flight: usize::from_value(required("total_in_flight")?)?,
            total_stuck_workers: u64::from_value(required("total_stuck_workers")?)?,
            max_generation: u64::from_value(required("max_generation")?)?,
            suspected_shards: match v.get("suspected_shards") {
                None => 0,
                Some(s) => usize::from_value(s)?,
            },
        })
    }
}

/// A typed failure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// For shed requests ([`ErrorCode::Overloaded`],
    /// [`ErrorCode::DeadlineExceeded`]): the server's estimate, in
    /// milliseconds, of when a retry is worth attempting. 0 means no
    /// hint.
    pub retry_after_ms: u64,
}

/// Machine-readable failure classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The bounded request queue (or the adaptive concurrency limit) is
    /// full; retry later. This is the backpressure signal — the server
    /// sheds load instead of buffering.
    Overloaded,
    /// The request's deadline would expire before a worker could serve
    /// it (admission-time estimate), or its budget tripped mid-compute
    /// and the requester did not opt into partial results. Distinct from
    /// [`ErrorCode::Overloaded`]: the server had capacity, the *request*
    /// ran out of time.
    DeadlineExceeded,
    /// The request line didn't parse, or its body failed validation.
    BadRequest,
    /// `schema_version` is outside the server's accepted range.
    UnsupportedVersion,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The computation itself failed (e.g. an inconsistent spec the
    /// harness refuses at runtime).
    Internal,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_core::harness::{FdChoice, ProtocolChoice};

    #[test]
    fn envelope_encoding_is_pinned() {
        // The envelope shape is the serve wire schema (schema_version 6:
        // v3's optional deadline/priority/accept_partial on requests,
        // queue and compute timings on responses, retry_after_ms on
        // errors, the v4 Classify endpoint, the v5 ClusterHealth
        // endpoint + optional response `shard` stamp, and the v6 Ping
        // probe + suspicion annotations); repin deliberately with a
        // version bump, never silently.
        let req = Request::new(7, RequestKind::Stats);
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":7,"kind":"Stats"}"#
        );
        let req = Request::new(8, RequestKind::Health);
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":8,"kind":"Health"}"#
        );

        let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(2)
            .horizon(100);
        let req = Request::new(1, RequestKind::Cell(spec.clone()));
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":1,"kind":{"Cell":{"n":3,"t":1,"drop_prob":null,"fd":"None","protocol":"Reliable","horizon":100,"trials":2}}}"#
        );

        // Non-default options are appended after the v2-compatible core.
        let req = Request::with_options(
            2,
            RequestKind::Cell(spec),
            RequestOptions {
                deadline_ms: Some(250),
                priority: 1,
                accept_partial: true,
            },
        );
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":2,"kind":{"Cell":{"n":3,"t":1,"drop_prob":null,"fd":"None","protocol":"Reliable","horizon":100,"trials":2}},"deadline_ms":250,"priority":1,"accept_partial":true}"#
        );

        // The v4 Classify endpoint (body encoding pinned in ktudc-fd).
        let req = Request::new(
            3,
            RequestKind::Classify(ClassifySpec::new(
                ktudc_fd::DetectorKind::Heartbeat,
                ktudc_fd::FaultRegime::Clean,
            )),
        );
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":3,"kind":{"Classify":{"detector":"Heartbeat","regime":"Clean","n":4,"trials":6,"horizon":240,"seed":0}}}"#
        );

        let resp = Response::error(9, ErrorCode::Overloaded, "queue full");
        assert_eq!(
            serde_json::to_string(&resp).unwrap(),
            r#"{"schema_version":6,"id":9,"cached":false,"micros":0,"queue_wait_ms":0.0,"compute_ms":0.0,"generation":0,"result":{"Error":{"code":"Overloaded","message":"queue full","retry_after_ms":0}}}"#
        );
    }

    #[test]
    fn ping_encoding_is_pinned() {
        // The v6 heartbeat probe: both directions deliberately minimal —
        // a Ping line is the cheapest thing the detector plane can put on
        // the wire, and the Pong carries nothing because the envelope
        // already has the arrival time implicitly and `generation`
        // explicitly.
        let req = Request::new(12, RequestKind::Ping);
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":12,"kind":"Ping"}"#
        );
        let resp = Response::new(12, false, 0, ResponseKind::Pong);
        assert_eq!(
            serde_json::to_string(&resp).unwrap(),
            r#"{"schema_version":6,"id":12,"cached":false,"micros":0,"queue_wait_ms":0.0,"compute_ms":0.0,"generation":0,"result":"Pong"}"#
        );
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
    }

    #[test]
    fn cluster_health_encoding_is_pinned() {
        // The v5 endpoint itself.
        let req = Request::new(11, RequestKind::ClusterHealth);
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":6,"id":11,"kind":"ClusterHealth"}"#
        );

        // A one-shard cluster (what a direct single-process server
        // answers): the unreachable-row and reachable-row shapes are both
        // part of the schema.
        let report = ClusterHealthReport::aggregate(vec![
            ShardHealth::new(0, "127.0.0.1:7001".to_string(), true, 3, None),
            ShardHealth::new(1, "127.0.0.1:7002".to_string(), false, 2, None),
        ]);
        // No detector plane annotations: a v6 report with healthy rows is
        // byte-identical to its v5 encoding (no phi/suspected/probation
        // keys, no suspected_shards aggregate).
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            r#"{"shards":[{"shard":0,"addr":"127.0.0.1:7001","reachable":true,"generation":3,"report":null},{"shard":1,"addr":"127.0.0.1:7002","reachable":false,"generation":2,"report":null}],"reachable_shards":1,"total_cache_entries":0,"total_queue_depth":0,"total_in_flight":0,"total_stuck_workers":0,"max_generation":3}"#
        );
        let resp = Response::new(11, false, 0, ResponseKind::ClusterHealth(report));
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
    }

    #[test]
    fn suspicion_annotations_are_pinned_and_v5_compatible() {
        // A detector-plane-annotated row: phi appears after report,
        // suspected/probation only when true.
        let mut suspect = ShardHealth::new(1, "127.0.0.1:7002".to_string(), true, 2, None);
        suspect.phi = Some(8.5);
        suspect.suspected = true;
        let mut healthy = ShardHealth::new(0, "127.0.0.1:7001".to_string(), true, 3, None);
        healthy.phi = Some(0.25);
        let report = ClusterHealthReport::aggregate(vec![healthy, suspect]);
        assert_eq!(report.suspected_shards, 1);
        assert_eq!(
            serde_json::to_string(&report).unwrap(),
            r#"{"shards":[{"shard":0,"addr":"127.0.0.1:7001","reachable":true,"generation":3,"report":null,"phi":0.25},{"shard":1,"addr":"127.0.0.1:7002","reachable":true,"generation":2,"report":null,"phi":8.5,"suspected":true}],"reachable_shards":2,"total_cache_entries":0,"total_queue_depth":0,"total_in_flight":0,"total_stuck_workers":0,"max_generation":3,"suspected_shards":1}"#
        );
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(
            serde_json::from_str::<ClusterHealthReport>(&json).unwrap(),
            report
        );

        // A probationary row round-trips too.
        let mut probation = ShardHealth::new(2, "127.0.0.1:7003".to_string(), true, 4, None);
        probation.phi = Some(0.1);
        probation.probation = true;
        let json = serde_json::to_string(&probation).unwrap();
        assert!(json.contains(r#""probation":true"#));
        assert_eq!(
            serde_json::from_str::<ShardHealth>(&json).unwrap(),
            probation
        );

        // A v5 row (no suspicion keys) still parses, defaulting them.
        let legacy =
            r#"{"shard":0,"addr":"127.0.0.1:7001","reachable":true,"generation":3,"report":null}"#;
        let parsed: ShardHealth = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.phi, None);
        assert!(!parsed.suspected);
        assert!(!parsed.probation);
        let legacy_report = r#"{"shards":[],"reachable_shards":0,"total_cache_entries":0,"total_queue_depth":0,"total_in_flight":0,"total_stuck_workers":0,"max_generation":0}"#;
        let parsed: ClusterHealthReport = serde_json::from_str(legacy_report).unwrap();
        assert_eq!(parsed.suspected_shards, 0);
    }

    #[test]
    fn response_shard_stamp_is_pinned_and_v4_compatible() {
        // Unstamped responses omit the key entirely — byte-identical to a
        // v4 response line apart from the version number.
        let mut resp = Response::error(9, ErrorCode::Overloaded, "queue full");
        assert!(!serde_json::to_string(&resp).unwrap().contains("shard"));

        // A router stamp appears between `generation` and `result`.
        resp.shard = Some(2);
        assert_eq!(
            serde_json::to_string(&resp).unwrap(),
            r#"{"schema_version":6,"id":9,"cached":false,"micros":0,"queue_wait_ms":0.0,"compute_ms":0.0,"generation":0,"shard":2,"result":{"Error":{"code":"Overloaded","message":"queue full","retry_after_ms":0}}}"#
        );
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);

        // A v4 response line (no `shard` key) still parses, defaulting
        // the stamp to None.
        let legacy = r#"{"schema_version":4,"id":9,"cached":false,"micros":0,"queue_wait_ms":0.0,"compute_ms":0.0,"generation":0,"result":{"Error":{"code":"Overloaded","message":"queue full","retry_after_ms":0}}}"#;
        let parsed: Response = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed.shard, None);
        assert_eq!(parsed.schema_version, 4);
        assert_eq!(parsed.id, 9);
    }

    #[test]
    fn legacy_v2_request_lines_still_parse() {
        // A v2 client omits every option field; the v3 decoder must
        // default them rather than reject the line.
        let legacy = r#"{"schema_version":2,"id":7,"kind":"Stats"}"#;
        let req: Request = serde_json::from_str(legacy).unwrap();
        assert_eq!(req.schema_version, 2);
        assert_eq!(req.id, 7);
        assert_eq!(req.kind, RequestKind::Stats);
        assert!(req.options.is_default());
        assert!((MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&req.schema_version));

        // An explicit-null deadline also decodes (Option round-trip).
        let with_null = r#"{"schema_version":3,"id":8,"kind":"Health","deadline_ms":null}"#;
        let req: Request = serde_json::from_str(with_null).unwrap();
        assert_eq!(req.options.deadline_ms, None);
    }

    #[test]
    fn request_options_round_trip() {
        let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable);
        for options in [
            RequestOptions::default(),
            RequestOptions {
                deadline_ms: Some(1),
                priority: 0,
                accept_partial: false,
            },
            RequestOptions {
                deadline_ms: Some(10_000),
                priority: 9,
                accept_partial: true,
            },
        ] {
            let req = Request::with_options(5, RequestKind::Cell(spec.clone()), options);
            let json = serde_json::to_string(&req).unwrap();
            assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
        }
    }

    #[test]
    fn aborted_outcomes_round_trip_with_pinned_reasons() {
        use ktudc_model::AbortReason;

        // The abort-reason vocabulary is part of the wire schema.
        assert_eq!(
            serde_json::to_string(&AbortReason::Deadline).unwrap(),
            r#""Deadline""#
        );
        let aborted = Response::new(
            4,
            false,
            120,
            ResponseKind::Aborted(AbortedOutcome {
                reason: AbortReason::Deadline,
                partial: PartialOutcome::Cell(PartialCell {
                    outcome: CellOutcome {
                        satisfied: 3,
                        violated_permanent: 0,
                        unsatisfied_pending: 0,
                        mean_messages: 9.5,
                    },
                    trials_completed: 3,
                }),
            }),
        );
        let json = serde_json::to_string(&aborted).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), aborted);

        let empty = ResponseKind::Aborted(AbortedOutcome {
            reason: AbortReason::StepLimit,
            partial: PartialOutcome::None,
        });
        let json = serde_json::to_string(&empty).unwrap();
        assert_eq!(serde_json::from_str::<ResponseKind>(&json).unwrap(), empty);
    }

    #[test]
    fn envelope_round_trips() {
        let check = Request::new(
            3,
            RequestKind::Check(CheckSpec {
                scenario: ExploreSpec::new(2, 2),
                formula: Formula::crashed(ktudc_model::ProcessId::new(1)),
            }),
        );
        let json = serde_json::to_string(&check).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), check);

        let resp = Response::new(
            3,
            true,
            42,
            ResponseKind::Check(CheckOutcome {
                valid: false,
                counterexample: Some(Point::new(4, 2)),
                runs: 17,
                complete: true,
                digest: 0xDEAD_BEEF,
            }),
        );
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);

        let health = Response::new(
            4,
            false,
            11,
            ResponseKind::Health(HealthReport {
                generation: 3,
                durable: true,
                recovered_cache_entries: 17,
                corrupt_snapshots_skipped: 0,
                store_corrupt_candidates: 1,
                snapshots_written: 2,
                cache_entries: 19,
                queue_depth: 5,
                in_flight: 2,
                stuck_workers: 0,
                steals: 6,
                deepest_queue: 4,
                uptime_micros: 1_000,
            }),
        );
        let json = serde_json::to_string(&health).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), health);
    }

    #[test]
    fn endpoints_and_cacheability() {
        assert_eq!(RequestKind::Stats.endpoint(), Endpoint::Stats);
        assert_eq!(RequestKind::Health.endpoint(), Endpoint::Health);
        assert_eq!(
            RequestKind::ClusterHealth.endpoint(),
            Endpoint::ClusterHealth
        );
        assert_eq!(
            RequestKind::Explore(ExploreSpec::new(2, 2)).endpoint(),
            Endpoint::Explore
        );
        assert_eq!(RequestKind::Ping.endpoint(), Endpoint::Ping);
        assert!(RequestKind::Explore(ExploreSpec::new(2, 2)).cacheable());
        assert!(!RequestKind::Stats.cacheable());
        assert!(!RequestKind::Health.cacheable());
        assert!(!RequestKind::ClusterHealth.cacheable());
        assert!(!RequestKind::Ping.cacheable());
        assert!(!RequestKind::Shutdown.cacheable());
    }
}
