//! The request/response envelope of the service protocol.
//!
//! Transport framing is one JSON object per `\n`-terminated line. The
//! *bodies* — [`CellSpec`]/[`CellOutcome`], [`ExploreSpec`]/
//! [`ExploreOutcome`], [`Formula`] — are the wire types the library
//! crates already pin in their own unit tests; this module adds the
//! envelope around them: a schema version, a client-chosen request `id`
//! (echoed back so pipelined responses can be matched out of order), and
//! a typed error vocabulary.
//!
//! Compatibility contract: [`SCHEMA_VERSION`] names the encoding of
//! *everything* on the wire. Any change to the envelope or to a pinned
//! body encoding must bump it; the server refuses mismatched versions
//! with [`ErrorCode::UnsupportedVersion`] rather than guessing.

use crate::metrics::{Endpoint, StatsReport};
use ktudc_core::harness::{CellOutcome, CellSpec};
use ktudc_epistemic::Formula;
use ktudc_model::Point;
use ktudc_sim::wire::WireMsg;
use ktudc_sim::{ExploreOutcome, ExploreSpec};
use serde::{Deserialize, Serialize};

/// Version of the wire encoding (envelope + all body types).
///
/// History: 1 — original envelope; 2 — responses carry the server
/// `generation` (restart counter) and the `Health` endpoint exists.
pub const SCHEMA_VERSION: u32 = 2;

/// One request line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Must equal [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Client-chosen correlation id, echoed in the [`Response`].
    pub id: u64,
    /// What to do.
    pub kind: RequestKind,
}

impl Request {
    /// A current-version request.
    #[must_use]
    pub fn new(id: u64, kind: RequestKind) -> Self {
        Request {
            schema_version: SCHEMA_VERSION,
            id,
            kind,
        }
    }
}

/// The service endpoints.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Run a Table-1 cell (seeded trials; deterministic tally).
    Cell(CellSpec),
    /// Exhaustively explore a scenario and model-check a formula over it.
    Check(CheckSpec),
    /// Exhaustively explore a scenario and return its summary + digest.
    Explore(ExploreSpec),
    /// Report server metrics.
    Stats,
    /// Report durability health: generation plus recovery counters.
    Health,
    /// Stop accepting work, drain, and exit.
    Shutdown,
}

impl RequestKind {
    /// The metrics endpoint this request counts against.
    #[must_use]
    pub fn endpoint(&self) -> Endpoint {
        match self {
            RequestKind::Cell(_) => Endpoint::Cell,
            RequestKind::Check(_) => Endpoint::Check,
            RequestKind::Explore(_) => Endpoint::Explore,
            RequestKind::Stats => Endpoint::Stats,
            RequestKind::Health => Endpoint::Health,
            RequestKind::Shutdown => Endpoint::Shutdown,
        }
    }

    /// Whether the outcome is a pure function of the body (and therefore
    /// cacheable). `Stats`, `Health` and `Shutdown` are not.
    #[must_use]
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            RequestKind::Cell(_) | RequestKind::Check(_) | RequestKind::Explore(_)
        )
    }
}

/// An epistemic check: explore `scenario`, then ask whether `formula` is
/// valid (true at every point) in the generated system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckSpec {
    /// The system to generate.
    pub scenario: ExploreSpec,
    /// The formula to check over it (message alphabet is the wire
    /// protocols' [`WireMsg`]).
    pub formula: Formula<WireMsg>,
}

/// Result of a [`CheckSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckOutcome {
    /// Whether the formula held at every point of the generated system.
    pub valid: bool,
    /// On failure, the earliest falsifying point (run index, time).
    pub counterexample: Option<Point>,
    /// Number of runs explored.
    pub runs: usize,
    /// Whether the enumeration finished under the spec's run cap. When
    /// `false`, `valid: true` is only a verdict about the explored
    /// prefix of the system.
    pub complete: bool,
    /// [`system_digest`](ktudc_sim::system_digest) of the explored
    /// system, for certifying against a local exploration.
    pub digest: u64,
}

/// One response line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Always [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The request's `id` (0 when the request line didn't parse far
    /// enough to recover one).
    pub id: u64,
    /// Whether the result was answered from the scenario cache.
    pub cached: bool,
    /// Service latency in microseconds as observed by the server
    /// (submission to completion, queue wait included).
    pub micros: u64,
    /// The answering server's generation — a counter that strictly
    /// increases across daemon restarts (persisted via the snapshot
    /// store when the daemon is durable, constant 0 otherwise). A client
    /// seeing this change mid-conversation knows the process it was
    /// talking to is gone, along with all its in-flight single-flight
    /// state. Stamped centrally at the write boundary.
    pub generation: u64,
    /// The payload.
    pub result: ResponseKind,
}

impl Response {
    /// A current-version response (generation 0 until the server stamps
    /// it at the write boundary).
    #[must_use]
    pub fn new(id: u64, cached: bool, micros: u64, result: ResponseKind) -> Self {
        Response {
            schema_version: SCHEMA_VERSION,
            id,
            cached,
            micros,
            generation: 0,
            result,
        }
    }

    /// A current-version error response.
    #[must_use]
    pub fn error(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Response::new(
            id,
            false,
            0,
            ResponseKind::Error(WireError {
                code,
                message: message.into(),
            }),
        )
    }
}

/// Response payloads, one per endpoint plus the error arm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ResponseKind {
    /// Tally of a [`RequestKind::Cell`].
    Cell(CellOutcome),
    /// Verdict of a [`RequestKind::Check`].
    Check(CheckOutcome),
    /// Summary of a [`RequestKind::Explore`].
    Explore(ExploreOutcome),
    /// Metrics snapshot.
    Stats(StatsReport),
    /// Durability health snapshot.
    Health(HealthReport),
    /// Shutdown acknowledged; the server drains and exits.
    Shutdown,
    /// The request was not served.
    Error(WireError),
}

/// The `Health` response body: the server's restart generation plus what
/// its boot-time recovery found on disk. A non-durable server (no data
/// directory) reports generation 0 and zeroed recovery counters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// The server's generation (strictly increasing across restarts of a
    /// durable server; 0 when running without a data directory).
    pub generation: u64,
    /// Whether the server has a data directory (snapshots + recovery).
    pub durable: bool,
    /// Cache outcomes warm-loaded from the newest valid snapshot at boot.
    pub recovered_cache_entries: usize,
    /// Snapshot files that failed validation (bad magic, generation or
    /// checksum) and were skipped — never loaded — during recovery.
    pub corrupt_snapshots_skipped: u64,
    /// Cache snapshots written since boot (including the boot snapshot
    /// that claims the generation).
    pub snapshots_written: u64,
    /// Outcomes currently in the scenario cache.
    pub cache_entries: usize,
    /// Microseconds since the server started.
    pub uptime_micros: u64,
}

/// A typed failure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Machine-readable failure classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The bounded request queue is full; retry later. This is the
    /// backpressure signal — the server sheds load instead of buffering.
    Overloaded,
    /// The request line didn't parse, or its body failed validation.
    BadRequest,
    /// `schema_version` differs from the server's [`SCHEMA_VERSION`].
    UnsupportedVersion,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The computation itself failed (e.g. an inconsistent spec the
    /// harness refuses at runtime).
    Internal,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ktudc_core::harness::{FdChoice, ProtocolChoice};

    #[test]
    fn envelope_encoding_is_pinned() {
        // The envelope shape is the serve wire schema (schema_version 2:
        // responses gained `generation`, requests gained `Health`); repin
        // deliberately with a version bump, never silently.
        let req = Request::new(7, RequestKind::Stats);
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":2,"id":7,"kind":"Stats"}"#
        );
        let req = Request::new(8, RequestKind::Health);
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":2,"id":8,"kind":"Health"}"#
        );

        let spec = CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
            .trials(2)
            .horizon(100);
        let req = Request::new(1, RequestKind::Cell(spec));
        assert_eq!(
            serde_json::to_string(&req).unwrap(),
            r#"{"schema_version":2,"id":1,"kind":{"Cell":{"n":3,"t":1,"drop_prob":null,"fd":"None","protocol":"Reliable","horizon":100,"trials":2}}}"#
        );

        let resp = Response::error(9, ErrorCode::Overloaded, "queue full");
        assert_eq!(
            serde_json::to_string(&resp).unwrap(),
            r#"{"schema_version":2,"id":9,"cached":false,"micros":0,"generation":0,"result":{"Error":{"code":"Overloaded","message":"queue full"}}}"#
        );
    }

    #[test]
    fn envelope_round_trips() {
        let check = Request::new(
            3,
            RequestKind::Check(CheckSpec {
                scenario: ExploreSpec::new(2, 2),
                formula: Formula::crashed(ktudc_model::ProcessId::new(1)),
            }),
        );
        let json = serde_json::to_string(&check).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), check);

        let resp = Response::new(
            3,
            true,
            42,
            ResponseKind::Check(CheckOutcome {
                valid: false,
                counterexample: Some(Point::new(4, 2)),
                runs: 17,
                complete: true,
                digest: 0xDEAD_BEEF,
            }),
        );
        let json = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);

        let health = Response::new(
            4,
            false,
            11,
            ResponseKind::Health(HealthReport {
                generation: 3,
                durable: true,
                recovered_cache_entries: 17,
                corrupt_snapshots_skipped: 0,
                snapshots_written: 2,
                cache_entries: 19,
                uptime_micros: 1_000,
            }),
        );
        let json = serde_json::to_string(&health).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), health);
    }

    #[test]
    fn endpoints_and_cacheability() {
        assert_eq!(RequestKind::Stats.endpoint(), Endpoint::Stats);
        assert_eq!(RequestKind::Health.endpoint(), Endpoint::Health);
        assert_eq!(
            RequestKind::Explore(ExploreSpec::new(2, 2)).endpoint(),
            Endpoint::Explore
        );
        assert!(RequestKind::Explore(ExploreSpec::new(2, 2)).cacheable());
        assert!(!RequestKind::Stats.cacheable());
        assert!(!RequestKind::Health.cacheable());
        assert!(!RequestKind::Shutdown.cacheable());
    }
}
