//! `ctl` — the companion client for `ktudc-serve`.
//!
//! ```text
//! ctl [--addr HOST:PORT] sweep [--smoke] [--twice] [--deadline-ms N]
//! ctl [--addr HOST:PORT] classify [--detector NAME] [--regime NAME] [--smoke]
//! ctl [--addr HOST:PORT] stats
//! ctl [--addr HOST:PORT] health
//! ctl [--addr HOST:PORT] shutdown
//! ctl --cluster HOST:P1,HOST:P2,... <sweep | classify | stats | health>
//! ctl resume <checkpoint>
//! ```
//!
//! `sweep` submits the UDC rows of Table 1 (the harness cells of the
//! `table1` bench binary) as **one pipelined batch** and prints the
//! assembled table from the responses. With `--twice` it submits the
//! identical batch again and verifies the warm pass is byte-identical
//! to the cold one (it is answered from the scenario cache). `--smoke`
//! shrinks the grid to seconds for CI. `--deadline-ms` stamps each cell
//! request with a deadline; cells the server sheds or aborts show up as
//! typed `DeadlineExceeded` rows rather than hangs.
//!
//! `classify` sweeps the empirical failure detectors (heartbeat,
//! φ-accrual, gossip) across the fault regimes as one pipelined batch
//! and prints the class each one achieves per regime — the paper's
//! hierarchy read off implementations instead of oracles. `--detector` /
//! `--regime` narrow the grid to one row/column (names as printed in the
//! table); `--smoke` shrinks trials and horizon for CI.
//!
//! `health` prints the server's durability health report (generation,
//! recovery counters). `resume` is *local*: it resumes the checkpointed
//! exploration journaled at `<checkpoint>` — the spec is read from the
//! journal header — and never touches the network.
//!
//! `--cluster` drives a worker fleet directly (no router in the path):
//! requests are consistent-hashed across the listed members by the
//! [`ClusterClient`] and failed over to a replica when a member is down
//! or shedding. Mutually exclusive with `--addr` (which — pointed at a
//! router — reaches the same cluster through one address) and valid
//! only for `sweep`, `classify`, `stats` and `health`; `shutdown` stays
//! single-server so a script cannot take a whole fleet down with a
//! one-word typo.
//!
//! Requests go through the fault-masking [`HardenedClient`], so
//! transient overload and dropped connections are retried with backoff.
//! Exit status is scriptable: `0` success, `1` transport, protocol or
//! resume failure, `2` usage, `3` retry budget exhausted (persistent
//! overload or a flapping server). Usage errors are checked before any
//! network (or disk) access.

use ktudc_core::harness::{CellSpec, FdChoice, ProtocolChoice};
use ktudc_fd::{ClassifySpec, DetectorKind, FaultRegime};
use ktudc_serve::{
    Client, ClientError, ClusterClient, HardenedClient, Membership, RequestKind, RequestOptions,
    Response, ResponseKind, RetryPolicy,
};
use std::sync::Arc;

/// The server connection a command runs against: one daemon (or a
/// router, which answers on one address) or a fleet driven directly.
enum Conn {
    Single(HardenedClient),
    Cluster(ClusterClient),
}

impl Conn {
    fn batch_with_options(
        &mut self,
        kinds: Vec<(RequestKind, RequestOptions)>,
    ) -> Result<Vec<Response>, ClientError> {
        match self {
            Conn::Single(c) => c.batch_with_options(kinds),
            Conn::Cluster(c) => c.batch_with_options(kinds),
        }
    }

    fn batch(&mut self, kinds: Vec<RequestKind>) -> Result<Vec<Response>, ClientError> {
        match self {
            Conn::Single(c) => c.batch(kinds),
            Conn::Cluster(c) => c.batch(kinds),
        }
    }
}

/// Validates a `--cluster` member list *syntactically* — split on
/// commas, each member a non-empty host, a `:`, and a `u16` port. No
/// DNS, no connections: this runs in the usage-checking phase, where a
/// typo must exit `2` even when every member is also unreachable.
fn cluster_members(list: &str) -> Option<Vec<String>> {
    let members: Vec<String> = list
        .split(',')
        .map(|m| m.trim().to_string())
        .filter(|m| !m.is_empty())
        .collect();
    if members.is_empty() {
        return None;
    }
    for member in &members {
        match member.rsplit_once(':') {
            Some((host, port)) if !host.is_empty() && port.parse::<u16>().is_ok() => {}
            _ => return None,
        }
    }
    Some(members)
}

struct SweepParams {
    n: usize,
    trials: u64,
    horizon: u64,
    loss: f64,
    /// Regime representatives: t < n/2, n/2 ≤ t < n−1, t = n−1.
    t: (usize, usize, usize),
}

impl SweepParams {
    fn full() -> Self {
        SweepParams {
            n: 5,
            trials: 10,
            horizon: 1200,
            loss: 0.3,
            t: (2, 3, 4),
        }
    }

    fn smoke() -> Self {
        SweepParams {
            n: 4,
            trials: 2,
            horizon: 400,
            loss: 0.25,
            t: (1, 2, 3),
        }
    }
}

/// The UDC cells of Table 1, in row order, with display labels.
fn sweep_cells(p: &SweepParams) -> Vec<(String, CellSpec)> {
    let (t_low, t_mid, t_high) = p.t;
    let cell = |t: usize, drop: Option<f64>, fd: FdChoice, proto: ProtocolChoice| {
        CellSpec::new(p.n, t, drop, fd, proto)
            .trials(p.trials)
            .horizon(p.horizon)
    };
    vec![
        (
            format!("reliable / UDC / t={t_low}"),
            cell(t_low, None, FdChoice::None, ProtocolChoice::Reliable),
        ),
        (
            format!("reliable / UDC / t={t_mid}"),
            cell(t_mid, None, FdChoice::None, ProtocolChoice::Reliable),
        ),
        (
            format!("reliable / UDC / t={t_high}"),
            cell(t_high, None, FdChoice::None, ProtocolChoice::Reliable),
        ),
        (
            format!("unreliable / UDC / t={t_low}"),
            cell(
                t_low,
                Some(p.loss),
                FdChoice::Cycling,
                ProtocolChoice::Generalized,
            ),
        ),
        (
            format!("unreliable / UDC / t={t_mid}"),
            cell(
                t_mid,
                Some(p.loss),
                FdChoice::TUseful,
                ProtocolChoice::Generalized,
            ),
        ),
        (
            format!("unreliable / UDC / t={t_high}"),
            cell(
                t_high,
                Some(p.loss),
                FdChoice::Strong,
                ProtocolChoice::StrongFd,
            ),
        ),
        (
            format!("negative note / t={t_mid}"),
            cell(t_mid, Some(0.6), FdChoice::None, ProtocolChoice::Reliable),
        ),
        (
            format!("negative note / t={t_high}"),
            cell(
                t_high,
                Some(p.loss),
                FdChoice::Weak,
                ProtocolChoice::StrongFd,
            ),
        ),
        (
            format!("strong ≈ perfect / t={t_high}"),
            cell(
                t_high,
                Some(p.loss),
                FdChoice::Perfect,
                ProtocolChoice::StrongFd,
            ),
        ),
    ]
}

/// Prints the failure and exits with the scriptable status for its
/// class: `3` when the retry budget ran out (the server kept shedding
/// load or dropping connections — a retry-later situation), `1` for
/// everything else (transport/protocol failures retries can't mask).
fn fail(context: &str, e: &ClientError) -> ! {
    match e {
        ClientError::RetriesExhausted { attempts, last } => {
            eprintln!("ctl: {context}: gave up after {attempts} attempts (last failure: {last})");
            eprintln!(
                "ctl: hint: the server is overloaded or flapping; retry later, \
                 or check queue pressure with `ctl stats`"
            );
            std::process::exit(3);
        }
        other => {
            eprintln!("ctl: {context}: {other}");
            std::process::exit(1);
        }
    }
}

fn run_sweep(
    client: &mut Conn,
    cells: &[(String, CellSpec)],
    deadline_ms: Option<u64>,
) -> Vec<Response> {
    let options = RequestOptions {
        deadline_ms,
        ..RequestOptions::default()
    };
    let kinds: Vec<(RequestKind, RequestOptions)> = cells
        .iter()
        .map(|(_, spec)| (RequestKind::Cell(spec.clone()), options))
        .collect();
    match client.batch_with_options(kinds) {
        Ok(responses) => responses,
        Err(e) => fail("sweep failed", &e),
    }
}

/// The cache-invariant portion of a sweep: just the result payloads,
/// serialized. Cold and warm passes must agree on this byte-for-byte.
fn payload_bytes(responses: &[Response]) -> String {
    responses
        .iter()
        .map(|r| serde_json::to_string(&r.result).expect("payload encodes"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn print_sweep(cells: &[(String, CellSpec)], responses: &[Response]) {
    println!("{:-<78}", "");
    println!(
        "{:<28}{:<12}{:<24}{:>6}{:>8}",
        "cell", "FD", "outcome", "cache", " µs"
    );
    println!("{:-<78}", "");
    for ((label, spec), response) in cells.iter().zip(responses) {
        let outcome = match &response.result {
            ResponseKind::Cell(out) => format!(
                "{}/{} ok{}",
                out.satisfied,
                out.trials(),
                if out.violated_permanent > 0 {
                    format!(", {} violations", out.violated_permanent)
                } else if out.unsatisfied_pending > 0 {
                    format!(", {} stalls", out.unsatisfied_pending)
                } else {
                    String::new()
                }
            ),
            ResponseKind::Aborted(a) => format!("aborted ({})", a.reason.name()),
            ResponseKind::Error(e) => format!("{:?}: {}", e.code, e.message),
            other => format!("unexpected payload: {other:?}"),
        };
        println!(
            "{:<28}{:<12}{:<24}{:>6}{:>8}",
            label,
            format!("{:?}", spec.fd),
            outcome,
            if response.cached { "hit" } else { "miss" },
            response.micros
        );
    }
    println!("{:-<78}", "");
}

fn cmd_sweep(client: &mut Conn, smoke: bool, twice: bool, deadline_ms: Option<u64>) {
    let params = if smoke {
        SweepParams::smoke()
    } else {
        SweepParams::full()
    };
    let cells = sweep_cells(&params);
    println!(
        "Table-1 UDC sweep via ktudc-serve (n = {}, {} trials/cell, loss = {})",
        params.n, params.trials, params.loss
    );
    let cold = run_sweep(client, &cells, deadline_ms);
    print_sweep(&cells, &cold);
    if twice {
        let warm = run_sweep(client, &cells, deadline_ms);
        let identical = payload_bytes(&cold) == payload_bytes(&warm);
        let warm_hits = warm.iter().filter(|r| r.cached).count();
        println!(
            "warm sweep: {} / {} answered from cache, payloads {}",
            warm_hits,
            warm.len(),
            if identical {
                "byte-identical to cold pass"
            } else {
                "DIFFER from cold pass"
            }
        );
        if !identical || warm_hits == 0 {
            eprintln!("ctl: warm sweep was not served coherently from cache");
            std::process::exit(1);
        }
    }
    match client {
        Conn::Single(c) => match c.stats() {
            Ok(stats) => println!(
                "server: {} workers, queue {}/{}, cache {}/{} entries, hit rate {:.2}, {} shed, \
                 {} steals, deepest deque {}",
                stats.workers,
                stats.queue_depth,
                stats.queue_capacity,
                stats.cache_entries,
                stats.cache_capacity,
                stats.cache_hit_rate,
                stats.overloaded,
                stats.steals,
                stats.deepest_queue
            ),
            Err(e) => fail("stats failed", &e),
        },
        Conn::Cluster(c) => {
            let metrics = c.metrics();
            println!(
                "cluster: {} shards, {} failovers, {} worker restarts observed",
                c.ring().shards(),
                metrics.failovers,
                metrics.worker_restarts
            );
        }
    }
}

/// Parses a detector name as printed in the classify table.
fn parse_detector(name: &str) -> Option<DetectorKind> {
    DetectorKind::ALL
        .into_iter()
        .find(|k| k.to_string() == name)
}

/// Parses a regime name as printed in the classify table.
fn parse_regime(name: &str) -> Option<FaultRegime> {
    FaultRegime::ALL.into_iter().find(|r| r.to_string() == name)
}

fn cmd_classify(
    client: &mut Conn,
    detector: Option<DetectorKind>,
    regime: Option<FaultRegime>,
    smoke: bool,
) {
    let detectors: Vec<DetectorKind> =
        detector.map_or_else(|| DetectorKind::ALL.to_vec(), |d| vec![d]);
    let regimes: Vec<FaultRegime> = regime.map_or_else(|| FaultRegime::ALL.to_vec(), |r| vec![r]);
    let specs: Vec<ClassifySpec> = detectors
        .iter()
        .flat_map(|&d| regimes.iter().map(move |&r| ClassifySpec::new(d, r)))
        .map(|spec| {
            if smoke {
                spec.trials(2).horizon(200)
            } else {
                spec
            }
        })
        .collect();
    println!(
        "empirical detector classification via ktudc-serve ({} cells)",
        specs.len()
    );
    let kinds: Vec<RequestKind> = specs
        .iter()
        .map(|spec| RequestKind::Classify(spec.clone()))
        .collect();
    let responses = match client.batch(kinds) {
        Ok(responses) => responses,
        Err(e) => fail("classify failed", &e),
    };
    println!("{:-<86}", "");
    println!(
        "{:<14}{:<14}{:<20}{:>8}{:>14}{:>8}{:>8}",
        "detector", "regime", "class", "false", "latency µ/max", "cache", " µs"
    );
    println!("{:-<86}", "");
    for (spec, response) in specs.iter().zip(&responses) {
        let (class, false_s, latency) = match &response.result {
            ResponseKind::Classify(v) => (
                format!(
                    "{}{}",
                    v.class,
                    if spec.regime.in_model() {
                        ""
                    } else {
                        " (o.o.m.)"
                    }
                ),
                v.false_suspicion_events.to_string(),
                v.detection_latency
                    .as_ref()
                    .map_or_else(|| "-".to_string(), |l| format!("{:.1}/{}", l.mean, l.max)),
            ),
            ResponseKind::Aborted(a) => (
                format!("aborted ({})", a.reason.name()),
                String::new(),
                String::new(),
            ),
            ResponseKind::Error(e) => (
                format!("{:?}: {}", e.code, e.message),
                String::new(),
                String::new(),
            ),
            other => (
                format!("unexpected payload: {other:?}"),
                String::new(),
                String::new(),
            ),
        };
        println!(
            "{:<14}{:<14}{:<20}{:>8}{:>14}{:>8}{:>8}",
            spec.detector.to_string(),
            spec.regime.to_string(),
            class,
            false_s,
            latency,
            if response.cached { "hit" } else { "miss" },
            response.micros
        );
    }
    println!("{:-<86}", "");
}

fn cmd_stats(client: &mut HardenedClient) {
    match client.stats() {
        Ok(stats) => {
            // The JSON carries everything; the summary line surfaces the
            // pool's work-stealing counters, which are easy to miss in
            // the dump and are the first thing to look at when p99
            // climbs on an uneven workload.
            println!(
                "pool: {} workers, {} steals, deepest deque {}, queue {}/{}",
                stats.workers,
                stats.steals,
                stats.deepest_queue,
                stats.queue_depth,
                stats.queue_capacity
            );
            // Connection-plane counters: nonzero values here mean peers
            // misbehaved on the wire (half-open, oversized, non-JSON)
            // and the server degraded them in a typed, bounded way.
            println!(
                "wire: {} idle connections reaped, {} oversized lines rejected, \
                 {} malformed lines answered BadRequest",
                stats.idle_reaped, stats.oversized_rejected, stats.malformed_lines
            );
            println!(
                "{}",
                serde_json::to_string_pretty(&stats).expect("stats encodes")
            );
        }
        Err(e) => fail("stats failed", &e),
    }
}

fn cmd_health(client: &mut HardenedClient) {
    match client.health() {
        Ok(health) => {
            // Surface the corruption counters: `store_corrupt_candidates`
            // is the store's *live* lifetime count and diverges from the
            // boot-time `corrupt_snapshots_skipped` if corruption appears
            // while the server runs — the divergence is the alarm.
            println!(
                "durability: generation {}, {} corrupt snapshots skipped at boot, \
                 {} corrupt candidates over store lifetime, {} steals, deepest deque {}",
                health.generation,
                health.corrupt_snapshots_skipped,
                health.store_corrupt_candidates,
                health.steals,
                health.deepest_queue
            );
            println!(
                "{}",
                serde_json::to_string_pretty(&health).expect("health encodes")
            );
        }
        Err(e) => fail("health failed", &e),
    }
}

/// Per-shard stats, one summary line + JSON dump per reachable shard.
/// A dead shard prints its error and the sweep goes on — partial
/// observability beats none when a worker is down.
fn cmd_stats_cluster(client: &ClusterClient) {
    let mut reachable = 0usize;
    for (shard, result) in client.stats_per_shard() {
        match result {
            Ok(stats) => {
                reachable += 1;
                println!(
                    "shard {shard}: {} workers, {} steals, deepest deque {}, queue {}/{}, \
                     cache {}/{} entries",
                    stats.workers,
                    stats.steals,
                    stats.deepest_queue,
                    stats.queue_depth,
                    stats.queue_capacity,
                    stats.cache_entries,
                    stats.cache_capacity
                );
                println!(
                    "{}",
                    serde_json::to_string_pretty(&stats).expect("stats encodes")
                );
            }
            Err(e) => eprintln!("shard {shard}: unreachable: {e}"),
        }
    }
    if reachable == 0 {
        eprintln!("ctl: no shard answered stats");
        std::process::exit(1);
    }
}

/// The aggregated cluster health view: one row per shard (dead shards
/// flagged with their last observed generation), then the JSON report.
fn cmd_health_cluster(client: &ClusterClient) {
    let report = client.cluster_health();
    println!(
        "cluster: {}/{} shards reachable, {} cache entries, queue depth {}, {} in flight, \
         max generation {}{}",
        report.reachable_shards,
        report.shards.len(),
        report.total_cache_entries,
        report.total_queue_depth,
        report.total_in_flight,
        report.max_generation,
        if report.suspected_shards > 0 {
            format!(", {} SUSPECTED", report.suspected_shards)
        } else {
            String::new()
        }
    );
    for shard in &report.shards {
        // The φ/suspicion annotations only appear when the answering
        // side runs a live detector plane (a router, or this client's
        // own plane); plain v5 reports print exactly as before.
        let mut suffix = String::new();
        if let Some(phi) = shard.phi {
            suffix.push_str(&format!(", phi {phi:.2}"));
        }
        if shard.suspected {
            suffix.push_str(", SUSPECTED");
        } else if shard.probation {
            suffix.push_str(", probation");
        }
        println!(
            "shard {} at {}: {} (generation {}{suffix})",
            shard.shard,
            shard.addr,
            if shard.reachable { "up" } else { "DOWN" },
            shard.generation
        );
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("health encodes")
    );
    if report.reachable_shards == 0 {
        eprintln!("ctl: no shard answered health");
        std::process::exit(1);
    }
}

/// Resumes the checkpointed exploration at `path` — entirely locally.
/// The journal header pins the spec, so nothing else needs restating; a
/// torn tail (the usual kill-9 artifact) is truncated and recomputed.
fn cmd_resume(path: &str) {
    use ktudc_store::SyncPolicy;

    match ktudc_sim::resume_checkpoint(std::path::Path::new(path), SyncPolicy::Always) {
        Ok((spec, result, stats)) => {
            let digest = ktudc_sim::system_digest(&result.system);
            println!(
                "resumed exploration (n = {}, horizon = {}): {} runs, complete = {}, digest = {digest:#018x}",
                spec.n,
                spec.horizon,
                result.system.len(),
                result.complete
            );
            println!(
                "checkpoint: {} / {} subtrees replayed, {} computed this invocation, \
                 {} journal entries replayed, {} torn bytes truncated",
                stats.resumed_subtrees,
                stats.total_subtrees,
                stats.computed_subtrees,
                stats.replayed_entries,
                stats.truncated_bytes
            );
        }
        Err(e) => {
            eprintln!("ctl: resume failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_shutdown(client: &mut HardenedClient) {
    match client.shutdown_server() {
        Ok(()) => println!("server acknowledged shutdown; draining"),
        Err(e) => fail("shutdown failed", &e),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ctl [--addr HOST:PORT] <sweep [--smoke] [--twice] [--deadline-ms N] | \
         classify [--detector NAME] [--regime NAME] [--smoke] | stats | health | shutdown>\n\
         \x20      ctl --cluster HOST:P1,HOST:P2,... <sweep | classify | stats | health>\n\
         \x20      ctl resume <checkpoint>"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut cluster: Option<String> = None;
    let mut command: Option<String> = None;
    let mut operand: Option<String> = None;
    let mut smoke = false;
    let mut twice = false;
    let mut deadline_ms: Option<u64> = None;
    let mut detector: Option<DetectorKind> = None;
    let mut regime: Option<FaultRegime> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => usage(),
            },
            "--cluster" => match args.next() {
                Some(list) => cluster = Some(list),
                None => usage(),
            },
            "--smoke" => smoke = true,
            "--twice" => twice = true,
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => deadline_ms = Some(ms),
                None => usage(),
            },
            "--detector" => match args.next().as_deref().and_then(parse_detector) {
                Some(d) => detector = Some(d),
                None => usage(),
            },
            "--regime" => match args.next().as_deref().and_then(parse_regime) {
                Some(r) => regime = Some(r),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other if command.is_some() && operand.is_none() && !other.starts_with('-') => {
                operand = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };
    // Usage errors exit 2 before touching the network or the disk, so a
    // typo isn't misreported as a transport failure when the server is
    // down (or as a resume failure when the journal is fine).
    if cluster.is_some() && addr.is_some() {
        // One address or a member list, never both: --addr pointed at a
        // router already reaches the whole cluster.
        usage();
    }
    let members: Option<Vec<String>> = match &cluster {
        None => None,
        Some(list) => match cluster_members(list) {
            Some(members) => Some(members),
            // A malformed member list is a usage error even when the
            // fleet is also down; validation is purely syntactic.
            None => usage(),
        },
    };
    if members.is_some() && !matches!(command.as_str(), "sweep" | "classify" | "stats" | "health") {
        usage();
    }
    match command.as_str() {
        "sweep" => {
            if operand.is_some() || detector.is_some() || regime.is_some() {
                usage();
            }
            // Deadline-carrying results are never published to the cache,
            // so the `--twice` warm-pass coherence check cannot hold.
            if twice && deadline_ms.is_some() {
                usage();
            }
        }
        "classify" => {
            if operand.is_some() || twice || deadline_ms.is_some() {
                usage();
            }
        }
        "stats" | "health" | "shutdown" => {
            if operand.is_some()
                || smoke
                || twice
                || deadline_ms.is_some()
                || detector.is_some()
                || regime.is_some()
            {
                usage();
            }
        }
        "resume" => {
            if operand.is_none()
                || smoke
                || twice
                || deadline_ms.is_some()
                || detector.is_some()
                || regime.is_some()
            {
                usage();
            }
        }
        _ => usage(),
    }
    if command == "resume" {
        // Local: resumes a journaled exploration; no server involved.
        cmd_resume(&operand.expect("checked above"));
        return;
    }
    if let Some(members) = members {
        // Probe: at least one member must answer, so a wholly dead
        // fleet is a crisp transport failure (exit 1) up front; the
        // cluster client then masks per-shard faults with failover.
        if !members.iter().any(|m| Client::connect(m).is_ok()) {
            eprintln!("ctl: no cluster member reachable among {members:?}");
            std::process::exit(1);
        }
        let client = ClusterClient::new(Arc::new(Membership::new(members)), RetryPolicy::default());
        match command.as_str() {
            "sweep" => cmd_sweep(&mut Conn::Cluster(client), smoke, twice, deadline_ms),
            "classify" => cmd_classify(&mut Conn::Cluster(client), detector, regime, smoke),
            "stats" => cmd_stats_cluster(&client),
            "health" => cmd_health_cluster(&client),
            _ => usage(),
        }
        return;
    }
    let addr = addr.unwrap_or_else(|| "127.0.0.1:7199".to_string());
    // Probe once so an unreachable server is a crisp transport failure
    // (exit 1), not a slow walk through the retry budget (exit 3); the
    // hardened client then masks faults on the actual conversation.
    if let Err(e) = Client::connect(&addr) {
        eprintln!("ctl: cannot connect to {addr}: {e}");
        std::process::exit(1);
    }
    let mut client = HardenedClient::new(addr, RetryPolicy::default());
    match command.as_str() {
        "sweep" => cmd_sweep(&mut Conn::Single(client), smoke, twice, deadline_ms),
        "classify" => cmd_classify(&mut Conn::Single(client), detector, regime, smoke),
        "stats" => cmd_stats(&mut client),
        "health" => cmd_health(&mut client),
        "shutdown" => cmd_shutdown(&mut client),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_member_validation_is_syntactic_and_strict() {
        // Valid lists parse without any I/O.
        assert_eq!(
            cluster_members("127.0.0.1:7199,localhost:7200"),
            Some(vec![
                "127.0.0.1:7199".to_string(),
                "localhost:7200".to_string()
            ])
        );
        // Whitespace and a trailing comma are tolerated.
        assert_eq!(
            cluster_members(" h:1 , h:2 ,"),
            Some(vec!["h:1".to_string(), "h:2".to_string()])
        );
        // Anything that is not HOST:PORT is a usage error (None), even
        // shapes that *would* resolve: validation never touches DNS.
        assert_eq!(cluster_members(""), None);
        assert_eq!(cluster_members(","), None);
        assert_eq!(cluster_members("no-port"), None);
        assert_eq!(cluster_members(":7199"), None);
        assert_eq!(cluster_members("host:"), None);
        assert_eq!(cluster_members("host:notaport"), None);
        assert_eq!(cluster_members("host:99999"), None);
        assert_eq!(cluster_members("good:1,bad"), None);
    }
}
