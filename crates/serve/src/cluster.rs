//! Cluster membership, the cluster-aware client, and the worker fleet.
//!
//! A cluster is N independent `ktudc-serve` worker processes plus a
//! [`HashRing`] that every participant computes identically: requests
//! route by the same 64-bit digest the scenario cache keys on, so the
//! cache shards cleanly across workers with no duplicate compute. This
//! module holds the three pieces that turn a list of addresses into a
//! cluster:
//!
//! - [`Membership`] — the mutable shard→address table. Worker restarts
//!   under a fleet supervisor re-bind ephemeral ports, so addresses are
//!   *state*, not configuration; everything that talks to a shard reads
//!   the table at call time.
//! - [`ClusterClient`] — a [`HardenedClient`] per shard with failover:
//!   when a shard is down (transport error, retries exhausted, open
//!   breaker) or sheds with `Overloaded`/`DeadlineExceeded`, the request
//!   is retried on the next replica in ring order. Generations are
//!   tracked *per shard*, so a worker restart surfaces as a typed
//!   [`ClusterEvent::WorkerRestarted`] for that shard even when the
//!   respawned worker came back on a different port.
//! - [`Fleet`] + [`launch_fleet`] — runs N workers under the existing
//!   crash-loop [`supervise`] machinery, one supervisor thread per
//!   shard, updating [`Membership`] from each worker's boot banner.
//!
//! Failover is exercised at the wire level too: `tests/serve_chaosnet.rs`
//! puts a shard behind a one-way-partitioned [`crate::chaosnet`] proxy
//! and asserts every answer rerouted to a replica is byte-identical to
//! the direct computation.

use crate::cache::LruCache;
use crate::client::{ClientError, ClientMetrics, HardenedClient, RetryPolicy};
use crate::detector::{DetectorConfig, DetectorPlane};
use crate::metrics::StatsReport;
use crate::ring::HashRing;
use crate::supervisor::{supervise, SupervisorPolicy, SupervisorReport};
use crate::wire::{
    ClusterHealthReport, ErrorCode, RequestKind, RequestOptions, Response, ResponseKind,
    ShardHealth,
};
use std::io::{BufRead, BufReader};
use std::process::Child;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lines of a worker's stdout scanned for the boot banner before giving
/// up on an announcement. Generously above the worker's actual boot
/// output (generation line + listen line) so a future extra line never
/// breaks fleet startup, but bounded so a silent child cannot hang its
/// supervisor.
const MAX_BOOT_LINES: usize = 64;

/// The shard→address table of a running cluster.
///
/// Shard *count* is fixed for the cluster's lifetime (it defines the
/// hash ring); shard *addresses* are mutable because a supervised worker
/// that crashes comes back on a fresh ephemeral port. Readers take the
/// address at call time, so an updated entry heals every subsequent
/// request with no client rebuild.
pub struct Membership {
    addrs: RwLock<Vec<String>>,
}

impl Membership {
    /// A table with one slot per shard. Empty strings are legal
    /// placeholders for "not announced yet" (see [`Fleet::wait_ready`]).
    #[must_use]
    pub fn new(addrs: Vec<String>) -> Membership {
        Membership {
            addrs: RwLock::new(addrs),
        }
    }

    /// Number of shards (fixed for the cluster's lifetime).
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.read().expect("membership lock poisoned").len()
    }

    /// Whether the cluster has no shards at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current address of `shard`.
    #[must_use]
    pub fn addr(&self, shard: usize) -> String {
        self.addrs.read().expect("membership lock poisoned")[shard].clone()
    }

    /// Points `shard` at a new address (a restarted worker re-announced).
    pub fn set_addr(&self, shard: usize, addr: impl Into<String>) {
        self.addrs.write().expect("membership lock poisoned")[shard] = addr.into();
    }

    /// The full table at this instant.
    #[must_use]
    pub fn snapshot(&self) -> Vec<String> {
        self.addrs.read().expect("membership lock poisoned").clone()
    }
}

/// A noteworthy event observed by a [`ClusterClient`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterEvent {
    /// Shard `shard`'s responses started arriving from a different
    /// worker generation: that worker restarted. Tracked per shard (not
    /// per connection), so it fires exactly once per observed restart
    /// even when the respawned worker came back on a new port and the
    /// underlying connection was rebuilt.
    WorkerRestarted {
        /// Which shard restarted.
        shard: usize,
        /// Generation observed from the shard before the change.
        old_gen: u64,
        /// Generation that revealed the restart.
        new_gen: u64,
    },
}

/// Counters of what a [`ClusterClient`] has masked or observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Requests answered by a replica other than their owner shard
    /// (each extra shard tried counts once).
    pub failovers: u64,
    /// Worker restarts detected via a per-shard generation change.
    pub worker_restarts: u64,
    /// The per-shard [`HardenedClient`] counters, indexed by shard.
    pub per_shard: Vec<ClientMetrics>,
}

/// Per-shard connection state guarded by one mutex per shard.
struct ShardState {
    /// The address this client was built for; rebuilt when membership
    /// moves the shard.
    addr: String,
    client: HardenedClient,
    /// Last generation observed from this *shard* (survives client
    /// rebuilds, which is what makes restart detection per-worker).
    last_gen: Option<u64>,
}

/// A cluster-aware client: one [`HardenedClient`] per shard, requests
/// routed by cache key over the [`HashRing`], failover to the next
/// replica when a shard is down or shedding.
///
/// Thread-safe: batches fan sub-batches out across shards on scoped
/// threads, and independent callers may share one instance (per-shard
/// state is mutex-guarded).
pub struct ClusterClient {
    membership: Arc<Membership>,
    ring: HashRing,
    policy: RetryPolicy,
    shards: Vec<Mutex<ShardState>>,
    failovers: AtomicU64,
    worker_restarts: AtomicU64,
    events: Mutex<Vec<ClusterEvent>>,
    /// Optional live failure-detector plane: suspected shards are
    /// demoted at routing time, soft-suspected primaries are hedged.
    detector: Option<Arc<DetectorPlane>>,
}

impl ClusterClient {
    /// A client over `membership` (no connections are made yet). Each
    /// shard gets its own independent copy of `policy` — per-shard
    /// retry budgets, backoff schedules, and circuit breakers.
    #[must_use]
    pub fn new(membership: Arc<Membership>, policy: RetryPolicy) -> ClusterClient {
        let shards = membership.len();
        let states = (0..shards)
            .map(|shard| {
                let addr = membership.addr(shard);
                Mutex::new(ShardState {
                    client: HardenedClient::new(addr.clone(), policy),
                    addr,
                    last_gen: None,
                })
            })
            .collect();
        ClusterClient {
            ring: HashRing::new(shards),
            membership,
            policy,
            shards: states,
            failovers: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            detector: None,
        }
    }

    /// Attaches a live [`DetectorPlane`] (started immediately): requests
    /// skip suspected shards proactively, and a primary whose φ is in
    /// the soft band is hedged to the next replica after
    /// [`DetectorPlane::hedge_delay`]. The plane stops when the client
    /// is dropped.
    #[must_use]
    pub fn with_detector(mut self, config: DetectorConfig) -> ClusterClient {
        self.detector = Some(DetectorPlane::start(Arc::clone(&self.membership), config));
        self
    }

    /// The attached detector plane, if any.
    #[must_use]
    pub fn detector(&self) -> Option<&Arc<DetectorPlane>> {
        self.detector.as_ref()
    }

    /// The routing digest of a request body: the same key the scenario
    /// cache files it under, so routing and caching agree by
    /// construction.
    #[must_use]
    pub fn shard_key(kind: &RequestKind) -> u64 {
        LruCache::key_of(&serde_json::to_string(kind).unwrap_or_default())
    }

    /// The shard that owns `kind` (before any failover).
    #[must_use]
    pub fn route(&self, kind: &RequestKind) -> usize {
        self.ring.shard_for(Self::shard_key(kind))
    }

    /// The ring this client routes over.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Runs `f` against `shard`'s client, rebuilding the client first if
    /// membership moved the shard, and folding any generation change
    /// into per-shard restart tracking afterwards.
    fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&mut HardenedClient) -> T) -> T {
        let mut state = self.shards[shard].lock().expect("shard lock poisoned");
        let current = self.membership.addr(shard);
        if state.addr != current {
            state.addr = current.clone();
            state.client = HardenedClient::new(current, self.policy);
        }
        let out = f(&mut state.client);
        // The per-connection events are subsumed by per-shard tracking;
        // drain them so they cannot accumulate unread.
        let _ = state.client.take_events();
        if let Some(new_gen) = state.client.last_generation() {
            if let Some(old_gen) = state.last_gen {
                if old_gen != new_gen {
                    self.worker_restarts.fetch_add(1, Ordering::Relaxed);
                    self.events.lock().expect("events lock poisoned").push(
                        ClusterEvent::WorkerRestarted {
                            shard,
                            old_gen,
                            new_gen,
                        },
                    );
                }
            }
            state.last_gen = Some(new_gen);
        }
        out
    }

    /// Last generation observed from `shard`, across client rebuilds.
    fn last_gen(&self, shard: usize) -> Option<u64> {
        self.shards[shard]
            .lock()
            .expect("shard lock poisoned")
            .last_gen
    }

    /// Tries `kind` on each shard of `order` in turn. `attempted` is how
    /// many shards were already tried by the caller (every try after the
    /// first overall counts as a failover). A typed `Overloaded`/
    /// `DeadlineExceeded` shed moves on to the next replica but is kept
    /// as the answer of last resort: if *every* replica sheds, the
    /// caller gets the typed shed (zero wrong answers, never a made-up
    /// error), and only if every replica is unreachable does the
    /// transport error surface.
    fn try_order(
        &self,
        kind: &RequestKind,
        options: RequestOptions,
        order: &[usize],
        mut attempted: u32,
    ) -> Result<Response, ClientError> {
        let mut last_err: Option<ClientError> = None;
        let mut last_shed: Option<Response> = None;
        for &shard in order {
            if attempted > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
            }
            attempted += 1;
            match self.with_shard(shard, |c| c.request_with_options(kind.clone(), options)) {
                Ok(mut resp) => {
                    if resp.shard.is_none() {
                        resp.shard = Some(shard);
                    }
                    let shed = matches!(
                        &resp.result,
                        ResponseKind::Error(e)
                            if matches!(e.code, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
                    );
                    if shed {
                        last_shed = Some(resp);
                    } else {
                        return Ok(resp);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_shed {
            Some(resp) => Ok(resp),
            None => Err(last_err
                .unwrap_or_else(|| ClientError::Protocol("cluster has no shards".to_string()))),
        }
    }

    /// Sends one request to its owner shard, failing over through the
    /// ring's replica order when the owner is down or shedding.
    ///
    /// # Errors
    ///
    /// The last shard's error when *every* replica was unreachable;
    /// typed sheds are successful responses (see [`ClusterClient::try_order`]).
    pub fn request(&self, kind: RequestKind) -> Result<Response, ClientError> {
        self.request_with_options(kind, RequestOptions::default())
    }

    /// As [`ClusterClient::request`], with per-request [`RequestOptions`].
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::request`].
    pub fn request_with_options(
        &self,
        kind: RequestKind,
        options: RequestOptions,
    ) -> Result<Response, ClientError> {
        let mut order = self.ring.replicas(Self::shard_key(&kind));
        let mut attempted = 0;
        if let Some(plane) = &self.detector {
            if plane.prefer_unsuspected(&mut order) {
                // The owner is suspected: route straight to a replica.
                // Passing `attempted: 1` makes try_order count the very
                // first try as a failover, same meaning as the reactive
                // counter ("answered by a replica other than the owner").
                plane.note_proactive_failover();
                attempted = 1;
            }
            if order.len() >= 2 && plane.should_hedge(order[0]) {
                return self.hedged(&kind, options, &order, attempted, plane);
            }
        }
        self.try_order(&kind, options, &order, attempted)
    }

    /// One try against one shard, preserving the typed-shed-as-`Ok`
    /// convention of [`ClusterClient::try_order`].
    fn try_one(
        &self,
        shard: usize,
        kind: &RequestKind,
        options: RequestOptions,
    ) -> Result<Response, ClientError> {
        self.with_shard(shard, |c| c.request_with_options(kind.clone(), options))
            .map(|mut resp| {
                if resp.shard.is_none() {
                    resp.shard = Some(shard);
                }
                resp
            })
    }

    /// Whether a response is a typed shed (kept as last resort, never a
    /// winning answer while another replica might still compute).
    fn is_shed(resp: &Response) -> bool {
        matches!(
            &resp.result,
            ResponseKind::Error(e)
                if matches!(e.code, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
        )
    }

    /// Hedges a request whose primary's φ crossed the soft threshold:
    /// send to the primary, and if no answer lands within the
    /// RTT-derived [`DetectorPlane::hedge_delay`], fire the same request
    /// at the next replica and take the first non-shed success. The
    /// loser is discarded — safe because replicas compute byte-identical
    /// answers (the audited uniform contract), and dedup-safe because
    /// the backup targets a *different* shard's cache while single-flight
    /// on each shard keeps identical racing bodies to one computation.
    ///
    /// Both legs run on scoped threads, so the loser is joined before
    /// returning; its wait is bounded by the per-shard [`RetryPolicy`]
    /// budget, and in the soft band (primary not yet suspected) both
    /// legs normally finish quickly.
    fn hedged(
        &self,
        kind: &RequestKind,
        options: RequestOptions,
        order: &[usize],
        attempted: u32,
        plane: &Arc<DetectorPlane>,
    ) -> Result<Response, ClientError> {
        let primary = order[0];
        let backup = order[1];
        // A demoted primary already counts as one failover.
        self.failovers
            .fetch_add(u64::from(attempted), Ordering::Relaxed);
        let delay = plane.hedge_delay();
        let (tx, rx) = mpsc::channel();
        let mut legs: Vec<(usize, Result<Response, ClientError>)> = Vec::with_capacity(2);
        let mut fired = false;
        std::thread::scope(|scope| {
            let ptx = tx.clone();
            scope.spawn(move || {
                let _ = ptx.send((primary, self.try_one(primary, kind, options)));
            });
            match rx.recv_timeout(delay) {
                Ok(leg) => legs.push(leg),
                Err(_) => {
                    fired = true;
                    plane.note_hedge_fired();
                    let btx = tx.clone();
                    scope.spawn(move || {
                        let _ = btx.send((backup, self.try_one(backup, kind, options)));
                    });
                    legs.extend(rx.iter().take(2));
                }
            }
        });
        // First non-shed success in arrival order wins; the other leg's
        // outcome (if any) is discarded.
        let mut last_shed: Option<Response> = None;
        let mut last_err: Option<ClientError> = None;
        let mut winner: Option<(usize, Response)> = None;
        for (shard, outcome) in legs {
            match outcome {
                Ok(resp) if !Self::is_shed(&resp) => {
                    if winner.is_none() {
                        winner = Some((shard, resp));
                    }
                }
                Ok(resp) => last_shed = Some(resp),
                Err(e) => last_err = Some(e),
            }
        }
        if let Some((shard, resp)) = winner {
            if fired {
                if shard == backup {
                    plane.note_hedge_won();
                    // The backup answered: served by a non-owner replica.
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                } else {
                    plane.note_hedge_wasted();
                }
            }
            return Ok(resp);
        }
        // Every hedge leg failed or shed: continue down the remaining
        // replicas reactively, keeping the legs' typed shed and transport
        // error as answers of last resort.
        let tried = if fired { 2 } else { 1 };
        match self.try_order(
            kind,
            options,
            &order[tried.min(order.len())..],
            attempted + 1,
        ) {
            Ok(resp) => Ok(resp),
            Err(e) => match last_shed {
                Some(shed) => Ok(shed),
                None => Err(last_err.unwrap_or(e)),
            },
        }
    }

    /// Sends a batch, fanning per-shard sub-batches out in parallel
    /// (scoped threads, one per owning shard) and merging responses back
    /// into request order. Requests whose owner shard fails or sheds
    /// fail over individually, so one dead shard degrades only its own
    /// keys' latency, never the whole batch.
    ///
    /// # Errors
    ///
    /// The first per-request failure in request order, when that request
    /// exhausted every replica.
    pub fn batch(&self, kinds: Vec<RequestKind>) -> Result<Vec<Response>, ClientError> {
        self.batch_with_options(
            kinds
                .into_iter()
                .map(|kind| (kind, RequestOptions::default()))
                .collect(),
        )
    }

    /// As [`ClusterClient::batch`], with per-request [`RequestOptions`].
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::batch`].
    pub fn batch_with_options(
        &self,
        kinds: Vec<(RequestKind, RequestOptions)>,
    ) -> Result<Vec<Response>, ClientError> {
        let shard_count = self.ring.shards();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, (kind, _)) in kinds.iter().enumerate() {
            by_shard[self.route(kind)].push(i);
        }
        let slots: Vec<Mutex<Option<Result<Response, ClientError>>>> =
            kinds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for (shard, indices) in by_shard.iter().enumerate() {
                if indices.is_empty() {
                    continue;
                }
                let kinds = &kinds;
                let slots = &slots;
                scope.spawn(move || {
                    self.run_sub_batch(shard, indices, kinds, slots);
                });
            }
        });
        let mut out = Vec::with_capacity(kinds.len());
        for slot in slots {
            match slot.into_inner().expect("slot lock poisoned") {
                Some(Ok(resp)) => out.push(resp),
                Some(Err(e)) => return Err(e),
                None => return Err(ClientError::Protocol("batch slot never filled".to_string())),
            }
        }
        Ok(out)
    }

    /// One shard's share of a batch: pipeline the sub-batch to the owner,
    /// then fail individual sheds (or the whole sub-batch, on transport
    /// failure) over to the remaining replicas.
    fn run_sub_batch(
        &self,
        shard: usize,
        indices: &[usize],
        kinds: &[(RequestKind, RequestOptions)],
        slots: &[Mutex<Option<Result<Response, ClientError>>>],
    ) {
        let sub: Vec<(RequestKind, RequestOptions)> =
            indices.iter().map(|&i| kinds[i].clone()).collect();
        let attempt = self.with_shard(shard, |c| c.batch_with_options(sub));
        match attempt {
            Ok(responses) if responses.len() == indices.len() => {
                for (offset, mut resp) in responses.into_iter().enumerate() {
                    let i = indices[offset];
                    let shed = matches!(
                        &resp.result,
                        ResponseKind::Error(e)
                            if matches!(e.code, ErrorCode::Overloaded | ErrorCode::DeadlineExceeded)
                    );
                    let outcome = if shed {
                        self.fail_over(i, kinds, shard, Some(resp))
                    } else {
                        if resp.shard.is_none() {
                            resp.shard = Some(shard);
                        }
                        Ok(resp)
                    };
                    *slots[i].lock().expect("slot lock poisoned") = Some(outcome);
                }
            }
            // A short response set would be a protocol violation from
            // HardenedClient; treat it like a transport failure and
            // re-derive every answer from the replicas.
            Ok(_) | Err(_) => {
                for &i in indices {
                    let outcome = self.fail_over(i, kinds, shard, None);
                    *slots[i].lock().expect("slot lock poisoned") = Some(outcome);
                }
            }
        }
    }

    /// Retries request `i` on every replica after `owner`; falls back to
    /// the owner's own typed shed when every replica also fails.
    fn fail_over(
        &self,
        i: usize,
        kinds: &[(RequestKind, RequestOptions)],
        owner: usize,
        owner_shed: Option<Response>,
    ) -> Result<Response, ClientError> {
        let (kind, options) = kinds[i].clone();
        let order: Vec<usize> = self
            .ring
            .replicas(Self::shard_key(&kind))
            .into_iter()
            .filter(|&s| s != owner)
            .collect();
        match self.try_order(&kind, options, &order, 1) {
            Ok(resp) => Ok(resp),
            Err(e) => match owner_shed {
                Some(shed) => Ok(shed),
                None => Err(e),
            },
        }
    }

    /// Polls every shard's health in parallel and aggregates the rows.
    /// Unreachable shards get a `reachable: false` row carrying their
    /// last observed generation, so the report never blocks on — or
    /// lies about — a dead worker.
    ///
    /// A single member may be a router fronting many workers, so it is
    /// asked for its own `ClusterHealth` view first — the fleet
    /// aggregate is strictly more informative than one `Health` row
    /// about the router itself, and a plain worker answers the same
    /// request as a one-shard cluster, so nothing is lost either way.
    #[must_use]
    pub fn cluster_health(&self) -> ClusterHealthReport {
        if self.ring.shards() == 1 {
            if let Ok(mut report) = self.with_shard(0, HardenedClient::cluster_health) {
                if let Some(plane) = &self.detector {
                    plane.annotate(&mut report);
                }
                return report;
            }
        }
        let rows: Vec<ShardHealth> = std::thread::scope(|scope| {
            let probes: Vec<_> = (0..self.ring.shards())
                .map(|shard| {
                    scope.spawn(move || {
                        let addr = self.membership.addr(shard);
                        match self.with_shard(shard, |c| c.health()) {
                            Ok(report) => {
                                ShardHealth::new(shard, addr, true, report.generation, Some(report))
                            }
                            Err(_) => ShardHealth::new(
                                shard,
                                addr,
                                false,
                                self.last_gen(shard).unwrap_or(0),
                                None,
                            ),
                        }
                    })
                })
                .collect();
            probes
                .into_iter()
                .enumerate()
                .map(|(shard, p)| {
                    // A panicking probe must not take the whole report
                    // down with it: report that shard as unreachable.
                    p.join().unwrap_or_else(|_| {
                        ShardHealth::new(
                            shard,
                            self.membership.addr(shard),
                            false,
                            self.last_gen(shard).unwrap_or(0),
                            None,
                        )
                    })
                })
                .collect()
        });
        let mut report = ClusterHealthReport::aggregate(rows);
        if let Some(plane) = &self.detector {
            plane.annotate(&mut report);
        }
        report
    }

    /// Fetches every shard's metrics snapshot (sequentially; stats are
    /// cheap). Unreachable shards report their error in place.
    #[must_use]
    pub fn stats_per_shard(&self) -> Vec<(usize, Result<StatsReport, ClientError>)> {
        (0..self.ring.shards())
            .map(|shard| (shard, self.with_shard(shard, HardenedClient::stats)))
            .collect()
    }

    /// Asks every shard to drain and exit; returns how many acknowledged
    /// (already-dead shards are not an error — the goal state is "down").
    pub fn shutdown_cluster(&self) -> usize {
        (0..self.ring.shards())
            .filter(|&shard| {
                self.with_shard(shard, HardenedClient::shutdown_server)
                    .is_ok()
            })
            .count()
    }

    /// What this client has masked and observed so far.
    #[must_use]
    pub fn metrics(&self) -> ClusterMetrics {
        ClusterMetrics {
            failovers: self.failovers.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            per_shard: (0..self.ring.shards())
                .map(|shard| {
                    self.shards[shard]
                        .lock()
                        .expect("shard lock poisoned")
                        .client
                        .metrics()
                })
                .collect(),
        }
    }

    /// Drains the accumulated [`ClusterEvent`]s (oldest first).
    pub fn take_events(&self) -> Vec<ClusterEvent> {
        std::mem::take(&mut *self.events.lock().expect("events lock poisoned"))
    }
}

impl Drop for ClusterClient {
    fn drop(&mut self) {
        // The probe threads hold their own Arc to the plane, so it must
        // be stopped explicitly — dropping the Arc alone would leak them.
        if let Some(plane) = &self.detector {
            plane.stop();
        }
    }
}

/// Extracts the announced address from a worker's boot banner line
/// (`… listening on 127.0.0.1:40123`).
fn parse_listen_addr(line: &str) -> Option<&str> {
    let at = line.find("listening on ")?;
    let addr = line[at + "listening on ".len()..].trim();
    (!addr.is_empty()).then_some(addr)
}

/// A supervised fleet of worker processes, one shard each.
///
/// Each shard runs its own [`supervise`] loop on a dedicated thread:
/// crash-loop backoff, give-up budget, and stable-run streak reset all
/// apply per worker. When a worker (re)starts, its boot banner is parsed
/// for the bound address and [`Membership`] is updated in place — the
/// respawned worker's ephemeral port heals into the routing table
/// without restarting anything else.
pub struct Fleet {
    membership: Arc<Membership>,
    stop: Arc<AtomicBool>,
    pids: Arc<Mutex<Vec<Option<u32>>>>,
    supervisors: Vec<JoinHandle<std::io::Result<SupervisorReport>>>,
}

impl Fleet {
    /// The fleet's live shard→address table.
    #[must_use]
    pub fn membership(&self) -> Arc<Membership> {
        Arc::clone(&self.membership)
    }

    /// The current process id of `shard`'s worker (None until its first
    /// announcement). After a crash this lags until the supervisor's
    /// respawn announces.
    #[must_use]
    pub fn pid(&self, shard: usize) -> Option<u32> {
        self.pids.lock().expect("pids lock poisoned")[shard]
    }

    /// Blocks until every shard has announced an address, or `timeout`
    /// passes. Returns whether the fleet is fully announced.
    #[must_use]
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.membership.snapshot().iter().all(|a| !a.is_empty()) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops every supervisor (killing and reaping its worker) and
    /// returns the per-shard supervision reports.
    pub fn stop_and_join(self) -> Vec<std::io::Result<SupervisorReport>> {
        self.stop.store(true, Ordering::SeqCst);
        self.supervisors
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(std::io::Error::other("supervisor thread panicked")))
            })
            .collect()
    }
}

/// Launches `shards` supervised workers. `spawn(shard)` must return a
/// [`Child`] whose stdout is piped (the boot banner is parsed from it);
/// it is called again on every restart of that shard, so per-shard state
/// (data dir, flags) belongs in the closure.
///
/// Workers that die are restarted under `policy`'s crash-loop backoff;
/// a shard whose give-up budget runs out stays down (its supervisor
/// thread ends with `gave_up` in its report) while the rest of the
/// fleet keeps serving.
#[must_use]
pub fn launch_fleet<S>(shards: usize, policy: SupervisorPolicy, spawn: S) -> Fleet
where
    S: Fn(usize) -> std::io::Result<Child> + Send + Sync + 'static,
{
    let membership = Arc::new(Membership::new(vec![String::new(); shards]));
    let stop = Arc::new(AtomicBool::new(false));
    let pids = Arc::new(Mutex::new(vec![None; shards]));
    let spawn = Arc::new(spawn);
    let supervisors = (0..shards)
        .map(|shard| {
            let membership = Arc::clone(&membership);
            let stop = Arc::clone(&stop);
            let pids = Arc::clone(&pids);
            let spawn = Arc::clone(&spawn);
            std::thread::spawn(move || {
                supervise(
                    || {
                        let mut child = spawn(shard)?;
                        let pid = child.id();
                        if let Some(stdout) = child.stdout.take() {
                            let mut reader = BufReader::new(stdout);
                            let mut announced: Option<String> = None;
                            for _ in 0..MAX_BOOT_LINES {
                                let mut line = String::new();
                                match reader.read_line(&mut line) {
                                    Ok(0) | Err(_) => break,
                                    Ok(_) => {
                                        if let Some(addr) = parse_listen_addr(&line) {
                                            announced = Some(addr.to_string());
                                            break;
                                        }
                                    }
                                }
                            }
                            if let Some(addr) = announced {
                                membership.set_addr(shard, addr.clone());
                                pids.lock().expect("pids lock poisoned")[shard] = Some(pid);
                                println!(
                                    "ktudc-serve: shard {shard} pid {pid} listening on {addr}"
                                );
                            }
                            // Keep draining so the worker never blocks on
                            // a full stdout pipe; the thread ends at the
                            // worker's EOF (its death), whoever causes it.
                            std::thread::spawn(move || {
                                for line in reader.lines() {
                                    if line.is_err() {
                                        break;
                                    }
                                }
                            });
                        }
                        Ok(child)
                    },
                    policy,
                    &stop,
                )
            })
        })
        .collect();
    Fleet {
        membership,
        stop,
        pids,
        supervisors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};
    use ktudc_core::harness::{CellSpec, FdChoice, ProtocolChoice};

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            ..RetryPolicy::default()
        }
    }

    fn cheap_cell(i: u64) -> RequestKind {
        RequestKind::Cell(
            CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(1)
                .horizon(40 + i),
        )
    }

    #[test]
    fn membership_is_mutable_shared_state() {
        let m = Membership::new(vec!["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert_eq!(m.addr(1), "b:2");
        m.set_addr(1, "c:3");
        assert_eq!(m.addr(1), "c:3");
        assert_eq!(m.snapshot(), vec!["a:1".to_string(), "c:3".to_string()]);
    }

    #[test]
    fn live_addr_swap_never_tears() {
        // In-flight routing reads addresses while a fleet supervisor
        // rewrites them. Readers must only ever observe one of the two
        // complete values — never a torn mix (which would route a
        // request to an address nobody announced).
        let a = "127.0.0.1:41001".to_string();
        let b = "10.99.88.77:59999".to_string();
        let m = Arc::new(Membership::new(vec![a.clone()]));
        let start = Arc::new(std::sync::Barrier::new(5));
        std::thread::scope(|scope| {
            {
                let (m, start) = (Arc::clone(&m), Arc::clone(&start));
                let (a, b) = (a.clone(), b.clone());
                scope.spawn(move || {
                    start.wait();
                    for i in 0..20_000 {
                        m.set_addr(0, if i % 2 == 0 { b.clone() } else { a.clone() });
                    }
                });
            }
            for _ in 0..4 {
                let (m, start) = (Arc::clone(&m), Arc::clone(&start));
                let (a, b) = (a.clone(), b.clone());
                scope.spawn(move || {
                    start.wait();
                    for _ in 0..20_000 {
                        let seen = m.addr(0);
                        assert!(seen == a || seen == b, "torn address observed: {seen:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn boot_banner_parsing() {
        assert_eq!(
            parse_listen_addr("ktudc-serve: listening on 127.0.0.1:40123"),
            Some("127.0.0.1:40123")
        );
        assert_eq!(
            parse_listen_addr("listening on 10.0.0.1:7199\n"),
            Some("10.0.0.1:7199")
        );
        assert_eq!(parse_listen_addr("generation 3"), None);
        assert_eq!(parse_listen_addr("listening on "), None);
    }

    #[test]
    fn routing_agrees_with_caching_across_shards() {
        let servers: Vec<_> = (0..2)
            .map(|_| {
                serve(&ServeConfig {
                    workers: 1,
                    ..ServeConfig::default()
                })
                .expect("serve")
            })
            .collect();
        let membership = Arc::new(Membership::new(
            servers.iter().map(|s| s.addr().to_string()).collect(),
        ));
        let cluster = ClusterClient::new(Arc::clone(&membership), quick_policy());

        let kinds: Vec<RequestKind> = (0..6).map(cheap_cell).collect();
        let cold = cluster.batch(kinds.clone()).expect("cold batch");
        let warm = cluster.batch(kinds.clone()).expect("warm batch");
        assert_eq!(cold.len(), 6);
        for ((kind, cold), warm) in kinds.iter().zip(&cold).zip(&warm) {
            // The router stamp matches the ring, both passes.
            assert_eq!(cold.shard, Some(cluster.route(kind)));
            assert_eq!(warm.shard, cold.shard);
            // The second pass hits the shard's cache: same shard, same
            // payload, no recompute.
            assert!(!cold.cached);
            assert!(warm.cached, "warm pass must be a cache hit");
            assert_eq!(warm.result, cold.result);
        }
        assert_eq!(cluster.metrics().failovers, 0);
        for server in servers {
            server.shutdown();
        }
    }

    #[test]
    fn dead_shard_fails_over_to_a_replica() {
        let server = serve(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("serve");
        // Shard 1 is a dead address (reserved port, nothing listens).
        let membership = Arc::new(Membership::new(vec![
            server.addr().to_string(),
            "127.0.0.1:1".to_string(),
        ]));
        let cluster = ClusterClient::new(Arc::clone(&membership), quick_policy());

        // Enough distinct cells that both shards own some keys.
        let kinds: Vec<RequestKind> = (0..8).map(cheap_cell).collect();
        assert!(
            kinds.iter().any(|k| cluster.route(k) == 1),
            "test needs at least one key owned by the dead shard"
        );
        let responses = cluster.batch(kinds.clone()).expect("batch with failover");
        for (kind, resp) in kinds.iter().zip(&responses) {
            // Every answer came from the live shard, including the dead
            // shard's keys, and every answer is a real payload.
            assert_eq!(resp.shard, Some(0));
            assert!(
                matches!(resp.result, ResponseKind::Cell(_)),
                "expected a cell payload for {kind:?}, got {:?}",
                resp.result
            );
        }
        assert!(cluster.metrics().failovers > 0);

        // The cluster health view shows one reachable shard of two.
        let health = cluster.cluster_health();
        assert_eq!(health.shards.len(), 2);
        assert_eq!(health.reachable_shards, 1);
        assert!(health.shards[0].reachable);
        assert!(!health.shards[1].reachable);
        server.shutdown();
    }

    #[test]
    fn membership_update_heals_a_moved_shard() {
        let a = serve(&ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        })
        .expect("serve a");
        let membership = Arc::new(Membership::new(vec!["127.0.0.1:1".to_string()]));
        let cluster = ClusterClient::new(Arc::clone(&membership), quick_policy());
        // All shards dead: the transport error surfaces.
        assert!(cluster.request(cheap_cell(0)).is_err());
        // The shard re-announces (as a fleet supervisor would record).
        membership.set_addr(0, a.addr().to_string());
        let resp = cluster.request(cheap_cell(0)).expect("healed");
        assert!(matches!(resp.result, ResponseKind::Cell(_)));
        a.shutdown();
    }
}
