//! Cluster soaks: a router over a supervised fleet of real
//! `ktudc-serve` worker processes, SIGKILLed mid-sweep; a partitioned
//! shard failed over by the cluster client; a saturated fleet shedding
//! with typed errors only; and the supervisor's give-up budget spent
//! end-to-end on a child that can never boot.
//!
//! The invariant everywhere is **zero wrong answers**: whatever dies or
//! sheds, every payload a client actually receives is byte-identical to
//! the direct library computation, or a *typed* shed — never silently
//! wrong, never invented.

#![cfg(unix)]

use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc_serve::{
    launch_fleet, serve, serve_router, supervise, Client, ClientError, ClusterClient, ErrorCode,
    Membership, RequestKind, ResponseKind, RetryPolicy, RouterConfig, ServeConfig,
    SupervisorPolicy,
};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("ktudc-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn quick_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    }
}

/// A cheap, distinct harness cell; identical inputs are byte-identical
/// across processes, which is what every assertion below leans on.
fn cheap_cell(i: u64) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(1)
        .horizon(40 + i)
}

#[test]
fn worker_kill_soak_reroutes_and_generations_strictly_increase() {
    const SHARDS: usize = 3;
    const CYCLES: usize = 12;
    let tmp = TempDir::new("kill");
    let base = tmp.0.clone();
    // Restarts must stay rapid under repeated kills without spending the
    // give-up budget: short stability window, generous crash allowance.
    let fleet = launch_fleet(
        SHARDS,
        SupervisorPolicy {
            stable_after: Duration::from_millis(200),
            max_rapid_crashes: 100,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(200),
        },
        move |shard| {
            let dir = ktudc_store::shard_data_dir(&base, shard);
            std::fs::create_dir_all(&dir)?;
            Command::new(env!("CARGO_BIN_EXE_ktudc-serve"))
                .args([
                    "--addr",
                    "127.0.0.1:0",
                    "--workers",
                    "2",
                    "--snapshot-every",
                    "1",
                ])
                .arg("--data-dir")
                .arg(dir)
                .stdout(Stdio::piped())
                .stderr(Stdio::null())
                .spawn()
        },
    );
    assert!(
        fleet.wait_ready(Duration::from_secs(30)),
        "fleet did not announce all shards"
    );
    let router = serve_router(
        &RouterConfig {
            policy: quick_policy(),
            workers: 4,
            ..RouterConfig::default()
        },
        fleet.membership(),
    )
    .expect("router");
    let mut client = Client::connect(router.addr()).expect("connect to router");

    // The sweep and its ground truth, computed directly once.
    let sweep: Vec<CellSpec> = (0..6).map(cheap_cell).collect();
    let direct: Vec<ResponseKind> = sweep
        .iter()
        .map(|spec| ResponseKind::Cell(run_cell(spec)))
        .collect();

    let shard_gen = |client: &mut Client, shard: usize| -> (bool, u64) {
        let report = client.cluster_health().expect("cluster health");
        let row = &report.shards[shard];
        (row.reachable, row.generation)
    };

    let mut last_gen = [0u64; SHARDS];
    for cycle in 0..CYCLES {
        let victim = cycle % SHARDS;
        let (_, pre_gen) = shard_gen(&mut client, victim);
        assert!(
            pre_gen >= last_gen[victim],
            "cycle {cycle}: shard {victim} generation went backwards \
             ({pre_gen} after {})",
            last_gen[victim]
        );
        let pid = fleet.pid(victim).expect("victim announced a pid");

        // SIGKILL the victim a moment into the sweep, so some cycles
        // catch it mid-forward and the router must reroute live.
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        });
        let responses = client
            .batch(sweep.iter().map(|s| RequestKind::Cell(s.clone())).collect())
            .expect("routed sweep must survive a worker kill");
        killer.join().expect("killer thread");
        assert_eq!(responses.len(), sweep.len());
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(
                response.result, direct[i],
                "cycle {cycle}: routed payload {i} diverged from direct computation"
            );
            assert!(response.shard.is_some(), "router must stamp the shard");
        }

        // Recovery: the victim comes back with a strictly higher
        // generation (durable restart), within the supervisor's backoff.
        let deadline = Instant::now() + Duration::from_secs(20);
        let new_gen = loop {
            let (reachable, gen) = shard_gen(&mut client, victim);
            if reachable && gen > pre_gen {
                break gen;
            }
            assert!(
                Instant::now() < deadline,
                "cycle {cycle}: shard {victim} did not recover past \
                 generation {pre_gen}"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        last_gen[victim] = new_gen;
    }

    // The router itself never crashed and saw the churn it masked.
    assert!(client.health().is_ok(), "router must still answer");
    assert!(
        router.restarts_observed() > 0,
        "router must have observed worker restarts via generations"
    );
    router.shutdown();
    drop(router);
    for (shard, report) in fleet.stop_and_join().into_iter().enumerate() {
        let report = report.expect("supervision io");
        assert!(
            !report.gave_up,
            "shard {shard} supervisor spent its give-up budget during the soak"
        );
    }
}

#[test]
fn partitioned_shard_fails_over_with_zero_wrong_answers() {
    let live: Vec<_> = (0..2)
        .map(|_| {
            serve(&ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            })
            .expect("serve")
        })
        .collect();
    // Shard 1 is partitioned away: a port nothing listens on.
    let membership = Arc::new(Membership::new(vec![
        live[0].addr().to_string(),
        "127.0.0.1:1".to_string(),
        live[1].addr().to_string(),
    ]));
    let client = ClusterClient::new(Arc::clone(&membership), quick_policy());

    let cells: Vec<CellSpec> = (0..16).map(cheap_cell).collect();
    let mut owned_by_dead = 0usize;
    for spec in &cells {
        if client.route(&RequestKind::Cell(spec.clone())) == 1 {
            owned_by_dead += 1;
        }
    }
    assert!(
        owned_by_dead > 0,
        "some keys must belong to the partitioned shard"
    );

    // Two passes: cold, then warm (the failover targets cached the
    // rerouted keys, so the second pass exercises the same routing).
    for pass in 0..2 {
        let responses = client
            .batch(cells.iter().map(|s| RequestKind::Cell(s.clone())).collect())
            .expect("cluster batch");
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(
                response.result,
                ResponseKind::Cell(run_cell(&cells[i])),
                "pass {pass}: payload {i} diverged — a failover changed an answer"
            );
            assert_ne!(
                response.shard,
                Some(1),
                "pass {pass}: the partitioned shard cannot have answered"
            );
        }
    }
    let metrics = client.metrics();
    assert!(
        metrics.failovers as usize >= owned_by_dead,
        "every dead-owned key must have failed over (got {} failovers for \
         {owned_by_dead} dead-owned keys)",
        metrics.failovers
    );
    let report = client.cluster_health();
    assert_eq!(report.reachable_shards, 2);
    assert!(!report.shards[1].reachable);
    for handle in live {
        handle.shutdown();
    }
}

#[test]
fn saturated_cluster_sheds_typed_and_admitted_work_stays_correct() {
    // Tiny workers with AIMD admission armed: one thread, a two-slot
    // queue, and a 5 ms p99 target the workload deliberately exceeds.
    let servers: Vec<_> = (0..3)
        .map(|_| {
            serve(&ServeConfig {
                workers: 1,
                queue_capacity: 2,
                target_p99_ms: 5,
                ..ServeConfig::default()
            })
            .expect("serve")
        })
        .collect();
    let membership = Arc::new(Membership::new(
        servers.iter().map(|s| s.addr().to_string()).collect(),
    ));
    // Breaker opted out: this test *wants* to keep hammering through
    // persistent sheds to observe them typed, not fail fast.
    let client = Arc::new(ClusterClient::new(
        membership,
        RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
            circuit_threshold: 0,
            ..RetryPolicy::default()
        },
    ));

    let specs: Vec<CellSpec> = (0..48)
        .map(|i| {
            CellSpec::new(4, 1, None, FdChoice::None, ProtocolChoice::Reliable)
                .trials(2)
                .horizon(300 + i)
        })
        .collect();
    let mut correct = 0usize;
    let mut shed = 0usize;
    let mut exhausted = 0usize;
    let mut admitted_latencies: Vec<Duration> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .chunks(12)
            .map(|chunk| {
                let client = Arc::clone(&client);
                scope.spawn(move || {
                    let mut outcomes = Vec::new();
                    for spec in chunk {
                        let started = Instant::now();
                        let result = client.request(RequestKind::Cell(spec.clone()));
                        outcomes.push((spec.clone(), result, started.elapsed()));
                    }
                    outcomes
                })
            })
            .collect();
        for handle in handles {
            for (spec, result, elapsed) in handle.join().expect("load thread") {
                match result {
                    Ok(response) => match &response.result {
                        ResponseKind::Cell(outcome) => {
                            assert_eq!(
                                *outcome,
                                run_cell(&spec),
                                "admitted answer diverged under saturation"
                            );
                            correct += 1;
                            admitted_latencies.push(elapsed);
                        }
                        ResponseKind::Error(e)
                            if matches!(
                                e.code,
                                ErrorCode::Overloaded | ErrorCode::DeadlineExceeded
                            ) =>
                        {
                            shed += 1;
                        }
                        other => panic!("untyped result under saturation: {other:?}"),
                    },
                    // The retry budget running out against a persistently
                    // shedding fleet is a typed client-side outcome, not
                    // a wrong answer.
                    Err(ClientError::RetriesExhausted { .. }) => exhausted += 1,
                    Err(e) => panic!("non-retry failure under saturation: {e}"),
                }
            }
        }
    });
    assert_eq!(correct + shed + exhausted, specs.len());
    assert!(correct > 0, "saturation must not starve everything");
    // Admission control keeps the *admitted* tail bounded: what got in,
    // finished; the excess was shed instead of queued indefinitely.
    admitted_latencies.sort_unstable();
    let p99 = admitted_latencies[(admitted_latencies.len() * 99)
        .div_euclid(100)
        .min(admitted_latencies.len() - 1)];
    assert!(
        p99 < Duration::from_secs(10),
        "admitted p99 {p99:?} is unbounded under saturation"
    );
    for handle in servers {
        handle.shutdown();
    }
}

#[test]
fn supervisor_gives_up_loudly_on_a_worker_that_can_never_boot() {
    use std::sync::atomic::AtomicBool;

    // A real worker binary with a flag it rejects: exits 2 immediately,
    // forever. The supervisor must spend its budget and give up with
    // the exit status propagated — not spin silently.
    let stop = AtomicBool::new(false);
    let report = supervise(
        || {
            Command::new(env!("CARGO_BIN_EXE_ktudc-serve"))
                .arg("--definitely-not-a-flag")
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
        },
        SupervisorPolicy {
            stable_after: Duration::from_secs(60),
            max_rapid_crashes: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        },
        &stop,
    )
    .expect("supervision io");
    assert!(report.gave_up, "a crash loop must spend the give-up budget");
    assert_eq!(
        report.restarts, 2,
        "restarted exactly max_rapid_crashes times"
    );
    assert_eq!(
        report.last_status.expect("a child exited").code(),
        Some(2),
        "the usage-error exit status must be propagated"
    );
}
