//! Exit-code contract of `ctl`'s cluster flags: `0` success, `1`
//! transport, `2` usage, `3` retries exhausted. Usage errors must be
//! decided *before any I/O* — every invalid invocation below also names
//! only unreachable addresses, so an implementation that probed first
//! would misreport exit `1` where the contract demands `2`.

use std::process::Command;

/// Runs `ctl` with `args` and returns its exit code.
fn ctl(args: &[&str]) -> i32 {
    Command::new(env!("CARGO_BIN_EXE_ctl"))
        .args(args)
        .output()
        .expect("run ctl")
        .status
        .code()
        .expect("ctl exited without a code")
}

#[test]
fn cluster_usage_errors_exit_two_before_any_io() {
    // --cluster and --addr are mutually exclusive. Both addresses are
    // dead; the usage check must win over the transport failure.
    assert_eq!(
        ctl(&["--addr", "127.0.0.1:1", "--cluster", "127.0.0.1:1", "sweep"]),
        2
    );
    // Malformed member lists: no port, empty list, port overflow,
    // one bad member among good ones.
    assert_eq!(ctl(&["--cluster", "no-port", "health"]), 2);
    assert_eq!(ctl(&["--cluster", ",", "health"]), 2);
    assert_eq!(ctl(&["--cluster", "127.0.0.1:99999", "health"]), 2);
    assert_eq!(ctl(&["--cluster", "127.0.0.1:1,bad", "health"]), 2);
    // --cluster value missing entirely.
    assert_eq!(ctl(&["--cluster"]), 2);
    // Commands outside the cluster set: shutdown (deliberately
    // single-server) and resume (local).
    assert_eq!(ctl(&["--cluster", "127.0.0.1:1", "shutdown"]), 2);
    assert_eq!(ctl(&["--cluster", "127.0.0.1:1", "resume"]), 2);
    // Flags that belong to other commands still reject under --cluster.
    assert_eq!(ctl(&["--cluster", "127.0.0.1:1", "stats", "--twice"]), 2);
}

#[test]
fn unreachable_cluster_is_a_transport_failure_not_usage() {
    // A syntactically valid member list whose members are all dead must
    // exit 1 (transport), proving the usage check really is syntactic
    // and the reachability probe comes after it.
    assert_eq!(ctl(&["--cluster", "127.0.0.1:1,127.0.0.1:2", "health"]), 1);
    assert_eq!(ctl(&["--cluster", "127.0.0.1:1", "sweep", "--smoke"]), 1);
}

#[test]
fn single_server_contract_is_unchanged() {
    // The pre-cluster contract still holds: unknown command is usage,
    // dead --addr is transport.
    assert_eq!(ctl(&["frobnicate"]), 2);
    assert_eq!(ctl(&["--addr", "127.0.0.1:1", "stats"]), 1);
}
