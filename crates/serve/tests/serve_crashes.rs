//! Kill -9 soak of the durable `ktudc-serve` daemon and the `ctl
//! resume` checkpoint path. Real child processes are SIGKILLed at
//! arbitrary points — including mid-snapshot and mid-replay — and the
//! assertions are the recovery contract: every boot loads only
//! checksum-valid snapshots (corruption is skipped and counted, never
//! served), every answered request matches the direct library
//! computation, the generation strictly increases across restarts, and
//! the recovered cache answers warm where a cold start could not.

#![cfg(unix)]

use ktudc_core::harness::{run_cell, CellSpec, FdChoice, ProtocolChoice};
use ktudc_serve::{Client, RequestKind, ResponseKind};
use ktudc_sim::{run_explore_spec, ExploreSpec};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("ktudc-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create temp dir");
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns a durable daemon on an ephemeral port and parses the bound
/// address from its stdout.
fn spawn_durable_server(data_dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ktudc-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--snapshot-every",
            "1",
            "--data-dir",
        ])
        .arg(data_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ktudc-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.trim().parse::<SocketAddr>().expect("parse addr");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn sigkill(child: &mut Child) {
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
}

/// The recurring request every cycle re-asks: once computed in cycle 0
/// it must be answered from the recovered cache forever after.
fn recurring() -> RequestKind {
    RequestKind::Explore(ExploreSpec::new(2, 2))
}

/// A per-cycle cell request, distinct for each cycle.
fn cycle_cell(cycle: usize) -> CellSpec {
    CellSpec::new(3, 1, None, FdChoice::None, ProtocolChoice::Reliable)
        .trials(1)
        .horizon(60 + cycle as u64)
}

#[test]
fn kill_nine_soak_recovers_warm_and_never_answers_wrong() {
    const CYCLES: usize = 21;
    let tmp = TempDir::new("soak");
    let recurring_payload =
        ResponseKind::Explore(run_explore_spec(&ExploreSpec::new(2, 2)).expect("valid spec"));

    let mut last_generation = 0u64;
    let mut warm_hits_after_recovery = 0u64;
    for cycle in 0..CYCLES {
        let (mut child, addr) = spawn_durable_server(&tmp.0);
        let mut client = Client::connect(addr).expect("connect");

        // Recovery invariants: strictly increasing generation, and no
        // corrupt snapshot was ever loaded (skipped ones are counted).
        let health = client.health().expect("health");
        assert!(health.durable);
        assert!(
            health.generation > last_generation,
            "cycle {cycle}: generation {} after {last_generation}",
            health.generation
        );
        assert_eq!(
            health.corrupt_snapshots_skipped, 0,
            "cycle {cycle}: SIGKILL must never produce a corrupt snapshot \
             (atomic rename): {health:?}"
        );
        last_generation = health.generation;

        // The recurring request: computed exactly once (cycle 0), then
        // answered warm from the recovered snapshot on every restart.
        let response = client.request(recurring()).expect("recurring request");
        assert_eq!(response.result, recurring_payload, "cycle {cycle}");
        assert_eq!(response.generation, health.generation);
        if cycle == 0 {
            assert!(!response.cached, "nothing to recover on first boot");
        } else {
            assert!(
                response.cached,
                "cycle {cycle}: recovered cache must answer the recurring \
                 request warm"
            );
            warm_hits_after_recovery += 1;
        }

        // A fresh computation each cycle, correctness-checked against
        // the direct library call. With --snapshot-every 1 this also
        // schedules a snapshot we may SIGKILL in the middle of.
        let spec = cycle_cell(cycle);
        let response = client
            .request(RequestKind::Cell(spec.clone()))
            .expect("cell request");
        assert_eq!(
            response.result,
            ResponseKind::Cell(run_cell(&spec)),
            "cycle {cycle}: served payload diverged from direct computation"
        );

        if cycle == 0 {
            // Give the first snapshot time to land so every later boot
            // provably has something to recover.
            let _ = client.health();
            std::thread::sleep(Duration::from_millis(100));
        }
        // No shutdown, no drain: SIGKILL, possibly mid-snapshot.
        sigkill(&mut child);
    }

    // Cache hit-rate after recovery beats a cold start: a cold start
    // has zero hits, every recovered boot answered warm.
    assert_eq!(
        warm_hits_after_recovery,
        (CYCLES - 1) as u64,
        "every post-recovery cycle must hit the recovered cache"
    );
}

#[test]
fn ctl_resume_survives_sigkill_and_matches_uninterrupted_digest() {
    use ktudc_store::SyncPolicy;

    let tmp = TempDir::new("resume");
    let path = tmp.0.join("explore.ckpt");
    let spec = ExploreSpec::new(2, 3);
    let baseline = run_explore_spec(&spec).expect("valid spec");

    // Build a complete checkpoint journal, then tear its tail off so a
    // resume has real work left to do.
    let (result, _) = ktudc_sim::explore_spec_checkpointed(&spec, &path, SyncPolicy::Always)
        .expect("checkpointed exploration");
    assert_eq!(ktudc_sim::system_digest(&result.system), baseline.digest);
    let torn = std::fs::metadata(&path).expect("stat journal").len() - 37;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open journal");
    file.set_len(torn).expect("tear journal tail");
    drop(file);

    // First resume attempt: SIGKILL at an arbitrary point. Whether it
    // lands mid-replay, mid-compute, or after completion, the journal
    // must stay resumable.
    let mut child = Command::new(env!("CARGO_BIN_EXE_ctl"))
        .arg("resume")
        .arg(&path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ctl resume");
    std::thread::sleep(Duration::from_millis(10));
    let _ = child.kill();
    let _ = child.wait();

    // Second resume attempt runs to completion and must reproduce the
    // uninterrupted digest bit-identically.
    let expected = format!("digest = {:#018x}", baseline.digest);
    for round in 0..2 {
        let output = Command::new(env!("CARGO_BIN_EXE_ctl"))
            .arg("resume")
            .arg(&path)
            .output()
            .expect("run ctl resume");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "round {round}: ctl resume failed: {stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            stdout.contains(&expected),
            "round {round}: digest diverged from uninterrupted run:\n{stdout}"
        );
    }
}

/// The same SIGKILL-mid-resume contract, but with the journal written
/// under group-commit batching ([`SyncPolicy::EveryN`]): multiple frames
/// share each fsync, so a kill can land with a whole batch's durability
/// in flight. Torn or unsynced tails must be truncated at recovery, and
/// the re-explored remainder must still land on the uninterrupted
/// digest.
#[test]
fn ctl_resume_survives_sigkill_with_group_commit_batching() {
    use ktudc_store::SyncPolicy;

    let tmp = TempDir::new("resume-batched");
    let path = tmp.0.join("explore-batched.ckpt");
    // A slightly wider spec than the Always-policy test: more subtrees,
    // so EveryN(4) actually spans several batches.
    let spec = ExploreSpec::new(2, 4);
    let baseline = run_explore_spec(&spec).expect("valid spec");

    let (result, _) = ktudc_sim::explore_spec_checkpointed(&spec, &path, SyncPolicy::EveryN(4))
        .expect("checkpointed exploration");
    assert_eq!(ktudc_sim::system_digest(&result.system), baseline.digest);
    let torn = std::fs::metadata(&path).expect("stat journal").len() - 23;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("open journal");
    file.set_len(torn).expect("tear journal tail");
    drop(file);

    let mut child = Command::new(env!("CARGO_BIN_EXE_ctl"))
        .arg("resume")
        .arg(&path)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ctl resume");
    std::thread::sleep(Duration::from_millis(10));
    let _ = child.kill();
    let _ = child.wait();

    let expected = format!("digest = {:#018x}", baseline.digest);
    for round in 0..2 {
        let output = Command::new(env!("CARGO_BIN_EXE_ctl"))
            .arg("resume")
            .arg(&path)
            .output()
            .expect("run ctl resume");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            output.status.success(),
            "round {round}: ctl resume failed: {stdout}\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            stdout.contains(&expected),
            "round {round}: digest diverged from uninterrupted run:\n{stdout}"
        );
    }
}
