//! Std-only durability primitives for the ktudc workspace.
//!
//! Everything in this repo that takes real time — Table-1 cell sweeps,
//! exhaustive explorations, chaos campaigns, the serve daemon's scenario
//! cache — is a deterministic function of its inputs, which makes all of
//! it *resumable*: work lost to a crash can be recomputed, and work saved
//! before a crash can be trusted **iff** the storage layer can tell intact
//! bytes from torn or corrupted ones. This crate is that layer, built only
//! on `std`:
//!
//! * [`journal`] — an append-only log of length+checksum framed entries.
//!   Replay stops at the first frame that fails validation and truncates
//!   the file there (a torn final write is the expected crash artifact,
//!   not an error), so `recovered entries ≤ written entries` and every
//!   recovered entry is bit-identical to what was appended. A configurable
//!   [`journal::SyncPolicy`] sets the fsync discipline.
//! * [`snapshot`] — whole-state snapshots written to a temporary file,
//!   fsynced, then atomically renamed into place under a monotone
//!   **generation counter**. A crash mid-write leaves the previous
//!   generation untouched; a corrupted snapshot is detected by checksum
//!   and skipped in favor of the newest valid one, and is **never**
//!   loaded.
//!
//! The checksum everywhere is 64-bit FNV-1a over the payload bytes
//! ([`fnv64`]), pinned by test — the same construction (though not the
//! same stream) as `ktudc-model`'s `StableHasher`, reimplemented here so
//! the storage crate stays dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod snapshot;

pub use journal::{Journal, Recovered, SyncPolicy};
pub use snapshot::{Snapshot, SnapshotStore};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice: the checksum of every frame and
/// snapshot this crate writes. Platform- and version-independent.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The data directory for one shard of a sharded cluster: a
/// `shard-<N>` subdirectory of `base`. Each worker gets its own snapshot
/// store so a fleet sharing one `--data-dir` never has two processes
/// racing on the same generation counter; the consistent-hash routing
/// partitions the key space, so the per-shard snapshots partition it
/// too. Pure path arithmetic — nothing is created.
#[must_use]
pub fn shard_data_dir(base: &std::path::Path, shard: usize) -> std::path::PathBuf {
    base.join(format!("shard-{shard}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_data_dirs_are_disjoint_and_stable() {
        let base = std::path::Path::new("/var/lib/ktudc");
        assert_eq!(
            shard_data_dir(base, 0),
            std::path::PathBuf::from("/var/lib/ktudc/shard-0")
        );
        assert_ne!(shard_data_dir(base, 1), shard_data_dir(base, 2));
    }

    #[test]
    fn checksum_is_pinned() {
        // Stability pin: a persisted journal or snapshot must validate
        // under every future build. If this fails, the checksum changed
        // and every file on disk is silently unreadable — fix the
        // regression, don't repin.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"ktudc"), 0x4bd3_816f_e94f_3468);
    }

    #[test]
    fn checksum_distinguishes_near_misses() {
        assert_ne!(fnv64(b"entry-1"), fnv64(b"entry-2"));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
