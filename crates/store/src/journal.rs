//! The append-only journal: length+checksum framed entries.
//!
//! # On-disk format
//!
//! A journal file is an 8-byte magic (`b"KTUDCJL1"`) followed by zero or
//! more frames. Each frame is
//!
//! ```text
//! [len: u32 LE] [checksum: u64 LE] [payload: len bytes]
//! ```
//!
//! where `checksum = fnv64(payload)`. Frames carry opaque bytes; callers
//! bring their own encoding.
//!
//! # Recovery semantics
//!
//! [`Journal::recover`] reads frames front to back and stops at the first
//! one that fails validation — a short header, a length running past the
//! end of the file, or a checksum mismatch. Everything before that point
//! is returned as [`Recovered::entries`]; everything from it onward is
//! **truncated off the file**, because a torn final frame is the expected
//! artifact of a crash mid-append (the kernel got some of the bytes to
//! disk, not all) and keeping it would poison the next append. The
//! invariants callers rely on:
//!
//! * recovery never panics, whatever the file contains;
//! * `recovered entries ≤ appended entries`;
//! * every recovered entry is bit-identical to the entry appended at its
//!   position (a corrupted entry is *dropped with its suffix*, never
//!   surfaced mangled — the checksum catches it).
//!
//! A frame that validates by checksum but was never fully appended cannot
//! exist: the checksum covers the whole payload, and FNV-1a of a prefix
//! does not match the full-payload checksum (up to the 2⁻⁶⁴ collision
//! bound carried by every 64-bit checksum).
//!
//! # Fsync discipline
//!
//! [`SyncPolicy`] sets how often appends are flushed to the device:
//! `Always` fsyncs every append (maximum durability, one syscall per
//! entry), `EveryN(n)` amortizes the fsync over `n` appends (a crash can
//! lose at most the last `n` entries — fine when entries are recomputable
//! checkpoints), `Never` leaves flushing to the OS. All policies
//! `write_all` the frame in one call and fsync on [`Journal::sync`] and
//! drop.

use crate::fnv64;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic: identifies a ktudc journal, version 1.
pub const MAGIC: &[u8; 8] = b"KTUDCJL1";

/// Bytes of frame overhead ahead of each payload (u32 length + u64 checksum).
pub const FRAME_HEADER: usize = 4 + 8;

/// Hard cap on a single entry, so a corrupted length field cannot make
/// recovery attempt a multi-gigabyte allocation.
pub const MAX_ENTRY: usize = 256 << 20;

/// How often appends reach the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append.
    Always,
    /// fsync after every `n`-th append (and on [`Journal::sync`]/drop).
    EveryN(u32),
    /// Never fsync implicitly; the OS flushes when it pleases.
    Never,
}

/// What [`Journal::recover`] found in an existing file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recovered {
    /// Every entry that validated, in append order, bit-identical to what
    /// was written.
    pub entries: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail that were truncated off the file
    /// (0 for a cleanly closed journal).
    pub truncated_bytes: u64,
    /// Whether the file existed before recovery.
    pub existed: bool,
}

/// An open journal, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    policy: SyncPolicy,
    appends_since_sync: u32,
    entries: u64,
}

impl Journal {
    /// Creates a fresh journal at `path`, failing if the file exists.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures.
    pub fn create(path: &Path, policy: SyncPolicy) -> io::Result<Journal> {
        let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
        file.write_all(MAGIC)?;
        file.sync_all()?;
        Ok(Journal {
            file,
            policy,
            appends_since_sync: 0,
            entries: 0,
        })
    }

    /// Opens (or creates) the journal at `path`, replaying and repairing
    /// it: valid entries are returned, a torn or corrupt tail is truncated
    /// off, and the returned journal is positioned to append after the
    /// last valid frame.
    ///
    /// A file whose *magic* doesn't validate is rejected rather than
    /// silently truncated to empty — overwriting a file that was never a
    /// journal is more likely clobbering the wrong path than crash repair.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; rejects non-journal files with
    /// [`io::ErrorKind::InvalidData`].
    pub fn recover(path: &Path, policy: SyncPolicy) -> io::Result<(Journal, Recovered)> {
        if !path.exists() {
            return Ok((Journal::create(path, policy)?, Recovered::default()));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a ktudc journal (bad magic)", path.display()),
            ));
        }
        let (entries, valid_len) = scan_frames(&bytes);
        let truncated = bytes.len() as u64 - valid_len;
        if truncated > 0 {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let count = entries.len() as u64;
        Ok((
            Journal {
                file,
                policy,
                appends_since_sync: 0,
                entries: count,
            },
            Recovered {
                entries,
                truncated_bytes: truncated,
                existed: true,
            },
        ))
    }

    /// Appends one entry, framed and checksummed, honoring the sync
    /// policy.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; rejects entries over [`MAX_ENTRY`].
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_ENTRY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("journal entry of {} bytes exceeds MAX_ENTRY", payload.len()),
            ));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.entries += 1;
        self.appends_since_sync += 1;
        let due = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            SyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends a batch of entries as **one** `write_all` and at most one
    /// fsync — group commit. Each entry is framed and checksummed exactly
    /// as by [`Journal::append`], so recovery cannot tell a batch from the
    /// same entries appended singly; the difference is purely the syscall
    /// count (`SyncPolicy::Always` pays one fsync per *batch* instead of
    /// one per entry).
    ///
    /// Durability granularity stays per-frame: a crash mid-batch leaves a
    /// valid frame *prefix* on disk (some entries recovered, the rest
    /// truncated by [`Journal::recover`]), never a mangled entry.
    ///
    /// # Errors
    ///
    /// Propagates write/fsync failures; rejects any entry over
    /// [`MAX_ENTRY`] *before* writing a single byte, so a failed batch
    /// leaves the journal untouched.
    pub fn append_batch<B: AsRef<[u8]>>(&mut self, payloads: &[B]) -> io::Result<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let mut total = 0usize;
        for p in payloads {
            let len = p.as_ref().len();
            if len > MAX_ENTRY {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("journal entry of {len} bytes exceeds MAX_ENTRY"),
                ));
            }
            total += FRAME_HEADER + len;
        }
        let mut frames = Vec::with_capacity(total);
        for p in payloads {
            let payload = p.as_ref();
            frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frames.extend_from_slice(&fnv64(payload).to_le_bytes());
            frames.extend_from_slice(payload);
        }
        self.file.write_all(&frames)?;
        self.entries += payloads.len() as u64;
        self.appends_since_sync = self
            .appends_since_sync
            .saturating_add(payloads.len() as u32);
        let due = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            SyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(())
    }

    /// Flushes everything appended so far to the device.
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Entries this handle has appended plus entries recovered at open.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Best-effort durability for `EveryN`/`Never` tails on a clean exit.
        let _ = self.file.sync_all();
    }
}

/// Walks frames after the magic; returns the valid entries and the byte
/// offset of the first invalid (or absent) frame.
fn scan_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, u64) {
    let mut entries = Vec::new();
    let mut at = MAGIC.len();
    while let Some(header) = bytes.get(at..at + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_ENTRY {
            break;
        }
        let checksum = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        let Some(payload) = bytes.get(at + FRAME_HEADER..at + FRAME_HEADER + len) else {
            break;
        };
        if fnv64(payload) != checksum {
            break;
        }
        entries.push(payload.to_vec());
        at += FRAME_HEADER + len;
    }
    (entries, at as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A unique temp path that cleans up on drop.
    struct TempPath(PathBuf);

    impl TempPath {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("ktudc-journal-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_file(&p);
            TempPath(p)
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn append_then_recover_round_trips() {
        let tmp = TempPath::new("roundtrip");
        let written: Vec<Vec<u8>> = vec![
            b"one".to_vec(),
            vec![0u8; 1000],
            Vec::new(),
            b"\xff\x00".to_vec(),
        ];
        {
            let mut j = Journal::create(&tmp.0, SyncPolicy::Always).unwrap();
            for e in &written {
                j.append(e).unwrap();
            }
            assert_eq!(j.entries(), written.len() as u64);
        }
        let (j, rec) = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap();
        assert_eq!(rec.entries, written);
        assert_eq!(rec.truncated_bytes, 0);
        assert!(rec.existed);
        assert_eq!(j.entries(), written.len() as u64);
    }

    #[test]
    fn recover_creates_missing_file() {
        let tmp = TempPath::new("fresh");
        let (j, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).unwrap();
        assert!(!rec.existed);
        assert!(rec.entries.is_empty());
        assert_eq!(j.entries(), 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let tmp = TempPath::new("torn");
        {
            let mut j = Journal::create(&tmp.0, SyncPolicy::Always).unwrap();
            j.append(b"kept").unwrap();
            j.append(b"torn-away").unwrap();
        }
        // Tear the final frame: chop 3 bytes off the end.
        let full = std::fs::read(&tmp.0).unwrap();
        std::fs::write(&tmp.0, &full[..full.len() - 3]).unwrap();

        let (mut j, rec) = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap();
        assert_eq!(rec.entries, vec![b"kept".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        // The repaired journal accepts appends and replays cleanly.
        j.append(b"after-repair").unwrap();
        drop(j);
        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap();
        assert_eq!(
            rec.entries,
            vec![b"kept".to_vec(), b"after-repair".to_vec()]
        );
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_payload_is_dropped_not_surfaced() {
        let tmp = TempPath::new("corrupt");
        {
            let mut j = Journal::create(&tmp.0, SyncPolicy::Always).unwrap();
            j.append(b"good").unwrap();
            j.append(b"flipped").unwrap();
        }
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        // Flip one bit inside the *second* payload.
        let at = bytes.len() - 1;
        bytes[at] ^= 0x40;
        std::fs::write(&tmp.0, &bytes).unwrap();

        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap();
        assert_eq!(rec.entries, vec![b"good".to_vec()]);
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocating() {
        let tmp = TempPath::new("oversized");
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&tmp.0, &bytes).unwrap();
        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap();
        assert!(rec.entries.is_empty());
        assert_eq!(rec.truncated_bytes, FRAME_HEADER as u64);
    }

    #[test]
    fn non_journal_file_is_rejected_not_clobbered() {
        let tmp = TempPath::new("notajournal");
        std::fs::write(&tmp.0, b"precious user data, definitely not a journal").unwrap();
        let err = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The file is untouched.
        assert_eq!(
            std::fs::read(&tmp.0).unwrap(),
            b"precious user data, definitely not a journal"
        );
    }

    #[test]
    fn create_refuses_existing_file() {
        let tmp = TempPath::new("exists");
        std::fs::write(&tmp.0, b"x").unwrap();
        assert!(Journal::create(&tmp.0, SyncPolicy::Always).is_err());
    }

    #[test]
    fn append_batch_is_byte_identical_to_single_appends() {
        let entries: Vec<&[u8]> = vec![b"one", &[0u8; 300], b"", b"\xff\x00tail"];
        let single = TempPath::new("batch-single");
        {
            let mut j = Journal::create(&single.0, SyncPolicy::Always).unwrap();
            for e in &entries {
                j.append(e).unwrap();
            }
        }
        let batched = TempPath::new("batch-grouped");
        {
            let mut j = Journal::create(&batched.0, SyncPolicy::Always).unwrap();
            j.append_batch(&entries).unwrap();
            assert_eq!(j.entries(), entries.len() as u64);
        }
        assert_eq!(
            std::fs::read(&single.0).unwrap(),
            std::fs::read(&batched.0).unwrap()
        );
        let (_, rec) = Journal::recover(&batched.0, SyncPolicy::Never).unwrap();
        assert_eq!(rec.entries.len(), entries.len());
        assert_eq!(rec.entries[1], vec![0u8; 300]);
    }

    #[test]
    fn torn_mid_batch_recovers_the_frame_prefix() {
        let tmp = TempPath::new("batch-torn");
        {
            let mut j = Journal::create(&tmp.0, SyncPolicy::Always).unwrap();
            j.append_batch(&[b"alpha".as_slice(), b"beta", b"gamma"])
                .unwrap();
        }
        // Tear into the middle of the batch's last frame: the first two
        // entries must survive, the third is truncated off.
        let full = std::fs::read(&tmp.0).unwrap();
        std::fs::write(&tmp.0, &full[..full.len() - 3]).unwrap();
        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Always).unwrap();
        assert_eq!(rec.entries, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn oversized_batch_entry_leaves_the_journal_untouched() {
        let tmp = TempPath::new("batch-oversized");
        let mut j = Journal::create(&tmp.0, SyncPolicy::Always).unwrap();
        j.append(b"kept").unwrap();
        let big = vec![0u8; MAX_ENTRY + 1];
        let err = j.append_batch(&[b"small".to_vec(), big]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(j.entries(), 1);
        drop(j);
        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(rec.entries, vec![b"kept".to_vec()]);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let tmp = TempPath::new("batch-empty");
        let mut j = Journal::create(&tmp.0, SyncPolicy::Always).unwrap();
        j.append_batch::<&[u8]>(&[]).unwrap();
        assert_eq!(j.entries(), 0);
    }

    #[test]
    fn every_n_policy_counts_appends() {
        let tmp = TempPath::new("everyn");
        let mut j = Journal::create(&tmp.0, SyncPolicy::EveryN(3)).unwrap();
        for i in 0..7u8 {
            j.append(&[i]).unwrap();
        }
        // No crash here to observe the window; this just exercises the
        // policy arithmetic and the explicit sync path.
        j.sync().unwrap();
        drop(j);
        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).unwrap();
        assert_eq!(rec.entries.len(), 7);
    }
}
