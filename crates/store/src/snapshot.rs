//! Atomic-rename snapshots with generation counters.
//!
//! A snapshot is the whole of some state, written in one shot — the
//! complement of the [journal](crate::journal)'s incremental entries.
//! The two compose as usual: snapshot at convenient points, journal the
//! deltas since, replay both on recovery.
//!
//! # On-disk format
//!
//! Each snapshot lives in its own file `<prefix>.<generation>.snap`
//! inside the store's directory:
//!
//! ```text
//! [magic: b"KTUDCSN1"] [generation: u64 LE] [checksum: u64 LE] [payload]
//! ```
//!
//! where `checksum = fnv64(payload)`.
//!
//! # Atomicity and the generation protocol
//!
//! [`SnapshotStore::save`] writes the bytes to a temporary file in the
//! same directory, fsyncs it, atomically renames it to its final name,
//! then fsyncs the directory so the rename itself is durable. A crash at
//! any point leaves either the complete new snapshot or the previous
//! state — never a half-written file under a final name.
//!
//! Generations are monotone: each `save` uses `latest valid generation
//! on disk at open + saves so far + 1`. Because a crashed writer may
//! have left a *valid* snapshot it never got to acknowledge, a new store
//! always takes its baseline from disk, so generations never repeat even
//! across kill -9. The serve daemon leans on this: a client that sees
//! the generation rise across a reconnect knows the server restarted and
//! must not trust any in-flight state from before.
//!
//! # Corruption policy
//!
//! [`SnapshotStore::load_latest`] walks snapshots newest-first and
//! returns the first one whose checksum validates. Corrupt or torn
//! candidates are counted ([`Snapshot::skipped_corrupt`],
//! [`SnapshotStore::corrupt_seen`]) and **never loaded** — the kill -9
//! harness asserts that counter stays honest. Older valid generations
//! are pruned on save (keeping a small tail) so the directory doesn't
//! grow without bound.

use crate::fnv64;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a ktudc snapshot, version 1.
pub const MAGIC: &[u8; 8] = b"KTUDCSN1";

/// Bytes ahead of the payload (magic + generation + checksum).
pub const HEADER: usize = 8 + 8 + 8;

/// Valid generations kept on disk after a save (the newest plus this
/// many predecessors as fallbacks).
const KEEP_PREVIOUS: usize = 2;

/// A snapshot loaded from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The generation counter stamped at save time.
    pub generation: u64,
    /// The payload, bit-identical to what was saved.
    pub payload: Vec<u8>,
    /// Newer candidates that failed validation and were skipped to reach
    /// this one.
    pub skipped_corrupt: u64,
}

/// A directory of generation-counted snapshots under one name prefix.
pub struct SnapshotStore {
    dir: PathBuf,
    prefix: String,
    next_generation: u64,
    corrupt_seen: u64,
}

impl SnapshotStore {
    /// Opens (creating the directory if needed) the store for snapshots
    /// named `<prefix>.<generation>.snap` under `dir`. The next
    /// generation resumes above the newest *valid* snapshot on disk.
    ///
    /// # Errors
    ///
    /// Propagates directory creation and scan failures.
    pub fn open(dir: &Path, prefix: &str) -> io::Result<SnapshotStore> {
        fs::create_dir_all(dir)?;
        let mut store = SnapshotStore {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            next_generation: 1,
            corrupt_seen: 0,
        };
        if let Some(snap) = store.load_latest()? {
            store.next_generation = snap.generation + 1;
        }
        Ok(store)
    }

    /// The generation the next [`save`](Self::save) will stamp.
    #[must_use]
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    /// Corrupt or torn snapshot files this handle has skipped so far.
    #[must_use]
    pub fn corrupt_seen(&self) -> u64 {
        self.corrupt_seen
    }

    /// Saves `payload` as the next generation: temp file, fsync, atomic
    /// rename, directory fsync. Prunes old valid generations beyond a
    /// small fallback tail. Returns the generation written.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; on error no final-name file is produced.
    pub fn save(&mut self, payload: &[u8]) -> io::Result<u64> {
        let generation = self.next_generation;
        let mut bytes = Vec::with_capacity(HEADER + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&generation.to_le_bytes());
        bytes.extend_from_slice(&fnv64(payload).to_le_bytes());
        bytes.extend_from_slice(payload);

        let tmp = self.dir.join(format!(".{}.{generation}.tmp", self.prefix));
        let finalp = self.path_for(generation);
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &finalp)?;
        // Make the rename durable: fsync the containing directory.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.next_generation = generation + 1;
        self.prune(generation);
        Ok(generation)
    }

    /// Loads the newest valid snapshot, skipping (and counting) corrupt
    /// candidates. Returns `None` when no valid snapshot exists.
    ///
    /// # Errors
    ///
    /// Propagates directory scan failures; unreadable *candidate files*
    /// count as corrupt rather than failing the load.
    pub fn load_latest(&mut self) -> io::Result<Option<Snapshot>> {
        let mut generations = self.generations_on_disk()?;
        generations.sort_unstable_by(|a, b| b.cmp(a));
        let mut skipped = 0u64;
        for generation in generations {
            match self.read_validated(generation) {
                Some(payload) => {
                    self.corrupt_seen += skipped;
                    return Ok(Some(Snapshot {
                        generation,
                        payload,
                        skipped_corrupt: skipped,
                    }));
                }
                None => skipped += 1,
            }
        }
        // Every candidate (if any) was corrupt: nothing to load, but the
        // corruption is still recorded in `corrupt_seen`.
        self.corrupt_seen += skipped;
        Ok(None)
    }

    /// Reads and validates one generation's file; `None` on any defect.
    fn read_validated(&self, generation: u64) -> Option<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(self.path_for(generation))
            .ok()?
            .read_to_end(&mut bytes)
            .ok()?;
        if bytes.len() < HEADER || &bytes[..8] != MAGIC {
            return None;
        }
        let stamped = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        if stamped != generation {
            return None;
        }
        let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER..];
        if fnv64(payload) != checksum {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Deletes generations older than `newest` beyond the fallback tail.
    fn prune(&self, newest: u64) {
        let Ok(mut generations) = self.generations_on_disk() else {
            return;
        };
        generations.sort_unstable_by(|a, b| b.cmp(a));
        for &generation in generations.iter().skip(KEEP_PREVIOUS + 1) {
            if generation < newest {
                let _ = fs::remove_file(self.path_for(generation));
            }
        }
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("{}.{generation}.snap", self.prefix))
    }

    /// Generations present on disk for this prefix (valid or not).
    fn generations_on_disk(&self) -> io::Result<Vec<u64>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&format!("{}.", self.prefix)) else {
                continue;
            };
            let Some(digits) = rest.strip_suffix(".snap") else {
                continue;
            };
            if let Ok(generation) = digits.parse::<u64>() {
                out.push(generation);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("ktudc-snap-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&p);
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn save_load_round_trips_with_monotone_generations() {
        let tmp = TempDir::new("roundtrip");
        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        assert_eq!(store.save(b"state-1").unwrap(), 1);
        assert_eq!(store.save(b"state-2").unwrap(), 2);
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.payload, b"state-2");
        assert_eq!(snap.skipped_corrupt, 0);
    }

    #[test]
    fn generations_resume_above_disk_after_reopen() {
        let tmp = TempDir::new("reopen");
        {
            let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
            store.save(b"a").unwrap();
            store.save(b"b").unwrap();
        }
        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        assert_eq!(store.next_generation(), 3);
        assert_eq!(store.save(b"c").unwrap(), 3);
    }

    #[test]
    fn corrupt_newest_is_skipped_never_loaded() {
        let tmp = TempDir::new("corrupt");
        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        store.save(b"good").unwrap();
        store.save(b"will-be-corrupted").unwrap();
        // Flip a payload bit in generation 2.
        let p = tmp.0.join("cache.2.snap");
        let mut bytes = fs::read(&p).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x01;
        fs::write(&p, &bytes).unwrap();

        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.payload, b"good");
        assert_eq!(snap.skipped_corrupt, 1);
        assert_eq!(store.corrupt_seen(), 1);
    }

    #[test]
    fn truncated_snapshot_counts_as_corrupt() {
        let tmp = TempDir::new("torn");
        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        store.save(b"intact").unwrap();
        store.save(b"this snapshot gets torn").unwrap();
        let p = tmp.0.join("cache.2.snap");
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();

        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.payload, b"intact");
    }

    #[test]
    fn reopen_over_corrupt_tail_still_advances_generation() {
        // A crashed writer may leave a corrupt newest generation. The
        // reopened store bases its counter on the newest *valid* one, so
        // the next save atomically replaces the corrupt slot; what
        // matters is the corrupt bytes are never the ones loaded.
        let tmp = TempDir::new("advance");
        {
            let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
            store.save(b"v1").unwrap();
            store.save(b"v2").unwrap();
        }
        let p = tmp.0.join("cache.2.snap");
        let mut bytes = fs::read(&p).unwrap();
        bytes[HEADER] ^= 0xff;
        fs::write(&p, &bytes).unwrap();

        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        // Baseline comes from generation 1 (the newest valid), so the
        // next save lands on generation 2 — atomically replacing the
        // corrupt file with a valid one.
        assert_eq!(store.next_generation(), 2);
        store.save(b"v2-redone").unwrap();
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.payload, b"v2-redone");
    }

    #[test]
    fn all_corrupt_returns_none_without_panicking() {
        let tmp = TempDir::new("allbad");
        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        store.save(b"doomed").unwrap();
        fs::write(tmp.0.join("cache.1.snap"), b"garbage").unwrap();
        let mut reopened = SnapshotStore::open(&tmp.0, "cache").unwrap();
        assert!(reopened.load_latest().unwrap().is_none());
        assert!(reopened.corrupt_seen() >= 1);
    }

    #[test]
    fn old_generations_are_pruned_but_a_tail_is_kept() {
        let tmp = TempDir::new("prune");
        let mut store = SnapshotStore::open(&tmp.0, "cache").unwrap();
        for i in 0..10u8 {
            store.save(&[i]).unwrap();
        }
        let on_disk = store.generations_on_disk().unwrap().len();
        assert!(on_disk <= KEEP_PREVIOUS + 1, "kept {on_disk} generations");
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.generation, 10);
        assert_eq!(snap.payload, vec![9]);
    }

    #[test]
    fn prefixes_are_independent() {
        let tmp = TempDir::new("prefixes");
        let mut a = SnapshotStore::open(&tmp.0, "alpha").unwrap();
        let mut b = SnapshotStore::open(&tmp.0, "beta").unwrap();
        a.save(b"from-a").unwrap();
        b.save(b"from-b").unwrap();
        b.save(b"from-b-2").unwrap();
        assert_eq!(a.load_latest().unwrap().unwrap().payload, b"from-a");
        let loaded = b.load_latest().unwrap().unwrap();
        assert_eq!(loaded.generation, 2);
        assert_eq!(loaded.payload, b"from-b-2");
    }
}
