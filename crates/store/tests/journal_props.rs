//! Property tests for journal framing and recovery (ISSUE 4, satellite c).
//!
//! The contract under attack: take a valid journal, mangle its bytes at
//! random — truncate anywhere, flip bits anywhere — and recovery must
//! (1) never panic, (2) return `entries ≤ written`, and (3) return only
//! entries bit-identical to a written *prefix* (the checksum must catch
//! every mangled entry rather than surfacing it).
//!
//! Cases are deterministic (compat proptest derives seeds from the test
//! name), so failures reproduce exactly; `PROPTEST_CASES` bounds runtime
//! in CI.

use ktudc_store::{fnv64, Journal, SyncPolicy};
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;

/// A unique temp path per (test, case), cleaned up on drop.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str, case_key: u64) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ktudc-journal-prop-{tag}-{}-{case_key:016x}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        TempPath(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Writes `entries` into a fresh journal at `path` and returns the raw
/// file bytes.
fn write_journal(path: &PathBuf, entries: &[Vec<u8>]) -> Vec<u8> {
    let mut j = Journal::create(path, SyncPolicy::Never).expect("create");
    for e in entries {
        j.append(e).expect("append");
    }
    j.sync().expect("sync");
    drop(j);
    std::fs::read(path).expect("read back")
}

/// The three recovery invariants, checked against what was written.
fn check_invariants(written: &[Vec<u8>], recovered: &[Vec<u8>]) -> Result<(), TestCaseError> {
    prop_assert!(
        recovered.len() <= written.len(),
        "recovered {} entries from {} written",
        recovered.len(),
        written.len()
    );
    for (i, (got, want)) in recovered.iter().zip(written).enumerate() {
        prop_assert_eq!(got, want, "entry {} not bit-identical", i);
    }
    Ok(())
}

/// A deterministic fingerprint of a case's inputs, to diversify temp
/// file names across cases without real randomness.
fn case_key(parts: &[&[u8]]) -> u64 {
    let mut flat = Vec::new();
    for p in parts {
        flat.extend_from_slice(&(p.len() as u64).to_le_bytes());
        flat.extend_from_slice(p);
    }
    fnv64(&flat)
}

proptest! {
    /// Truncating a valid journal at ANY byte offset yields a clean
    /// prefix of the written entries — never a panic, never a mangled
    /// entry.
    #[test]
    fn truncation_yields_a_clean_prefix(
        entries in vec(vec(0u8..=255, 0..40), 0..12),
        cut_frac in 0u32..=1000,
    ) {
        let key = case_key(&[&cut_frac.to_le_bytes(), &(entries.len() as u64).to_le_bytes()]);
        let tmp = TempPath::new("trunc", key);
        let bytes = write_journal(&tmp.0, &entries);
        // Map the fraction onto [MAGIC..len]: always keep the magic, since
        // destroying it is the (tested elsewhere) reject-don't-repair path.
        let lo = 8usize.min(bytes.len());
        let cut = lo + ((bytes.len() - lo) as u64 * u64::from(cut_frac) / 1000) as usize;
        std::fs::write(&tmp.0, &bytes[..cut]).expect("truncate");

        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).expect("recover");
        check_invariants(&entries, &rec.entries)?;
        // Recovery repaired the file: a second recovery is clean.
        let (_, again) = Journal::recover(&tmp.0, SyncPolicy::Never).expect("re-recover");
        prop_assert_eq!(&again.entries, &rec.entries);
        prop_assert_eq!(again.truncated_bytes, 0);
    }

    /// Flipping random bits anywhere past the magic yields only entries
    /// bit-identical to a written prefix — a corrupted entry is dropped
    /// with its suffix, never accepted.
    #[test]
    fn corruption_is_never_accepted(
        entries in vec(vec(0u8..=255, 0..40), 1..12),
        flips in vec((0u32..=1000, 0u8..8), 1..5),
    ) {
        let mut key_parts: Vec<Vec<u8>> = vec![(entries.len() as u64).to_le_bytes().to_vec()];
        for (pos, bit) in &flips {
            key_parts.push(pos.to_le_bytes().to_vec());
            key_parts.push(vec![*bit]);
        }
        let key = case_key(&key_parts.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let tmp = TempPath::new("flip", key);
        let mut bytes = write_journal(&tmp.0, &entries);
        for (pos_frac, bit) in &flips {
            if bytes.len() > 8 {
                let at = 8 + ((bytes.len() - 8) as u64 * u64::from(*pos_frac) / 1001) as usize;
                let at = at.min(bytes.len() - 1);
                bytes[at] ^= 1 << bit;
            }
        }
        std::fs::write(&tmp.0, &bytes).expect("mangle");

        let (_, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).expect("recover");
        check_invariants(&entries, &rec.entries)?;
    }

    /// Truncate AND corrupt together — the compound crash: a torn tail on
    /// top of bit rot. Same invariants hold, and the repaired journal
    /// accepts new appends that then survive their own recovery.
    #[test]
    fn compound_damage_then_append_recovers(
        entries in vec(vec(0u8..=255, 0..24), 1..8),
        cut_frac in 0u32..=1000,
        flip_frac in 0u32..=1000,
    ) {
        let key = case_key(&[
            &cut_frac.to_le_bytes(),
            &flip_frac.to_le_bytes(),
            &(entries.len() as u64).to_le_bytes(),
        ]);
        let tmp = TempPath::new("compound", key);
        let bytes = write_journal(&tmp.0, &entries);
        let lo = 8usize.min(bytes.len());
        let cut = lo + ((bytes.len() - lo) as u64 * u64::from(cut_frac) / 1000) as usize;
        let mut mangled = bytes[..cut].to_vec();
        if mangled.len() > 8 {
            let at = 8 + ((mangled.len() - 8) as u64 * u64::from(flip_frac) / 1001) as usize;
            let at = at.min(mangled.len() - 1);
            mangled[at] ^= 0x10;
        }
        std::fs::write(&tmp.0, &mangled).expect("mangle");

        let (mut j, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).expect("recover");
        check_invariants(&entries, &rec.entries)?;

        // Appends after repair extend the surviving prefix.
        j.append(b"post-crash").expect("append");
        j.sync().expect("sync");
        drop(j);
        let (_, after) = Journal::recover(&tmp.0, SyncPolicy::Never).expect("re-recover");
        let mut expected = rec.entries.clone();
        expected.push(b"post-crash".to_vec());
        prop_assert_eq!(&after.entries, &expected);
    }

    /// Group commit changes only when fsync happens, never what lands on
    /// disk: a random mix of `append_batch` calls produces a file
    /// byte-identical to appending every payload singly, and a torn tail
    /// over the batched file still recovers to a clean prefix — frames,
    /// not batches, are the durability granule.
    #[test]
    fn batched_appends_frame_identically_and_tear_per_frame(
        batches in vec(vec(vec(0u8..=255, 0..24), 0..5), 1..6),
        cut_frac in 0u32..=1000,
    ) {
        let flat: Vec<Vec<u8>> = batches.iter().flatten().cloned().collect();
        let key = case_key(&[
            &cut_frac.to_le_bytes(),
            &(flat.len() as u64).to_le_bytes(),
            &(batches.len() as u64).to_le_bytes(),
        ]);
        let single = TempPath::new("batch-single", key);
        let batched = TempPath::new("batch-group", key);
        let single_bytes = write_journal(&single.0, &flat);
        {
            let mut j = Journal::create(&batched.0, SyncPolicy::Never).expect("create");
            for batch in &batches {
                j.append_batch(batch).expect("append_batch");
            }
            j.sync().expect("sync");
        }
        let batched_bytes = std::fs::read(&batched.0).expect("read back");
        prop_assert_eq!(&batched_bytes, &single_bytes);

        let lo = 8usize.min(batched_bytes.len());
        let cut = lo + ((batched_bytes.len() - lo) as u64 * u64::from(cut_frac) / 1000) as usize;
        std::fs::write(&batched.0, &batched_bytes[..cut]).expect("truncate");
        let (_, rec) = Journal::recover(&batched.0, SyncPolicy::Never).expect("recover");
        check_invariants(&flat, &rec.entries)?;
    }

    /// An untouched journal always recovers every entry, whatever the
    /// entry sizes and counts (including empty payloads).
    #[test]
    fn undamaged_journal_recovers_everything(
        entries in vec(vec(0u8..=255, 0..200), 0..10),
    ) {
        let key = case_key(
            &entries.iter().map(Vec::as_slice).collect::<Vec<_>>(),
        );
        let tmp = TempPath::new("intact", key);
        write_journal(&tmp.0, &entries);
        let (j, rec) = Journal::recover(&tmp.0, SyncPolicy::Never).expect("recover");
        prop_assert_eq!(&rec.entries, &entries);
        prop_assert_eq!(rec.truncated_bytes, 0);
        prop_assert_eq!(j.entries(), entries.len() as u64);
    }
}
